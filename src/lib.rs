//! # graph-grammar-repair
//!
//! A production-quality reproduction of **“Compressing Graphs by Grammars”**
//! (Maneth & Peternek, ICDE 2016): the gRePair compressor — RePair
//! generalized to directed edge-labeled hypergraphs — together with every
//! substrate and baseline its evaluation depends on.
//!
//! ```
//! use graph_grammar_repair::prelude::*;
//!
//! // Build a graph with repeated structure, compress, serialize, query.
//! let (g, _) = Hypergraph::from_simple_edges(
//!     33,
//!     (0..16u32).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
//! );
//! let compressed = compress(&g, &GRePairConfig::default());
//! assert!(compressed.grammar.size() < g.total_size());
//!
//! // Bit-exact serialization (§III-C2): k²-trees + δ-coded rules.
//! let encoded = grepair_codec::encode(&compressed.grammar);
//! let decoded = grepair_codec::decode(&encoded.bytes, encoded.bit_len).unwrap();
//!
//! // Queries without decompression (§V).
//! let reach = ReachIndex::new(&compressed.grammar);
//! assert!(reach.reachable(0, 16));
//! assert!(!reach.reachable(16, 0));
//!
//! // Lossless: val(G) equals the input under the node map.
//! let derived = decoded.derive();
//! assert_eq!(
//!     derived.edge_multiset_mapped(|v| compressed.node_map[v as usize]),
//!     g.edge_multiset(),
//! );
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`grepair_hypergraph`] | hypergraph model (§II), traversals, node orders incl. FP (§III-B1) |
//! | [`grepair_grammar`] | SL-HR grammars, `val(G)` derivation, sizes, inlining |
//! | [`grepair_core`] | the gRePair compressor (§III): digrams, occurrence counting, bucket queue, virtual edges, pruning |
//! | [`grepair_codec`] | the binary format (§III-C2): k²-tree start graph + δ-coded rules |
//! | [`grepair_queries`] | neighborhood (Prop. 4), reachability (Thm. 6), speed-up queries (§V) |
//! | [`grepair_store`] | serving-grade [`GraphStore`](grepair_store::GraphStore): fallible load → eager index → batched queries, hot-reload [`StoreRegistry`](grepair_store::StoreRegistry) |
//! | [`grepair_server`] | `grepair-server` TCP front end: wire protocol (DESIGN.md §6), reusable [`WorkerPool`](grepair_server::WorkerPool), `RELOAD`/SIGHUP hot reload |
//! | [`grepair_baselines`] | k²-tree, LM, HN, string-RePair baselines (§IV) |
//! | [`grepair_datasets`] | seeded generators standing in for the paper's datasets |
//! | [`grepair_k2tree`], [`grepair_bits`], [`grepair_lz`], [`grepair_util`] | substrates |

#![forbid(unsafe_code)]

pub use grepair_baselines as baselines;
pub use grepair_bits as bits;
pub use grepair_codec as codec;
pub use grepair_core as core;
pub use grepair_datasets as datasets;
pub use grepair_grammar as grammar;
pub use grepair_hypergraph as hypergraph;
pub use grepair_k2tree as k2tree;
pub use grepair_lz as lz;
pub use grepair_queries as queries;
pub use grepair_server as server;
pub use grepair_store as store;
pub use grepair_util as util;

/// The items most programs need.
pub mod prelude {
    pub use grepair_codec::{decode, encode};
    pub use grepair_core::{compress, CompressedGraph, GRePairConfig};
    pub use grepair_grammar::Grammar;
    pub use grepair_hypergraph::order::NodeOrder;
    pub use grepair_hypergraph::{EdgeLabel, Hypergraph};
    pub use grepair_queries::{GrammarIndex, QueryError, ReachIndex};
    pub use grepair_store::{GraphStore, GrepairError, Query, QueryAnswer};
}
