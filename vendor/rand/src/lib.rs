//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) slice of the `rand` 0.8 API that the gRePair
//! workspace uses: a seedable [`rngs::StdRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically solid
//! for synthetic-dataset generation, deterministic in its seed, and **not**
//! cryptographically secure (the real `StdRng` is ChaCha-based; nothing in
//! this workspace relies on that). Streams differ from the real `rand`, so
//! seeded datasets are reproducible per-toolchain here but will change if
//! this stub is swapped for the registry crate.

/// Core trait for generator backends: everything derives from `next_u64`.
pub trait RngCore {
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform sample from `[0, span)` (`span == 0` means the full
/// 2⁶⁴ range) via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Extension methods over any [`RngCore`] (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` (ints, bools, unit-interval floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Shuffling and random selection on slices (stand-in for `SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! The traits and types most callers want in scope.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::SeedableRng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
        // Full-width inclusive range must not overflow.
        let _ = rng.gen_range(1u64..=u64::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
