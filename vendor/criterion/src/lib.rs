//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the slice of the `criterion` 0.5 API that the gRePair benches
//! use: [`Criterion::benchmark_group`], group `sample_size` / `throughput` /
//! `bench_function` / `finish`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], plus the [`criterion_group!`] /
//! [`criterion_main!`] macros and [`black_box`].
//!
//! Instead of criterion's statistical machinery it runs a short calibration
//! pass, then times `sample_size` batches and prints min / mean per
//! iteration. Good enough to spot order-of-magnitude regressions and to keep
//! `cargo bench` meaningful offline; swap for the registry crate when
//! network access is available.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-element or per-byte throughput annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for [`Bencher::iter_batched`]. This stand-in treats all
/// variants identically (one setup per measured invocation).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Entry point handed to the functions in [`criterion_group!`].
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` (harness = false benches get `--test`) run each
        // closure once for smoke coverage instead of timing it.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
            test_mode,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let test_mode = self.test_mode;
        self.benchmark_group("ungrouped".to_string())
            .run_one(&id.into(), f, 10, None, test_mode);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Time `f` and print a one-line summary.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (samples, throughput, test_mode) = (self.sample_size, self.throughput, self.test_mode);
        let name = self.name.clone();
        BenchmarkGroup::run_named(&name, &id.into(), f, samples, throughput, test_mode);
        self
    }

    fn run_one(
        &mut self,
        id: &str,
        f: impl FnMut(&mut Bencher),
        samples: usize,
        throughput: Option<Throughput>,
        test_mode: bool,
    ) {
        let name = self.name.clone();
        BenchmarkGroup::run_named(&name, id, f, samples, throughput, test_mode);
    }

    fn run_named(
        group: &str,
        id: &str,
        mut f: impl FnMut(&mut Bencher),
        samples: usize,
        throughput: Option<Throughput>,
        test_mode: bool,
    ) {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: if test_mode { 1 } else { samples },
            calibrate: !test_mode,
            total: Duration::ZERO,
            total_iters: 0,
            min_sample: Duration::MAX,
            min_sample_iters: 1,
        };
        f(&mut bencher);
        if test_mode {
            println!("{group}/{id}: ok (smoke)");
            return;
        }
        if bencher.total_iters == 0 {
            println!("{group}/{id}: no iterations recorded");
            return;
        }
        let mean = bencher.total.as_nanos() as f64 / bencher.total_iters as f64;
        let min = bencher.min_sample.as_nanos() as f64 / bencher.min_sample_iters as f64;
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 * 1e3 / mean),
            Throughput::Bytes(n) => format!(" ({:.1} MiB/s)", n as f64 / (mean * 1e-9) / (1 << 20) as f64),
        });
        println!(
            "{group}/{id}: mean {} min {}{}",
            fmt_ns(mean),
            fmt_ns(min),
            rate.unwrap_or_default()
        );
    }

    /// End the group (separator line, matching criterion's API shape).
    pub fn finish(self) {
        println!();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times closures. Handed to the `|b| ...` callback of `bench_function`.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    calibrate: bool,
    total: Duration,
    total_iters: u64,
    min_sample: Duration,
    min_sample_iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.calibrate {
            // One untimed warmup, then size batches to ~5 ms each.
            let start = Instant::now();
            black_box(routine());
            let once = start.elapsed().max(Duration::from_nanos(20));
            self.iters_per_sample =
                (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.total_iters += self.iters_per_sample;
            if elapsed < self.min_sample {
                self.min_sample = elapsed;
                self.min_sample_iters = self.iters_per_sample;
            }
        }
    }

    /// Time `routine` on fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Setup cost forces one input per timed invocation here.
        let samples = if self.calibrate { self.samples } else { 1 };
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.total_iters += 1;
            if elapsed < self.min_sample {
                self.min_sample = elapsed;
                self.min_sample_iters = 1;
            }
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
