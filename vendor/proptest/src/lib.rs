//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the slice of the `proptest` 1.x API that the gRePair test suites
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`,
//! integer-range / tuple / [`strategy::Just`] / [`prelude::any`] strategies,
//! [`collection::vec`], [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! **Deliberately missing: shrinking.** A failing case reports the test
//! name, case number, and the deterministic per-test seed, but is not
//! minimized. Each test's value stream is seeded from a hash of the test
//! name, so failures reproduce exactly on re-run; set `PROPTEST_CASES` to
//! raise or lower the case count globally.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

pub mod prelude {
    //! Everything a property test normally imports.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let outcome = (move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        ::core::panic!(
                            "proptest `{}` failed at case {}/{} (deterministic seed; rerun reproduces): {}",
                            stringify!($name), case + 1, config.cases, err
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}:{}: assertion failed: {}",
                    ::core::file!(), ::core::line!(), ::core::stringify!($cond)
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}:{}: assertion failed: {}: {}",
                    ::core::file!(), ::core::line!(), ::core::stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}:{}: assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    ::core::file!(), ::core::line!(), left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}:{}: assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
                    ::core::file!(), ::core::line!(), ::std::format!($($fmt)+), left, right
                ),
            ));
        }
    }};
}

/// `assert_ne!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}:{}: assertion failed: `left != right`\n  both: {:?}",
                    ::core::file!(), ::core::line!(), left
                ),
            ));
        }
    }};
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
