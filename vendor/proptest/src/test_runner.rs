//! Test-runner plumbing used by the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration. Only `cases` is honored by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable globally via the `PROPTEST_CASES` env var.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies: a [`StdRng`] seeded from the test name, so
/// every run of a given test sees the same value stream.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed deterministically from an identifier (the test's name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a, good enough to decorrelate per-test streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed `prop_assert*` inside a proptest case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build from a rendered assertion message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
