//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating values of one type. Unlike real proptest there is
/// no value tree: strategies generate directly and never shrink.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feed generated values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Strategy for any value of a type with an obvious uniform distribution
/// (stand-in for `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types supported by [`any`].
pub trait Arbitrary {
    /// Sample a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Length distribution for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
