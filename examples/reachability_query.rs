//! Speed-up queries over the compressed graph (§V): reachability runs on
//! the grammar in O(|G|), i.e. faster than BFS on the decompressed graph by
//! roughly the compression ratio — the paper proves this (Theorem 6) but
//! never implemented it; this example measures it.
//!
//! ```sh
//! cargo run --release --example reachability_query
//! ```

use graph_grammar_repair::hypergraph::traverse;
use graph_grammar_repair::prelude::*;
use graph_grammar_repair::queries::speedup;
use std::time::Instant;

fn main() {
    // A long path of a repeating two-label pattern: gRePair folds it the way
    // string RePair folds a^n, so the grammar is tiny (|G| = O(log |g|)) and
    // long-range reachability runs over the grammar in O(|G|) while BFS on
    // the decompressed graph walks tens of thousands of edges.
    let reps = 16_384u32;
    let (g, _) = Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    );
    let compressed = compress(&g, &GRePairConfig::default());
    let grammar = &compressed.grammar;
    println!(
        "graph |g| = {}, grammar |G| = {} (ratio {:.4})",
        g.total_size(),
        grammar.size(),
        compressed.stats.ratio()
    );

    // One-time index build (O(|G|)).
    let t0 = Instant::now();
    let reach = ReachIndex::new(grammar);
    println!("skeleton index built in {:?}", t0.elapsed());

    let derived = grammar.derive();
    let n = derived.num_nodes() as u64;
    let pairs: Vec<(u64, u64)> = (0..200)
        .map(|i| ((i * 7919) % n, (i * 104729 + 13) % n))
        .collect();

    let t0 = Instant::now();
    let grammar_answers: Vec<bool> =
        pairs.iter().map(|&(s, t)| reach.reachable(s, t)).collect();
    let grammar_time = t0.elapsed();

    let t0 = Instant::now();
    let bfs_answers: Vec<bool> = pairs
        .iter()
        .map(|&(s, t)| traverse::reachable(&derived, s as u32, t as u32))
        .collect();
    let bfs_time = t0.elapsed();

    assert_eq!(grammar_answers, bfs_answers, "grammar and BFS disagree");
    let positive = grammar_answers.iter().filter(|&&b| b).count();
    println!(
        "200 reachability queries ({positive} reachable): grammar {grammar_time:?} vs BFS on val(G) {bfs_time:?}"
    );

    // Aggregate speed-up queries: one pass over |G| instead of |val(G)|.
    let t0 = Instant::now();
    let cc = speedup::connected_components(grammar);
    let (lo, hi) = speedup::degree_extrema(grammar).unwrap();
    println!(
        "aggregates over the grammar in {:?}: {cc} components, degrees {lo}..{hi}",
        t0.elapsed()
    );
    let (_, want_cc) = traverse::connected_components(&derived);
    assert_eq!(cc, want_cc as u64);

    // Neighborhood queries (Prop. 4) — random access without decompression.
    let idx = GrammarIndex::new(grammar);
    let probe = pairs[0].0;
    println!(
        "out-neighbors of node {probe}: {:?}",
        idx.out_neighbors(probe)
    );
}
