//! Quickstart: compress a graph, inspect the grammar, serialize it, and get
//! the original back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graph_grammar_repair::prelude::*;

fn main() {
    // A graph with obvious repeated structure: 64 repetitions of the
    // two-edge pattern  •-a->•-b->•  chained into a path.
    let reps = 64u32;
    let (graph, _) = Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    );
    println!(
        "input: {} nodes, {} edges, size |g| = {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.total_size()
    );

    // Compress with the paper's default parameters: maxRank = 4, FP order.
    let compressed = compress(&graph, &GRePairConfig::default());
    let grammar = &compressed.grammar;
    println!(
        "grammar: size |G| = {} ({} rules, start graph of {} edges) — ratio {:.2}",
        grammar.size(),
        grammar.num_nonterminals(),
        grammar.start.num_edges(),
        compressed.stats.ratio(),
    );
    for (nt, rhs) in grammar.rules().iter().enumerate() {
        println!(
            "  rule N{nt} (rank {}): {} nodes, {} edges",
            rhs.rank(),
            rhs.num_nodes(),
            rhs.num_edges()
        );
    }

    // Serialize to the paper's binary format (§III-C2).
    let encoded = encode(grammar);
    println!(
        "encoded: {} bytes ({:.2} bits/edge; {:.0}% of that is the start graph)",
        encoded.byte_len(),
        encoded.bits_per_edge(graph.num_edges()),
        100.0 * encoded.breakdown.start_graph_fraction()
    );

    // Decode and decompress: the result equals the input exactly under the
    // compressor's node map (the paper's ψ′).
    let decoded = decode(&encoded.bytes, encoded.bit_len).expect("stream is valid");
    let derived = decoded.derive();
    assert_eq!(
        derived.edge_multiset_mapped(|v| compressed.node_map[v as usize]),
        graph.edge_multiset()
    );
    println!("round trip OK: val(decode(encode(G))) == input");
}
