//! RDF compression scenario (the paper's Table V use case).
//!
//! DBpedia-style "types" graphs lay most nodes out in star patterns around
//! a few type hubs; gRePair captures each star arm family with a handful of
//! rules and beats the per-label k²-tree representation by a wide margin.
//!
//! ```sh
//! cargo run --release --example rdf_compression
//! ```

use graph_grammar_repair::baselines::k2;
use graph_grammar_repair::datasets::{rdf, stats};
use graph_grammar_repair::prelude::*;

fn main() {
    // A mapping-based-types analog: 60k instances, 50 type hubs, |Σ| = 1.
    let graph = rdf::types_star(60_000, 50, 42);
    let s = stats(&graph);
    println!(
        "types graph: |V| = {}, |E| = {}, |Σ| = {}, |[≅FP]| = {}",
        s.nodes, s.edges, s.labels, s.fp_classes
    );

    // gRePair with the paper's defaults.
    let compressed = compress(&graph, &GRePairConfig::default());
    let encoded = encode(&compressed.grammar);

    // The Table V baseline: one k²-tree per predicate.
    let baseline = k2::encode(&graph);

    println!(
        "gRePair: {:>9} bytes ({:.3} bpe, {} rules)",
        encoded.byte_len(),
        encoded.bits_per_edge(graph.num_edges()),
        compressed.grammar.num_nonterminals()
    );
    println!(
        "k2-tree: {:>9} bytes ({:.3} bpe)",
        baseline.bytes.len(),
        baseline.bits_per_edge(graph.num_edges())
    );
    println!(
        "gRePair output is {:.1}x smaller",
        baseline.bit_len as f64 / encoded.bit_len as f64
    );

    // A richer RDF shape: property tables with 71 predicates.
    let graph = rdf::property_graph(20_000, 71, 12, 4_000, 7);
    let s = stats(&graph);
    println!(
        "\nproperty graph: |V| = {}, |E| = {}, |Σ| = {}, |[≅FP]| = {}",
        s.nodes, s.edges, s.labels, s.fp_classes
    );
    let compressed = compress(&graph, &GRePairConfig::default());
    let encoded = encode(&compressed.grammar);
    let baseline = k2::encode(&graph);
    println!(
        "gRePair {:.3} bpe vs k2-tree {:.3} bpe",
        encoded.bits_per_edge(graph.num_edges()),
        baseline.bits_per_edge(graph.num_edges())
    );

    // RDF data is attached to nodes via the ψ′ node map: node k of val(G)
    // corresponds to input node node_map[k], so dictionaries stay usable.
    let derived = compressed.grammar.derive();
    assert_eq!(
        derived.edge_multiset_mapped(|v| compressed.node_map[v as usize]),
        graph.edge_multiset()
    );
    println!("lossless: dictionary IDs recoverable through the node map");
}
