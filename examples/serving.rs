//! Serving embedded in your own process: `GraphStore` + `StoreRegistry` +
//! a worker pool, no sockets — the library-user path behind
//! `grepair-server` (see DESIGN.md §6 for the serving topology and
//! `crates/server` for the TCP front end over exactly this pattern).
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::Arc;

use graph_grammar_repair::prelude::*;
use graph_grammar_repair::server::WorkerPool;
use graph_grammar_repair::store::StoreRegistry;

/// Compress a two-label path graph with `2 * reps + 1` nodes into `.g2g`
/// container bytes — the artifact a deployment would ship to its servers.
fn compress_to_g2g(reps: u32) -> Vec<u8> {
    let (g, _) = Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    );
    let out = compress(&g, &GRePairConfig::default());
    let enc = encode(&out.grammar);
    graph_grammar_repair::store::write_container(&enc.bytes, enc.bit_len)
}

fn main() {
    // Load once, serve forever: the registry owns the currently serving
    // store; every request path snapshots it with `current()`.
    let registry = StoreRegistry::new(
        GraphStore::from_bytes(&compress_to_g2g(64)).expect("fresh container loads"),
    );
    let store = registry.current();
    println!(
        "generation {}: serving {} nodes on the compressed grammar",
        registry.generation(),
        store.total_nodes()
    );

    // One resident worker pool for the whole process — batches fan out
    // across reused threads, never paying a per-batch spawn.
    let pool = WorkerPool::new(4);
    let n = store.total_nodes();
    let queries: Vec<Query> = (0..n)
        .flat_map(|v| [Query::OutNeighbors(v), Query::Reach { s: 0, t: v }])
        .collect();
    let answers = store.query_batch_on(&queries, &pool);
    let reachable = answers
        .iter()
        .filter(|a| matches!(a.as_deref(), Ok(QueryAnswer::Bool(true))))
        .count();
    println!(
        "batch of {} queries answered ({} reach answers were true)",
        answers.len(),
        reachable
    );

    // A long-lived client keeps the pre-reload snapshot; new requests see
    // the new generation. This is what the server's RELOAD command (or a
    // SIGHUP) does while connections stay open.
    let veteran = registry.current();
    let generation = registry.swap(
        GraphStore::from_bytes(&compress_to_g2g(128)).expect("replacement loads"),
    );
    let fresh = registry.current();
    println!(
        "hot reload: generation {generation} now serves {} nodes; \
         the in-flight snapshot (generation {}) still answers on {} nodes",
        fresh.total_nodes(),
        veteran.generation(),
        veteran.total_nodes()
    );
    assert!(veteran.reachable(0, n - 1).expect("old snapshot keeps serving"));
    assert!(fresh.reachable(0, fresh.total_nodes() - 1).expect("new generation serves"));
    assert_eq!(Arc::strong_count(&fresh), 2, "registry + us");

    // Per-store stats carry the generation (the STATS admin reply).
    println!("old stats: {}", veteran.stats());
    println!("new stats: {}", fresh.stats());
}
