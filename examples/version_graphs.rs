//! Version graphs (the paper's §IV-C3): disjoint unions of many versions of
//! the same graph compress extraordinarily well — identical copies even
//! exponentially (Fig. 13) — provided the FP node order lines the copies up.
//!
//! ```sh
//! cargo run --release --example version_graphs
//! ```

use graph_grammar_repair::baselines::{k2, lm};
use graph_grammar_repair::datasets::version;
use graph_grammar_repair::prelude::*;

fn main() {
    // Fig. 13's experiment in miniature: 8..1024 identical copies of a
    // 4-node, 5-edge graph.
    println!("copies | gRePair bytes | k2 bytes | LM bytes");
    let base = version::circle_with_diagonal();
    let mut copies = 8usize;
    while copies <= 1024 {
        let g = version::disjoint_copies(&base, copies);
        let compressed = compress(&g, &GRePairConfig::default());
        let encoded = encode(&compressed.grammar);
        let k2 = k2::encode(&g);
        let lm = lm::encode(&g);
        println!(
            "{copies:>6} | {:>13} | {:>8} | {:>8}",
            encoded.byte_len(),
            k2.bytes.len(),
            (lm.bit_len / 8) + 1
        );
        copies *= 2;
    }

    // A DBLP-style growing version graph (Fig. 14): the FP order groups
    // corresponding nodes across versions; other orders leave the
    // repetition on the table.
    let history = version::CoauthorshipHistory::generate(11, 60, 600, 40, 2024);
    let g = history.version_graph(10);
    println!(
        "\nDBLP-style version graph: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );
    for order in [NodeOrder::Fp, NodeOrder::Fp0, NodeOrder::Bfs, NodeOrder::Random(1)] {
        let config = GRePairConfig { order, ..Default::default() };
        let compressed = compress(&g, &config);
        let encoded = encode(&compressed.grammar);
        println!(
            "  order {:>7}: {:.3} bpe ({} rules)",
            order.to_string(),
            encoded.bits_per_edge(g.num_edges()),
            compressed.grammar.num_nonterminals()
        );
    }
}
