//! The exact Tic-Tac-Toe game graph.
//!
//! Nodes are the board positions reachable from the empty board with X to
//! move first; a directed edge connects a position to each successor, with
//! three edge labels as in the subdue dataset family: an X move, an O move,
//! or a game-ending (winning) move.
//!
//! This is a real object at the paper's scale (the paper's TTT graph has
//! 5,634 nodes / 10,016 edges; the full reachable game graph has 5,478
//! positions — theirs is a near-identical variant), with the crucial
//! property the paper highlights: an extremely small number of FP classes
//! (9 in the paper), because the game tree is full of isomorphic sub-boards.

use grepair_hypergraph::Hypergraph;
use grepair_util::FxHashMap;

/// Cell contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Cell {
    Empty,
    X,
    O,
}

type Board = [Cell; 9];

const LINES: [[usize; 3]; 8] = [
    [0, 1, 2],
    [3, 4, 5],
    [6, 7, 8],
    [0, 3, 6],
    [1, 4, 7],
    [2, 5, 8],
    [0, 4, 8],
    [2, 4, 6],
];

fn winner(b: &Board) -> Option<Cell> {
    for line in LINES {
        let c = b[line[0]];
        if c != Cell::Empty && b[line[1]] == c && b[line[2]] == c {
            return Some(c);
        }
    }
    None
}

/// Edge labels of the generated graph.
pub const LABEL_X_MOVE: u32 = 0;
/// O's move label.
pub const LABEL_O_MOVE: u32 = 1;
/// A move that ends the game with a win.
pub const LABEL_WINNING_MOVE: u32 = 2;

/// Build the full reachable game graph. Returns the graph; node 0 is the
/// empty board.
pub fn game_graph() -> Hypergraph {
    let mut ids: FxHashMap<Board, u32> = FxHashMap::default();
    let empty = [Cell::Empty; 9];
    ids.insert(empty, 0);
    let mut frontier: Vec<(Board, bool)> = vec![(empty, true)]; // (board, x_to_move)
    let mut triples: Vec<(u32, u32, u32)> = Vec::new();
    while let Some((board, x_to_move)) = frontier.pop() {
        if winner(&board).is_some() {
            continue; // terminal: no outgoing moves
        }
        let from = ids[&board];
        let mark = if x_to_move { Cell::X } else { Cell::O };
        for cell in 0..9 {
            if board[cell] != Cell::Empty {
                continue;
            }
            let mut next = board;
            next[cell] = mark;
            let next_id = match ids.get(&next) {
                Some(&id) => id,
                None => {
                    let id = ids.len() as u32;
                    ids.insert(next, id);
                    frontier.push((next, !x_to_move));
                    id
                }
            };
            let label = if winner(&next).is_some() {
                LABEL_WINNING_MOVE
            } else if x_to_move {
                LABEL_X_MOVE
            } else {
                LABEL_O_MOVE
            };
            triples.push((from, label, next_id));
        }
    }
    Hypergraph::from_simple_edges(ids.len(), triples).0
}

/// The subdue-style Tic-Tac-Toe **version graph** (Table III row 1): the
/// UCI endgame dataset is 958 board instances, each a small graph over the
/// 9 cells with structural relations (3 edge labels: row-, column- and
/// diagonal-adjacency); the X/O node labels are ignored by the paper
/// ("the files contain node labels from a finite alphabet, which we ignore
/// here") — so structurally the dataset is 958 identical copies of one
/// board graph. That is exactly why the paper measures only **9** FP
/// classes and a spectacular 0.12 bpe on it.
pub fn subdue_endgames() -> Hypergraph {
    let board = board_graph();
    let mut g = Hypergraph::with_nodes(9 * 958);
    for c in 0..958u32 {
        let off = 9 * c;
        for e in board.edges() {
            let att: Vec<u32> = e.att.iter().map(|&v| v + off).collect();
            g.add_edge(e.label, &att);
        }
    }
    g
}

/// One board instance: 9 cells with row (label 0), column (label 1) and
/// main-diagonal (label 2) adjacency.
fn board_graph() -> Hypergraph {
    let mut triples = Vec::new();
    for r in 0..3u32 {
        for c in 0..3u32 {
            let id = 3 * r + c;
            if c < 2 {
                triples.push((id, 0u32, id + 1));
            }
            if r < 2 {
                triples.push((id, 1u32, id + 3));
            }
        }
    }
    triples.push((0, 2, 4));
    triples.push((4, 2, 8));
    Hypergraph::from_simple_edges(9, triples).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn known_position_count() {
        // The classic result: 5,478 reachable tic-tac-toe positions.
        let g = game_graph();
        assert_eq!(g.num_nodes(), 5478);
        assert!(g.num_edges() > 10_000, "{}", g.num_edges());
    }

    #[test]
    fn three_labels() {
        let g = game_graph();
        assert_eq!(stats(&g).labels, 3);
    }

    #[test]
    fn empty_board_has_nine_moves() {
        let g = game_graph();
        assert_eq!(g.out_neighbors(0).count(), 9);
        assert_eq!(g.in_neighbors(0).count(), 0);
    }

    #[test]
    fn subdue_version_graph_shape() {
        let g = subdue_endgames();
        let s = stats(&g);
        assert_eq!(s.nodes, 9 * 958);
        assert_eq!(s.labels, 3);
        // The paper's striking observation: only 9 FP classes (one per cell).
        assert_eq!(s.fp_classes, 9);
    }

    #[test]
    fn terminal_positions_have_no_successors() {
        let g = game_graph();
        // Every node with an incoming winning-move edge is terminal.
        for e in g.edges() {
            if e.label == grepair_hypergraph::EdgeLabel::Terminal(LABEL_WINNING_MOVE) {
                let t = e.att[1];
                assert_eq!(g.out_neighbors(t).count(), 0, "terminal {t} has moves");
            }
        }
    }
}
