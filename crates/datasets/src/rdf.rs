//! RDF graph generators (Table II analogs).

use grepair_hypergraph::Hypergraph;
use rand::prelude::*;
use rand::rngs::StdRng;

/// "Types" graph (DBpedia mapping-based types analogs, Table II rows 2–4):
/// a single predicate, a handful of type hubs, and a vast majority of
/// instance nodes each pointing at 1..=3 types. The paper: "the majority of
/// their nodes being laid out in a star pattern: few hub nodes of very high
/// degree" — the shape on which gRePair wins by orders of magnitude.
pub fn types_star(instances: usize, types: usize, seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = instances + types;
    let mut triples = Vec::with_capacity(instances + instances / 10);
    for i in 0..instances as u32 {
        // The real types dumps assign almost every instance exactly one
        // type; a small minority carries a second one from a popular subset.
        let r: f64 = rng.gen::<f64>();
        let ty = ((r * r) * types as f64) as usize % types;
        triples.push((i, 0u32, (instances + ty) as u32));
        if rng.gen_bool(0.08) {
            let second = rng.gen_range(0..types.min(4));
            if second != ty {
                triples.push((i, 0u32, (instances + second) as u32));
            }
        }
    }
    Hypergraph::from_simple_edges(n, triples).0
}

/// Property-table RDF (Specific-properties / Identica / Jamendo analogs):
/// entities belong to classes; each class has a fixed predicate set; objects
/// are drawn from per-predicate value pools (some shared, some unique).
/// Repeated (predicate-set × shared-value) rows are the digram fodder.
pub fn property_graph(
    entities: usize,
    predicates: usize,
    classes: usize,
    shared_pool: usize,
    seed: u64,
) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    // Per class: 2..6 predicates with a value-sharing flag.
    let class_preds: Vec<Vec<(u32, bool)>> = (0..classes)
        .map(|_| {
            let k = rng.gen_range(2..=6usize.min(predicates));
            let mut preds = Vec::with_capacity(k);
            while preds.len() < k {
                let p = rng.gen_range(0..predicates as u32);
                if !preds.iter().any(|&(q, _)| q == p) {
                    preds.push((p, rng.gen_bool(0.6)));
                }
            }
            preds
        })
        .collect();
    // Node layout: entities, then shared values, then unique values appended.
    let mut next_node = (entities + shared_pool) as u32;
    let mut triples = Vec::new();
    for e in 0..entities as u32 {
        let class = rng.gen_range(0..classes);
        for &(p, shared) in &class_preds[class] {
            let object = if shared {
                (entities + rng.gen_range(0..shared_pool)) as u32
            } else {
                let v = next_node;
                next_node += 1;
                v
            };
            triples.push((e, p, object));
        }
    }
    Hypergraph::from_simple_edges(next_node as usize, triples).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn types_star_has_single_label_and_few_classes() {
        let g = types_star(5000, 40, 1);
        let s = stats(&g);
        assert_eq!(s.labels, 1);
        // The paper's types graphs have astonishingly few FP classes
        // (Table II: 79–336 for ~600k nodes). Ours must also collapse.
        assert!(
            s.fp_classes < s.nodes / 20,
            "fp classes {} vs nodes {}",
            s.fp_classes,
            s.nodes
        );
    }

    #[test]
    fn property_graph_label_count() {
        let g = property_graph(2000, 71, 12, 500, 2);
        let s = stats(&g);
        assert!(s.labels <= 71);
        assert!(s.labels > 30, "only {} labels used", s.labels);
        assert!(s.edges > 4000);
    }

    #[test]
    fn generators_deterministic() {
        let a = types_star(1000, 10, 5);
        let b = types_star(1000, 10, 5);
        assert_eq!(a.edge_multiset(), b.edge_multiset());
    }
}
