//! Network graph generators (Table I analogs).

use grepair_hypergraph::Hypergraph;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Directed preferential attachment (Barabási–Albert flavor): each new node
/// draws `m_per` targets weighted by current degree. Heavy-tailed in-degree,
/// like citation/communication networks.
pub fn preferential_attachment(n: usize, m_per: usize, seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::with_capacity(n * m_per);
    // Repeated-endpoint list ≈ degree-proportional sampling.
    let mut endpoints: Vec<u32> = vec![0];
    for v in 1..n as u32 {
        for _ in 0..m_per.min(v as usize) {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v {
                triples.push((v, 0u32, t));
                endpoints.push(t);
            }
        }
        endpoints.push(v);
    }
    Hypergraph::from_simple_edges(n, triples).0
}

/// Erdős–Rényi G(n, m): `m` uniform random directed edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::with_capacity(m);
    while triples.len() < m {
        let s = rng.gen_range(0..n as u32);
        let t = rng.gen_range(0..n as u32);
        if s != t {
            triples.push((s, 0u32, t));
        }
    }
    Hypergraph::from_simple_edges(n, triples).0
}

/// Co-authorship clique model (CA-AstroPh/CondMat/GrQc analogs): `papers`
/// papers, each a clique over 2..=`max_authors` authors drawn with
/// preferential (power-law) author activity. Stored as directed edges both
/// ways, matching the paper's treatment ("we considered all of them to be
/// lists of directed edges").
pub fn co_authorship(authors: usize, papers: usize, max_authors: usize, seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::new();
    let mut activity: Vec<u32> = (0..authors as u32).collect(); // seeded uniform
    for _ in 0..papers {
        let k = rng.gen_range(2..=max_authors);
        let mut team: Vec<u32> = Vec::with_capacity(k);
        for _ in 0..k {
            let a = activity[rng.gen_range(0..activity.len())];
            if !team.contains(&a) {
                team.push(a);
            }
        }
        for i in 0..team.len() {
            for j in 0..team.len() {
                if i != j {
                    triples.push((team[i], 0u32, team[j]));
                }
            }
        }
        // Authors who just published become more likely to publish again.
        activity.extend_from_slice(&team);
    }
    Hypergraph::from_simple_edges(authors, triples).0
}

/// Hub-broadcast communication model (Email-EuAll / Wiki-Talk analogs):
/// a few hubs with enormous out-degree over a large low-degree fringe.
pub fn hub_network(n: usize, hubs: usize, fringe_degree: usize, seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::new();
    for h in 0..hubs as u32 {
        // Each hub reaches a geometric-ish share of the fringe.
        let reach = (n / (2 << h.min(16))).max(8);
        for _ in 0..reach {
            let t = rng.gen_range(0..n as u32);
            if t != h {
                triples.push((h, 0u32, t));
            }
        }
    }
    for v in hubs as u32..n as u32 {
        for _ in 0..fringe_degree {
            if rng.gen_bool(0.7) {
                // Mostly talk to hubs.
                let h = rng.gen_range(0..hubs as u32);
                triples.push((v, 0u32, h));
            } else {
                let t = rng.gen_range(0..n as u32);
                if t != v {
                    triples.push((v, 0u32, t));
                }
            }
        }
    }
    Hypergraph::from_simple_edges(n, triples).0
}

/// Copy-model web graph (NotreDame analog): each new page either copies a
/// prototype's out-list (plus noise) or links locally. Produces the
/// duplicated adjacency lists that LM and k² exploit.
pub fn web_copy(n: usize, out_degree: usize, copy_prob: f64, seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u32>> = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let mut outs = Vec::with_capacity(out_degree);
        if v > 0 && rng.gen_bool(copy_prob) {
            let proto = rng.gen_range(0..v);
            outs.extend(adj[proto as usize].iter().copied().filter(|&x| x != v));
            // Mutate a little.
            if !outs.is_empty() && rng.gen_bool(0.3) {
                let i = rng.gen_range(0..outs.len());
                outs[i] = rng.gen_range(0..n as u32);
            }
        }
        while outs.len() < out_degree {
            // Local links: nearby page IDs (directory locality).
            let span = 64u32;
            let lo = v.saturating_sub(span);
            let hi = ((v + span).min(n as u32 - 1)).max(lo + 1);
            let t = rng.gen_range(lo..=hi);
            if t != v {
                outs.push(t);
            }
        }
        adj.push(outs);
    }
    let triples = adj
        .iter()
        .enumerate()
        .flat_map(|(v, outs)| outs.iter().map(move |&t| (v as u32, 0u32, t)));
    Hypergraph::from_simple_edges(n, triples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = preferential_attachment(500, 3, 42);
        let b = preferential_attachment(500, 3, 42);
        assert_eq!(a.edge_multiset(), b.edge_multiset());
        let c = preferential_attachment(500, 3, 43);
        assert_ne!(a.edge_multiset(), c.edge_multiset());
    }

    #[test]
    fn sizes_are_in_the_right_ballpark() {
        let g = erdos_renyi(1000, 5000, 1);
        assert_eq!(g.num_nodes(), 1000);
        assert!(g.num_edges() > 4500, "{}", g.num_edges());

        let g = preferential_attachment(1000, 4, 1);
        assert!(g.num_edges() > 2500);

        let g = co_authorship(500, 400, 5, 1);
        assert!(g.num_edges() > 500);
    }

    #[test]
    fn pa_has_heavy_tail() {
        let g = preferential_attachment(2000, 3, 7);
        let max_deg = g.node_ids().map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(max_deg as f64 > 8.0 * avg, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn coauthorship_is_symmetric() {
        let g = co_authorship(300, 200, 4, 3);
        for e in g.edges() {
            let (s, t) = (e.att[0], e.att[1]);
            assert!(
                g.out_neighbors(t).any(|x| x == s),
                "missing reverse edge {t}->{s}"
            );
        }
    }

    #[test]
    fn web_copy_duplicates_lists() {
        let g = web_copy(2000, 6, 0.7, 9);
        // Count exact duplicate out-lists — the signature of the copy model.
        let mut lists: Vec<Vec<u32>> = (0..2000u32)
            .map(|v| {
                let mut l: Vec<u32> = g.out_neighbors(v).collect();
                l.sort_unstable();
                l
            })
            .collect();
        lists.sort();
        let total = lists.len();
        lists.dedup();
        assert!(lists.len() < total, "no duplicated adjacency lists");
    }

    #[test]
    fn hub_network_has_hubs() {
        let g = hub_network(3000, 4, 2, 11);
        let hub_deg = g.degree(0);
        assert!(hub_deg > 100, "hub degree {hub_deg}");
    }
}
