//! Version graphs (Table III, Figs. 13–14): disjoint unions of multiple
//! versions of the same graph.

use grepair_hypergraph::Hypergraph;
use rand::prelude::*;
use rand::rngs::StdRng;

/// The Fig. 13 base graph: "a directed circle with four nodes and one of
/// the two possible diagonal edges" — 4 nodes, 5 edges.
pub fn circle_with_diagonal() -> Hypergraph {
    let triples = vec![
        (0u32, 0u32, 1u32),
        (1, 0, 2),
        (2, 0, 3),
        (3, 0, 0),
        (0, 0, 2),
    ];
    Hypergraph::from_simple_edges(4, triples).0
}

/// Disjoint union of `copies` copies of `base` (node IDs shifted per copy).
pub fn disjoint_copies(base: &Hypergraph, copies: usize) -> Hypergraph {
    let stride = base.node_bound();
    let mut g = Hypergraph::with_nodes(stride * copies);
    for c in 0..copies {
        let off = (c * stride) as u32;
        for e in base.edges() {
            let att: Vec<u32> = e.att.iter().map(|&v| v + off).collect();
            g.add_edge(e.label, &att);
        }
    }
    // Dead slots mirror the base's dead slots.
    for c in 0..copies {
        let off = (c * stride) as u32;
        for v in 0..stride as u32 {
            if !base.node_is_alive(v) {
                g.remove_node(v + off);
            }
        }
    }
    g
}

/// A growing co-authorship history (DBLP analog): per year, `papers_per_year`
/// papers are added over a gradually growing author population. Snapshot `y`
/// contains all edges of years `0..=y`.
#[derive(Debug)]
pub struct CoauthorshipHistory {
    per_year_triples: Vec<Vec<(u32, u32, u32)>>,
    authors: usize,
}

impl CoauthorshipHistory {
    /// Generate `years` years of publications.
    pub fn generate(
        years: usize,
        papers_per_year: usize,
        initial_authors: usize,
        new_authors_per_year: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut per_year_triples = Vec::with_capacity(years);
        let mut population = initial_authors;
        let mut activity: Vec<u32> = (0..initial_authors as u32).collect();
        for _ in 0..years {
            let mut triples = Vec::new();
            for _ in 0..papers_per_year {
                let k = rng.gen_range(2..=4usize);
                let mut team: Vec<u32> = Vec::with_capacity(k);
                for _ in 0..k {
                    let a = activity[rng.gen_range(0..activity.len())];
                    if !team.contains(&a) {
                        team.push(a);
                    }
                }
                for i in 0..team.len() {
                    for j in 0..team.len() {
                        if i != j {
                            triples.push((team[i], 0u32, team[j]));
                        }
                    }
                }
                activity.extend_from_slice(&team);
            }
            per_year_triples.push(triples);
            for _ in 0..new_authors_per_year {
                activity.push(population as u32);
                population += 1;
            }
        }
        Self { per_year_triples, authors: population }
    }

    /// Cumulative snapshot after `year` (0-based, inclusive), deduplicated.
    pub fn snapshot(&self, year: usize) -> Hypergraph {
        let triples = self.per_year_triples[..=year]
            .iter()
            .flatten()
            .copied()
            .collect::<Vec<_>>();
        Hypergraph::from_simple_edges(self.authors, triples).0
    }

    /// The version graph of Fig. 14 / Table III: the disjoint union of the
    /// cumulative snapshots `0..=year`.
    pub fn version_graph(&self, year: usize) -> Hypergraph {
        let snapshots: Vec<Hypergraph> =
            (0..=year).map(|y| self.snapshot(y)).collect();
        disjoint_union(&snapshots)
    }

    /// Number of years generated.
    pub fn years(&self) -> usize {
        self.per_year_triples.len()
    }

    /// The raw `(source, label, target)` triples published in one year —
    /// *not* deduplicated against earlier years (teams republish). This is
    /// the patch-workload feed: the edges of year `y` that are new relative
    /// to `snapshot(y - 1)` are exactly what an incremental `PATCH ADD`
    /// stream would carry.
    pub fn year_triples(&self, year: usize) -> &[(u32, u32, u32)] {
        &self.per_year_triples[year]
    }

    /// Total author population after all years (the node bound of every
    /// snapshot).
    pub fn authors(&self) -> usize {
        self.authors
    }
}

/// Disjoint union of arbitrary graphs.
pub fn disjoint_union(graphs: &[Hypergraph]) -> Hypergraph {
    let total: usize = graphs.iter().map(Hypergraph::node_bound).sum();
    let mut g = Hypergraph::with_nodes(total);
    let mut off = 0u32;
    for part in graphs {
        for e in part.edges() {
            let att: Vec<u32> = e.att.iter().map(|&v| v + off).collect();
            g.add_edge(e.label, &att);
        }
        for v in 0..part.node_bound() as u32 {
            if !part.node_is_alive(v) {
                g.remove_node(v + off);
            }
        }
        off += part.node_bound() as u32;
    }
    g
}

/// Chess-like version graph (Chess analog): like the subdue chess dataset,
/// a disjoint union of thousands of small board-instance graphs. Instances
/// derive from a handful of templates (a chain of piece-relation edges with
/// a few cross edges) but each is randomly perturbed — relabeled and rewired
/// — so unlike Tic-Tac-Toe the copies are *not* identical: FP classes stay
/// near |V| (Table III's Chess row) while enough local structure repeats for
/// gRePair to edge out k² (Table VI: 9.06 vs 13.10 bpe in the paper).
pub fn chess_like(positions: usize, labels: u32, seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_instance = 8usize;
    let instances = positions / per_instance;
    // Templates: label sequence along the chain + one cross edge.
    let templates: Vec<(Vec<u32>, (u32, u32, u32))> = (0..4)
        .map(|_| {
            let chain: Vec<u32> =
                (0..per_instance - 1).map(|_| rng.gen_range(0..labels)).collect();
            let cross = (
                rng.gen_range(0..per_instance as u32 / 2),
                rng.gen_range(0..labels),
                rng.gen_range(per_instance as u32 / 2..per_instance as u32),
            );
            (chain, cross)
        })
        .collect();
    let mut triples = Vec::new();
    for i in 0..instances {
        let base = (i * per_instance) as u32;
        let (chain, (cs, cl, ct)) = &templates[rng.gen_range(0..templates.len())];
        for (k, &label) in chain.iter().enumerate() {
            // Perturb: occasionally relabel an edge.
            let label = if rng.gen_bool(0.25) { rng.gen_range(0..labels) } else { label };
            triples.push((base + k as u32, label, base + k as u32 + 1));
        }
        // Perturb: occasionally rewire the cross edge.
        let (cs, ct) = if rng.gen_bool(0.25) {
            let a = rng.gen_range(0..per_instance as u32);
            let b = (a + 1 + rng.gen_range(0..per_instance as u32 - 1)) % per_instance as u32;
            (a, b)
        } else {
            (*cs, *ct)
        };
        if cs != ct {
            triples.push((base + cs, *cl, base + ct));
        }
    }
    Hypergraph::from_simple_edges(instances * per_instance, triples).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use grepair_hypergraph::EdgeLabel;

    #[test]
    fn circle_with_diagonal_shape() {
        let g = circle_with_diagonal();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn disjoint_copies_scale_linearly() {
        let base = circle_with_diagonal();
        let g = disjoint_copies(&base, 8);
        assert_eq!(g.num_nodes(), 32);
        assert_eq!(g.num_edges(), 40);
        let (_, comps) = grepair_hypergraph::traverse::connected_components(&g);
        assert_eq!(comps, 8);
    }

    #[test]
    fn history_snapshots_grow() {
        let h = CoauthorshipHistory::generate(5, 50, 100, 20, 1);
        let e0 = h.snapshot(0).num_edges();
        let e4 = h.snapshot(4).num_edges();
        assert!(e4 > e0, "{e4} vs {e0}");
        let v = h.version_graph(2);
        let parts: usize = (0..=2).map(|y| h.snapshot(y).num_edges()).sum();
        assert_eq!(v.num_edges(), parts);
    }

    #[test]
    fn history_snapshots_are_monotone() {
        // Snapshots are cumulative: every edge of snapshot y is an edge of
        // snapshot y+1, and the deduplicated edge set of a snapshot equals
        // the union of the raw per-year triples feeding it.
        let h = CoauthorshipHistory::generate(6, 30, 80, 15, 7);
        let edge_set = |g: &Hypergraph| -> std::collections::BTreeSet<(u32, u32, u32)> {
            g.edges().map(|e| (e.att[0], e.label.index(), e.att[1])).collect()
        };
        let mut raw_union = std::collections::BTreeSet::new();
        let mut prev = std::collections::BTreeSet::new();
        for y in 0..h.years() {
            let snap = edge_set(&h.snapshot(y));
            assert!(prev.is_subset(&snap), "year {y} lost edges");
            raw_union.extend(
                h.year_triples(y).iter().filter(|(s, _, t)| s != t).copied(),
            );
            assert_eq!(snap, raw_union, "year {y}");
            prev = snap;
        }
        assert!(h.authors() >= 80 + 6 * 15, "population grows every year");
    }

    #[test]
    fn history_is_deterministic_under_a_fixed_seed() {
        let a = CoauthorshipHistory::generate(4, 20, 50, 10, 42);
        let b = CoauthorshipHistory::generate(4, 20, 50, 10, 42);
        for y in 0..a.years() {
            assert_eq!(a.year_triples(y), b.year_triples(y), "year {y}");
        }
        // A different seed produces a different history (the first year's
        // teams already differ).
        let c = CoauthorshipHistory::generate(4, 20, 50, 10, 43);
        assert_ne!(a.year_triples(0), c.year_triples(0));
    }

    #[test]
    fn version_graph_repeats_have_shared_fp_classes() {
        // Consecutive snapshots are near-identical (most authors publish
        // nothing in a given year), so the version graph's FP class count is
        // far below its node count (Table III's DBLP rows).
        let h = CoauthorshipHistory::generate(4, 25, 400, 10, 2);
        let v = h.version_graph(3);
        let s = stats(&v);
        assert!(
            s.fp_classes * 2 < s.nodes,
            "classes {} vs alive nodes {}",
            s.fp_classes,
            s.nodes
        );
    }

    #[test]
    fn chess_like_has_near_distinct_fp_classes() {
        let g = chess_like(2400, 12, 3);
        let s = stats(&g);
        assert!(
            s.fp_classes * 3 > s.nodes,
            "chess-like should barely collapse: {} vs {}",
            s.fp_classes,
            s.nodes
        );
    }

    #[test]
    fn disjoint_union_respects_labels() {
        let (a, _) = Hypergraph::from_simple_edges(2, vec![(0u32, 3u32, 1u32)]);
        let (b, _) = Hypergraph::from_simple_edges(2, vec![(1u32, 5u32, 0u32)]);
        let u = disjoint_union(&[a, b]);
        let labels: Vec<EdgeLabel> = u.edges().map(|e| e.label).collect();
        assert!(labels.contains(&EdgeLabel::Terminal(3)));
        assert!(labels.contains(&EdgeLabel::Terminal(5)));
        assert_eq!(u.num_nodes(), 4);
    }
}
