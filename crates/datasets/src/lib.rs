//! Synthetic stand-ins for the paper's datasets (§IV-A).
//!
//! The paper evaluates on SNAP network graphs, DBpedia/Identica/Jamendo RDF
//! dumps, subdue's Tic-Tac-Toe and Chess graphs, and DBLP co-authorship
//! version graphs. None are redistributable or fetchable here, so every
//! family is replaced by a seeded generator that reproduces the structural
//! property the paper identifies as driving compression behaviour (see
//! DESIGN.md §4 for the per-dataset argument):
//!
//! * [`network`] — co-authorship clique models (CA-*), heavy-tailed hub
//!   models (Email-*, Wiki-*), and a copy-model web graph (NotreDame);
//! * [`rdf`] — star-shaped "types" graphs and property-table graphs with
//!   the paper's label counts;
//! * [`version`] — disjoint unions of graph snapshots: the Fig. 13
//!   circle-with-diagonal copies, evolving DBLP-style co-authorship, and a
//!   chess-like layered move graph;
//! * [`ttt`] — the **exact** Tic-Tac-Toe game graph (all positions reachable
//!   from the empty board; 3 edge labels), not a simulation.
//!
//! All generators are deterministic in their seed.

#![forbid(unsafe_code)]

pub mod network;
pub mod rdf;
pub mod ttt;
pub mod version;

use grepair_hypergraph::order::fp_class_count;
use grepair_hypergraph::{EdgeLabel, Hypergraph};

/// Summary statistics in the shape of the paper's Tables I–III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// |V|.
    pub nodes: usize,
    /// |E|.
    pub edges: usize,
    /// |Σ| — number of distinct edge labels.
    pub labels: usize,
    /// |\[≅FP\]| — equivalence classes of the FP order.
    pub fp_classes: usize,
}

/// Compute the Tables I–III statistics for a graph.
pub fn stats(g: &Hypergraph) -> DatasetStats {
    let mut labels: Vec<EdgeLabel> = g.edges().map(|e| e.label).collect();
    labels.sort_unstable();
    labels.dedup();
    DatasetStats {
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        labels: labels.len(),
        fp_classes: fp_class_count(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_graph() {
        let (g, _) =
            Hypergraph::from_simple_edges(3, vec![(0u32, 0u32, 1u32), (1, 1, 2)]);
        let s = stats(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.labels, 2);
        assert!(s.fp_classes >= 2);
    }
}
