//! End-to-end tests of the `grepair` binary: the CLI must answer hostile
//! input (bad files, out-of-range ids) with clean errors — exit code ≠ 0
//! and a message, never a panic — and the compress/decompress map pipeline
//! must round-trip original node labels.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::{Command, Output};

/// Scratch directory unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grepair_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn grepair(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_grepair"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn assert_clean_failure(out: &Output, needle: &str, what: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "{what}: expected failure, got success");
    assert!(
        !stderr.contains("panicked"),
        "{what}: must not panic:\n{stderr}"
    );
    assert!(
        stderr.contains(needle),
        "{what}: stderr must mention {needle:?}:\n{stderr}"
    );
}

/// Compress a small two-label path graph, returning the .g2g path.
fn compressed_fixture() -> String {
    let input = scratch("fixture.txt");
    let g2g = scratch("fixture.g2g");
    let mut text = String::new();
    for i in 0..20u32 {
        text.push_str(&format!("{} 0 {}\n{} 1 {}\n", 2 * i, 2 * i + 1, 2 * i + 1, 2 * i + 2));
    }
    std::fs::write(&input, text).unwrap();
    let out = grepair(&["compress", input.to_str().unwrap(), "-o", g2g.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    g2g.to_str().unwrap().to_string()
}

#[test]
fn out_of_range_neighbors_is_a_clean_error() {
    let g2g = compressed_fixture();
    // 41 nodes: ids 0..41 are valid, 1000000 is not.
    let out = grepair(&["query", "neighbors", &g2g, "1000000"]);
    assert_clean_failure(&out, "out of range", "out-of-range neighbors");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("0..41"), "must name the valid range:\n{stderr}");
    // Same for reach, on both endpoints.
    assert_clean_failure(
        &grepair(&["query", "reach", &g2g, "1000000", "0"]),
        "out of range",
        "out-of-range reach source",
    );
    assert_clean_failure(
        &grepair(&["query", "reach", &g2g, "0", "1000000"]),
        "out of range",
        "out-of-range reach target",
    );
    // In-range queries succeed.
    let ok = grepair(&["query", "neighbors", &g2g, "0"]);
    assert!(ok.status.success());
}

#[test]
fn corrupt_g2g_files_are_clean_errors() {
    let g2g = compressed_fixture();
    let bytes = std::fs::read(&g2g).unwrap();
    // Truncations at several offsets, including inside the header.
    for (i, keep) in [0usize, 4, 11, 12, bytes.len() / 2, bytes.len() - 1]
        .into_iter()
        .enumerate()
    {
        let path = scratch(&format!("trunc_{i}.g2g"));
        std::fs::write(&path, &bytes[..keep.min(bytes.len())]).unwrap();
        for subcmd in [
            vec!["query", "components", path.to_str().unwrap()],
            vec!["decompress", path.to_str().unwrap(), "-o", "/dev/null"],
        ] {
            let out = grepair(&subcmd);
            assert_clean_failure(&out, path.to_str().unwrap(), &format!("truncate at {keep}"));
        }
    }
    // Flipped magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    let path = scratch("badmagic.g2g");
    std::fs::write(&path, &bad).unwrap();
    assert_clean_failure(
        &grepair(&["query", "components", path.to_str().unwrap()]),
        "not a g2g",
        "bad magic",
    );
    // Missing file.
    assert_clean_failure(
        &grepair(&["query", "components", "/nonexistent/x.g2g"]),
        "/nonexistent/x.g2g",
        "missing file",
    );
}

#[test]
fn map_round_trips_non_dense_labels() {
    // Node labels are sparse and out of order on purpose.
    let input = scratch("sparse.txt");
    std::fs::write(&input, "700 13\n13 9000\n9000 42\n42 700\n700 9000\n").unwrap();
    let g2g = scratch("sparse.g2g");
    let map = scratch("sparse.map");
    let restored = scratch("sparse_restored.txt");

    let out = grepair(&[
        "compress",
        input.to_str().unwrap(),
        "-o",
        g2g.to_str().unwrap(),
        "--map",
        map.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = grepair(&[
        "decompress",
        g2g.to_str().unwrap(),
        "-o",
        restored.to_str().unwrap(),
        "--map",
        map.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let edges = |text: &str| -> BTreeSet<(u64, u64)> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                let mut it = l.split_whitespace();
                (it.next().unwrap().parse().unwrap(), it.next().unwrap().parse().unwrap())
            })
            .collect()
    };
    let original = edges(&std::fs::read_to_string(&input).unwrap());
    let round_tripped = edges(&std::fs::read_to_string(&restored).unwrap());
    assert_eq!(original, round_tripped, "labels must survive the round trip");
}

#[test]
fn serve_file_answers_a_mixed_stream() {
    let g2g = compressed_fixture();
    let queries = scratch("queries.txt");
    std::fs::write(
        &queries,
        "# a comment and a blank line are skipped\n\n\
         out 0\n\
         in 2\n\
         neighbors 1\n\
         reach 0 40\n\
         reach 40 0\n\
         rpq 5 5 0*\n\
         components\n\
         degrees\n\
         out 99999\n\
         frobnicate 1\n\
         reach 0 40\n",
    )
    .unwrap();
    let out = grepair(&["store", "serve-file", &g2g, queries.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "serve-file should keep serving:\n{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 11, "one answer per query line:\n{stdout}");
    assert_eq!(lines[3], "true", "reach 0 40");
    assert_eq!(lines[4], "false", "reach 40 0");
    assert_eq!(lines[5], "true", "rpq 5 5 matches the empty word of 0*");
    assert_eq!(lines[6], "1", "one component");
    assert!(lines[8].starts_with("error:"), "out-of-range mid-stream: {}", lines[8]);
    assert!(lines[8].contains("out of range"), "{}", lines[8]);
    assert!(lines[9].starts_with("error:"), "unknown verb mid-stream: {}", lines[9]);
    assert_eq!(lines[10], "true", "serving continues after errors");
    assert!(stderr.contains("served 11 queries (2 errors)"), "{stderr}");
}

#[test]
fn serve_file_streams_identically_across_batch_and_thread_settings() {
    // The same mixed stream (interleaved parse errors, out-of-range ids,
    // duplicates) must produce byte-identical stdout whether it is answered
    // in one big batch, streamed in tiny chunks, or fanned out over worker
    // threads.
    let g2g = compressed_fixture();
    let queries = scratch("stream_queries.txt");
    let mut text = String::new();
    for i in 0..200u64 {
        match i % 7 {
            0 => text.push_str(&format!("out {}\n", i % 41)),
            1 => text.push_str(&format!("in {}\n", (i * 3) % 41)),
            2 => text.push_str(&format!("reach {} {}\n", i % 41, (i * 5) % 41)),
            3 => text.push_str(&format!("rpq {} {} 0* 1*\n", i % 41, (i * 11) % 41)),
            4 => text.push_str("# interleaved comment\n\n"),
            5 => text.push_str(&format!("out {}\n", 1000 + i)), // out of range
            _ => text.push_str("bogus verb\n"),                 // parse error
        }
    }
    std::fs::write(&queries, text).unwrap();
    let baseline = grepair(&["store", "serve-file", &g2g, queries.to_str().unwrap()]);
    assert!(baseline.status.success());
    let expected = String::from_utf8_lossy(&baseline.stdout).to_string();
    assert!(!expected.is_empty());
    for extra in [
        &["--batch", "7"][..],
        &["--batch", "1"][..],
        &["--threads", "4"][..],
        &["--batch", "16", "--threads", "3"][..],
        &["--threads", "0"][..], // auto: one worker per core
    ] {
        let mut args = vec!["store", "serve-file", &g2g, queries.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = grepair(&args);
        assert!(out.status.success(), "{extra:?}: {}", String::from_utf8_lossy(&out.stderr));
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            expected,
            "answers must not depend on {extra:?}"
        );
    }
}

#[test]
fn store_serve_speaks_the_same_bytes_as_serve_file() {
    // The real binary end to end: `store serve` on an ephemeral loopback
    // port must answer a mixed query file byte-identically to
    // `store serve-file`, and the admin plane must hot-reload without
    // dropping the connection (DESIGN.md §6).
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let g2g = compressed_fixture();
    let queries = scratch("serve_socket_queries.txt");
    let mut text = String::from("# all classes, with per-line errors\n\n");
    for i in 0..120u64 {
        match i % 6 {
            0 => text.push_str(&format!("out {}\n", i % 41)),
            1 => text.push_str(&format!("neighbors {}\n", (i * 3) % 41)),
            2 => text.push_str(&format!("reach {} {}\n", i % 41, (i * 5) % 41)),
            3 => text.push_str(&format!("rpq {} {} 0* 1*\n", i % 41, (i * 11) % 41)),
            4 => text.push_str(&format!("in {}\n", 1000 + i)), // out of range
            _ => text.push_str("bogus verb\n"),                // parse error
        }
    }
    text.push_str("components\ndegrees\n");
    std::fs::write(&queries, &text).unwrap();

    let offline = grepair(&["store", "serve-file", &g2g, queries.to_str().unwrap()]);
    assert!(offline.status.success());
    let expected = String::from_utf8_lossy(&offline.stdout).to_string();

    let mut server = Command::new(env!("CARGO_BIN_EXE_grepair"))
        .args(["store", "serve", &g2g, "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("server starts");
    // First stdout line announces the bound ephemeral port.
    let mut banner = String::new();
    BufReader::new(server.stdout.take().unwrap()).read_line(&mut banner).unwrap();
    assert!(banner.starts_with("listening "), "{banner:?}");
    assert!(banner.contains("proto=3") && banner.contains("namespaces=1"), "{banner:?}");
    assert!(banner.contains("generation=1"), "{banner:?}");
    let addr = banner.split_whitespace().nth(1).expect("addr in banner").to_string();

    let result = std::panic::catch_unwind(|| {
        // Byte-identity: stream the file, half-close, drain.
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(text.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut got = String::new();
        stream.read_to_string(&mut got).unwrap();
        assert_eq!(got, expected, "socket vs serve-file");

        // Admin plane on a second, interactive connection.
        let stream = TcpStream::connect(&addr).expect("connect admin");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut roundtrip = |line: &str| -> String {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };
        assert_eq!(roundtrip("PING"), "pong");
        assert!(roundtrip("INFO").contains("generation=1"));
        assert_eq!(roundtrip("out 0"), "1");
        // Bare RELOAD re-reads the serving .g2g (the configured path).
        assert!(roundtrip("RELOAD").starts_with("reloaded generation=2"));
        assert!(roundtrip("STATS default").starts_with("generation=2 "));
        assert!(roundtrip("STATS").starts_with("namespaces=1 resident=1 "), "aggregate form");
        assert_eq!(roundtrip("out 0"), "1", "same connection, new generation");
        assert_eq!(roundtrip("QUIT"), "bye");
    });
    let _ = server.kill();
    let _ = server.wait();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn serve_file_survives_hostile_bytes_and_missing_final_newline() {
    // serve-file runs the same session engine as the socket server: a
    // non-UTF-8 line and an oversized line become error replies (they used
    // to abort the old read_line loop), and an unterminated final line
    // still counts (file input is line-oriented — DESIGN.md §6.1).
    let g2g = compressed_fixture();
    let queries = scratch("hostile_serve_queries.txt");
    let mut bytes: Vec<u8> = Vec::new();
    bytes.extend_from_slice(b"out 0\n");
    bytes.extend_from_slice(b"\xff\xfe not text\n");
    bytes.extend_from_slice(&vec![b'a'; 100_000]);
    bytes.extend_from_slice(b"\nreach 0 40"); // no trailing newline
    std::fs::write(&queries, bytes).unwrap();
    let out = grepair(&["store", "serve-file", &g2g, queries.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    assert_eq!(lines[0], "1");
    assert!(lines[1].contains("not valid UTF-8"), "{stdout}");
    assert!(lines[2].contains("exceeds"), "{stdout}");
    assert_eq!(lines[3], "true", "unterminated final line still answered");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("served 4 queries (2 errors)"), "{stderr}");
}

#[test]
fn serve_file_speaks_the_admin_plane_and_flags_a_mid_file_quit() {
    let g2g = compressed_fixture();
    let queries = scratch("admin_serve_queries.txt");
    std::fs::write(&queries, "out 0\nSTATS\nQUIT\nout 1\nout 2\n# not a request\n").unwrap();
    let out = grepair(&["store", "serve-file", &g2g, queries.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "QUIT ends the session:\n{stdout}");
    assert_eq!(lines[0], "1");
    assert!(lines[1].starts_with("namespaces=1 resident=1 "), "{stdout}");
    assert_eq!(lines[2], "bye");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning: QUIT left 2 request lines unanswered"),
        "truncation must be visible:\n{stderr}"
    );
}

#[test]
fn multi_tenant_serve_file_and_socket_serve_stay_byte_identical() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let default_g2g = compressed_fixture();
    // A second tenant: a shorter single-label path, separately compressed.
    let input = scratch("tenant.txt");
    let tenant_g2g = scratch("tenant.g2g");
    let text: String = (0..10u32).map(|i| format!("{i} 0 {}\n", i + 1)).collect();
    std::fs::write(&input, text).unwrap();
    let out = grepair(&["compress", input.to_str().unwrap(), "-o", tenant_g2g.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let attach = format!("t={}", tenant_g2g.display());

    // A workload that crosses namespaces per line (`t:` prefixes), switches
    // the session namespace (`USE t`), and reads both STATS forms.
    let queries = scratch("mt_queries.txt");
    let workload = "out 0\nt:out 0\nLIST\nt:components\ncomponents\n\
                    t:out 99999\nUSE t\ndegrees\nSTATS t\nSTATS\n";
    std::fs::write(&queries, workload).unwrap();

    let offline = grepair(&[
        "store", "serve-file", &default_g2g, queries.to_str().unwrap(), "--attach", &attach,
    ]);
    assert!(offline.status.success(), "{}", String::from_utf8_lossy(&offline.stderr));
    let expected = String::from_utf8_lossy(&offline.stdout).to_string();
    assert_eq!(expected.lines().count(), 10, "one reply per request line:\n{expected}");

    let mut server = Command::new(env!("CARGO_BIN_EXE_grepair"))
        .args(["store", "serve", &default_g2g, "--addr", "127.0.0.1:0", "--attach", &attach])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("server starts");
    let mut banner = String::new();
    BufReader::new(server.stdout.take().unwrap()).read_line(&mut banner).unwrap();
    assert!(banner.contains("namespaces=2"), "{banner:?}");
    let addr = banner.split_whitespace().nth(1).expect("addr in banner").to_string();

    let result = std::panic::catch_unwind(|| {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(workload.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut got = String::new();
        stream.read_to_string(&mut got).unwrap();
        assert_eq!(got, expected, "multi-tenant socket vs serve-file");
    });
    let _ = server.kill();
    let _ = server.wait();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn store_serve_rejects_broken_setup() {
    assert_clean_failure(
        &grepair(&["store", "serve", "/nonexistent/x.g2g"]),
        "/nonexistent/x.g2g",
        "missing store",
    );
    let g2g = compressed_fixture();
    assert_clean_failure(
        &grepair(&["store", "serve", &g2g, "--prot", "80"]),
        "--prot",
        "typoed flag",
    );
    assert_clean_failure(
        &grepair(&["store", "serve", &g2g, "--batch", "0"]),
        "--batch",
        "zero batch",
    );
    assert_clean_failure(
        &grepair(&["store", "serve", &g2g, "--addr", "999.999.999.999:1"]),
        "bind",
        "unbindable address",
    );
}

#[test]
fn serve_file_rejects_broken_setup() {
    let g2g = compressed_fixture();
    let queries = scratch("setup_queries.txt");
    std::fs::write(&queries, "out 0\n").unwrap();
    // Bad store command.
    assert_clean_failure(&grepair(&["store", "frobnicate"]), "unknown store command", "verb");
    // Missing queries file.
    assert_clean_failure(
        &grepair(&["store", "serve-file", &g2g, "/nonexistent/q.txt"]),
        "/nonexistent/q.txt",
        "missing queries",
    );
    // Corrupt store file.
    let path = scratch("setup_corrupt.g2g");
    std::fs::write(&path, b"G2G1 nope").unwrap();
    assert_clean_failure(
        &grepair(&["store", "serve-file", path.to_str().unwrap(), queries.to_str().unwrap()]),
        path.to_str().unwrap(),
        "corrupt store",
    );
    // Bad batch size.
    assert_clean_failure(
        &grepair(&["store", "serve-file", &g2g, queries.to_str().unwrap(), "--batch", "0"]),
        "--batch",
        "zero batch",
    );
    // Typoed or value-less flags are usage errors, not silent no-ops.
    assert_clean_failure(
        &grepair(&["store", "serve-file", &g2g, queries.to_str().unwrap(), "--bacth", "64"]),
        "--bacth",
        "typoed flag",
    );
    assert_clean_failure(
        &grepair(&["store", "serve-file", &g2g, queries.to_str().unwrap(), "--batch"]),
        "needs a value",
        "value-less flag",
    );
    // Malformed --threads.
    assert_clean_failure(
        &grepair(&["store", "serve-file", &g2g, queries.to_str().unwrap(), "--threads", "lots"]),
        "--threads",
        "non-numeric threads",
    );
}

#[test]
fn unknown_backend_is_a_usage_error_naming_the_registry() {
    let input = scratch("backend_usage.txt");
    std::fs::write(&input, "0 1\n1 2\n").unwrap();
    let out = grepair(&[
        "compress",
        input.to_str().unwrap(),
        "-o",
        scratch("backend_usage.g2g").to_str().unwrap(),
        "--backend",
        "zpaq",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Exit 2 (usage), not 1 (run failure) — mirroring repro's unknown-flag
    // contract — and the error must teach the registered names.
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("zpaq"), "{stderr}");
    assert!(stderr.contains("grepair, k2, lm, hn"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");

    // Grammar-only flags on another backend are usage errors too.
    let out = grepair(&[
        "compress",
        input.to_str().unwrap(),
        "-o",
        scratch("backend_usage2.g2g").to_str().unwrap(),
        "--backend",
        "k2",
        "--max-rank",
        "6",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--max-rank"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // An `=`-style flag must not silently select the default backend.
    let out = grepair(&[
        "compress",
        input.to_str().unwrap(),
        "-o",
        scratch("backend_usage3.g2g").to_str().unwrap(),
        "--backend=k2",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--backend=k2"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn every_backend_compresses_decompresses_and_serves() {
    // One unlabeled path graph through all four backends: compress writes
    // a loadable container, decompress restores the edge set, and
    // serve-file answers the same queries (modulo the grammar backend's
    // node renumbering, which is why the workload below is id-symmetric:
    // path endpoints are detected structurally on the decompressed side).
    let input = scratch("multi_backend.txt");
    let mut text = String::new();
    for i in 0..30u32 {
        text.push_str(&format!("{} {}\n", i, i + 1));
    }
    std::fs::write(&input, &text).unwrap();

    for backend in ["grepair", "k2", "lm", "hn"] {
        let g2g = scratch(&format!("multi_{backend}.c"));
        let out = grepair(&[
            "compress",
            input.to_str().unwrap(),
            "-o",
            g2g.to_str().unwrap(),
            "--backend",
            backend,
        ]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "{backend} compress: {stderr}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains(&format!("backend {backend}")),
            "{backend}"
        );

        // Decompress restores the 30-edge path (ids may differ for grepair).
        let restored = scratch(&format!("multi_{backend}_restored.txt"));
        let out = grepair(&[
            "decompress",
            g2g.to_str().unwrap(),
            "-o",
            restored.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{backend} decompress");
        let lines = std::fs::read_to_string(&restored).unwrap().lines().count();
        assert_eq!(lines, 30, "{backend} edge count");

        // serve-file: neighbors end to end, plus a mid-stream error.
        let queries = scratch(&format!("multi_{backend}_queries.txt"));
        std::fs::write(&queries, "components\ndegrees\nout 99999\nreach 0 0\n").unwrap();
        let out = grepair(&["store", "serve-file", g2g.to_str().unwrap(), queries.to_str().unwrap()]);
        assert!(out.status.success(), "{backend} serve-file");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(lines[0], "1", "{backend}: one component");
        assert_eq!(lines[1], "min=1 max=2", "{backend}: path degrees");
        assert!(lines[2].contains("out of range"), "{backend}: {stdout}");
        assert_eq!(lines[3], "true", "{backend}: reflexive reach");
    }
}

/// A four-node k2 path `0 -> 1 -> 2 -> 3` (the k2 codec keeps input node
/// ids, so versioning tests can name concrete nodes), compressed to `name`.
fn k2_path_fixture(name: &str) -> String {
    let input = scratch(&format!("{name}.txt"));
    std::fs::write(&input, "0 0 1\n1 0 2\n2 0 3\n").unwrap();
    let g2g = scratch(&format!("{name}.k2"));
    let out = grepair(&[
        "compress", input.to_str().unwrap(), "-o", g2g.to_str().unwrap(), "--backend", "k2",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    g2g.to_str().unwrap().to_string()
}

#[test]
fn store_patch_and_versions_replay_a_patch_file_offline() {
    let g2g = k2_path_fixture("offline_patch");
    let patches = scratch("offline_patch_list.txt");
    std::fs::write(&patches, "# close the cycle, drop the first hop\nADD 3 0 0\n\nDEL 0 0 1\n")
        .unwrap();

    // Dry run: one line, exactly the wire protocol's VERSIONS reply.
    let out = grepair(&["store", "versions", &g2g, patches.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim_end(),
        "versions=3 head=v2 v0=+0-0 v1=+1-0 v2=+1-1"
    );

    // Real run: materialize the head and recompress with the input's own
    // backend, then query the written container.
    let patched = scratch("offline_patched.k2");
    let out = grepair(&[
        "store", "patch", &g2g, patches.to_str().unwrap(), "-o", patched.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("backend k2"), "{stdout}");
    assert!(stdout.contains("v2 materialized"), "{stdout}");
    assert!(stdout.contains("+1-1"), "{stdout}");
    // Edges are now 1->2, 2->3, 3->0: reachability flips accordingly.
    let out = grepair(&["query", "reach", patched.to_str().unwrap(), "2", "0"]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim_end(), "reachable");
    let out = grepair(&["query", "reach", patched.to_str().unwrap(), "0", "2"]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim_end(), "not reachable");

    // A rejected patch aborts the replay with the file position, and
    // nothing is written.
    let bad = scratch("offline_bad_patches.txt");
    std::fs::write(&bad, "ADD 3 0 0\nDEL 9 9 9\n").unwrap();
    let missing = scratch("offline_never_written.k2");
    let out = grepair(&[
        "store", "patch", &g2g, bad.to_str().unwrap(), "-o", missing.to_str().unwrap(),
    ]);
    assert_clean_failure(&out, ":2:", "rejected patch line");
    assert!(!missing.exists(), "a failed replay must not write output");
}

#[test]
fn serve_file_patches_and_time_travels() {
    // The full versioning surface through the offline front end: PATCH,
    // VERSIONS, and `@vN` pinned queries — plus the parity check that the
    // `store versions` dry run prints the same listing the session renders
    // after the same patches.
    let g2g = k2_path_fixture("serve_versioned");
    let queries = scratch("serve_versioned_queries.txt");
    std::fs::write(
        &queries,
        "VERSIONS\nPATCH ADD 3 0 0\nreach 3 1\nreach 3 1 @v0\nPATCH DEL 0 0 1\n\
         reach 0 2\nreach 0 2 @v1\nreach 0 2 @v0\nout 0 @v9\nVERSIONS\n",
    )
    .unwrap();
    let out = grepair(&["store", "serve-file", &g2g, queries.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 10, "{stdout}");
    assert_eq!(lines[0], "versions=1 head=v0 v0=+0-0");
    assert_eq!(lines[1], "patched version=1 generation=2 added=1 removed=0");
    assert_eq!(lines[2], "true", "head sees the new 3->0 edge");
    assert_eq!(lines[3], "false", "@v0 still serves the base");
    assert_eq!(lines[4], "patched version=2 generation=3 added=1 removed=1");
    assert_eq!(lines[5], "false", "head lost the 0->1 hop");
    assert_eq!(lines[6], "true", "@v1 still has it");
    assert_eq!(lines[7], "true", "@v0 too");
    assert!(lines[8].contains("unknown version v9"), "{stdout}");
    assert_eq!(lines[9], "versions=3 head=v2 v0=+0-0 v1=+1-0 v2=+1-1");

    // Dry-run parity: `store versions` over the equivalent patch file
    // prints byte-for-byte the session's final VERSIONS reply.
    let patches = scratch("serve_versioned_patches.txt");
    std::fs::write(&patches, "ADD 3 0 0\nDEL 0 0 1\n").unwrap();
    let out = grepair(&["store", "versions", &g2g, patches.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim_end(), lines[9]);
}

#[test]
fn decompress_rejects_bad_flags_and_map_files() {
    let g2g = compressed_fixture();
    let out_path = scratch("rejects_out.txt");
    let out_str = out_path.to_str().unwrap();
    // Unknown flag.
    assert_clean_failure(
        &grepair(&["decompress", &g2g, "-o", out_str, "--mpa", "x"]),
        "--mpa",
        "typoed --map",
    );
    // Map file with extra columns.
    let bad_map = scratch("bad_columns.map");
    std::fs::write(&bad_map, "0 5 7\n").unwrap();
    assert_clean_failure(
        &grepair(&["decompress", &g2g, "-o", out_str, "--map", bad_map.to_str().unwrap()]),
        "trailing token",
        "three-column map",
    );
    // Map file with a duplicate derived id.
    let dup_map = scratch("dup.map");
    std::fs::write(&dup_map, "0 5\n0 6\n").unwrap();
    assert_clean_failure(
        &grepair(&["decompress", &g2g, "-o", out_str, "--map", dup_map.to_str().unwrap()]),
        "duplicate mapping",
        "duplicate map line",
    );
    // Map file missing ids.
    let sparse_map = scratch("missing.map");
    std::fs::write(&sparse_map, "0 5\n").unwrap();
    assert_clean_failure(
        &grepair(&["decompress", &g2g, "-o", out_str, "--map", sparse_map.to_str().unwrap()]),
        "no mapping",
        "incomplete map",
    );
}
