//! `grepair` — command-line front end for the gRePair graph compressor.
//!
//! ```text
//! grepair stats      <graph.txt>
//! grepair compress   <graph.txt> -o <out.g2g> [--max-rank N] [--order fp|fp0|bfs|natural|random]
//!                    [--no-prune] [--no-virtual] [--map <out.map>]
//! grepair decompress <in.g2g> -o <graph.txt> [--map <in.map>]
//! grepair query      reach <in.g2g> <s> <t>
//! grepair query      neighbors <in.g2g> <v>
//! grepair query      components <in.g2g>
//! grepair query      rpq <in.g2g> <s> <t> <atom>...
//! grepair store      serve-file <in.g2g> <queries.txt> [--batch N] [--threads N]
//! grepair store      serve <in.g2g> [--addr HOST:PORT] [--threads N] [--batch N] [--max-line N]
//! grepair generate   <kind> [n] [seed] -o <graph.txt>
//! ```
//!
//! Graph text formats: SNAP-style `source target` pairs, or integer RDF
//! triples `subject predicate object` (three columns, autodetected).
//!
//! Every decode and query path is fallible end to end (the CLI is a thin
//! shell over [`grepair_store::GraphStore`]): hostile `.g2g` bytes and
//! out-of-range node ids exit with an error message, never a panic.

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::order::NodeOrder;
use grepair_hypergraph::{io, Hypergraph};
use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  grepair stats      <graph.txt>
  grepair compress   <graph.txt> -o <out.g2g> [--max-rank N] [--order ORDER] [--no-prune] [--no-virtual] [--map FILE]
  grepair decompress <in.g2g> -o <graph.txt> [--map FILE]
  grepair query      reach <in.g2g> <s> <t> | neighbors <in.g2g> <v> | components <in.g2g> | rpq <in.g2g> <s> <t> <atom>...
  grepair store      serve-file <in.g2g> <queries.txt> [--batch N] [--threads N]
  grepair store      serve <in.g2g> [--addr HOST:PORT] [--threads N] [--batch N] [--max-line N]
  grepair generate   <kind> [n] [seed] -o <graph.txt>   (kinds: ttt, types, pa, er, coauth, web, chess, versions)";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("stats") => commands::stats(args.get(1).ok_or("missing input file")?),
        Some("compress") => {
            let input = args.get(1).ok_or("missing input file")?;
            let opts = parse_compress_opts(&args[2..])?;
            commands::compress_file(input, &opts)
        }
        Some("decompress") => {
            let input = args.get(1).ok_or("missing input file")?;
            validate_value_flags(&args[2..], &["-o", "--map"])?;
            let output = flag_value(&args[2..], "-o").ok_or("missing -o OUTPUT")?;
            let map = flag_value(&args[2..], "--map");
            commands::decompress_file(input, &output, map.as_deref())
        }
        Some("query") => commands::query(&args[1..]),
        Some("store") => commands::store_cmd(&args[1..]),
        Some("generate") => commands::generate(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("no command given".into()),
    }
}

/// Options for `grepair compress`.
pub struct CompressOpts {
    /// Output path.
    pub output: String,
    /// Optional node-map sidecar path.
    pub map: Option<String>,
    /// Compressor configuration.
    pub config: GRePairConfig,
}

// One argv contract for every binary in the workspace (the server shares
// these — see `grepair_util::args`).
pub(crate) use grepair_util::args::{flag_value, validate_value_flags};

fn parse_compress_opts(args: &[String]) -> Result<CompressOpts, String> {
    let output = flag_value(args, "-o").ok_or("missing -o OUTPUT")?;
    let map = flag_value(args, "--map");
    let mut config = GRePairConfig::default();
    if let Some(raw) = flag_value(args, "--max-rank") {
        config.max_rank = raw.parse().map_err(|e| format!("bad --max-rank: {e}"))?;
    }
    if let Some(raw) = flag_value(args, "--order") {
        config.order = match raw.as_str() {
            "fp" => NodeOrder::Fp,
            "fp0" => NodeOrder::Fp0,
            "bfs" => NodeOrder::Bfs,
            "natural" => NodeOrder::Natural,
            "random" => NodeOrder::Random(0),
            other => return Err(format!("unknown order {other:?}")),
        };
    }
    if args.iter().any(|a| a == "--no-prune") {
        config.prune = false;
    }
    if args.iter().any(|a| a == "--no-virtual") {
        config.connect_components = false;
    }
    Ok(CompressOpts { output, map, config })
}

/// Read a graph from a text file, autodetecting pairs vs triples.
pub fn read_graph(path: &str) -> Result<Hypergraph, String> {
    read_graph_with_map(path).map(|(g, _)| g)
}

/// Like [`read_graph`], but also return the dense-id → original-label map
/// the parser built (index = dense node id, value = the label the input
/// file used).
pub fn read_graph_with_map(path: &str) -> Result<(Hypergraph, Vec<u64>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let columns = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.split_whitespace().count())
        .unwrap_or(2);
    match columns {
        2 => io::parse_pairs(&text).map(|(g, m, _)| (g, m)).map_err(|e| e.to_string()),
        3 => io::parse_triples(&text).map(|(g, m, _)| (g, m)).map_err(|e| e.to_string()),
        n => Err(format!("{path}: expected 2 or 3 columns, found {n}")),
    }
}

/// Run a compression and report to stdout.
pub fn compress_and_report(g: &Hypergraph, config: &GRePairConfig) -> grepair_core::CompressedGraph {
    let out = compress(g, config);
    println!(
        "compressed: |g| = {} -> |G| = {} (ratio {:.3}); {} rules, {} replacements",
        out.stats.input_size,
        out.stats.grammar_size,
        out.stats.ratio(),
        out.grammar.num_nonterminals(),
        out.stats.replacements,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn compress_opts_defaults() {
        let opts = parse_compress_opts(&args(&["-o", "out.g2g"])).unwrap();
        assert_eq!(opts.output, "out.g2g");
        assert!(opts.map.is_none());
        assert_eq!(opts.config.max_rank, 4);
        assert!(opts.config.prune);
        assert!(opts.config.connect_components);
    }

    #[test]
    fn compress_opts_full() {
        let opts = parse_compress_opts(&args(&[
            "--max-rank", "6", "-o", "x", "--order", "bfs", "--no-prune", "--no-virtual",
            "--map", "m.txt",
        ]))
        .unwrap();
        assert_eq!(opts.config.max_rank, 6);
        assert_eq!(opts.config.order, NodeOrder::Bfs);
        assert!(!opts.config.prune);
        assert!(!opts.config.connect_components);
        assert_eq!(opts.map.as_deref(), Some("m.txt"));
    }

    #[test]
    fn compress_opts_errors() {
        assert!(parse_compress_opts(&args(&[])).is_err());
        assert!(parse_compress_opts(&args(&["-o", "x", "--order", "zigzag"])).is_err());
        assert!(parse_compress_opts(&args(&["-o", "x", "--max-rank", "many"])).is_err());
    }

    #[test]
    fn read_graph_autodetects_columns() {
        let dir = std::env::temp_dir();
        let pairs = dir.join("grepair_cli_test_pairs.txt");
        std::fs::write(&pairs, "# c\n1 2\n2 3\n").unwrap();
        let g = read_graph(pairs.to_str().unwrap()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.edges().all(|e| e.label.index() == 0));

        let triples = dir.join("grepair_cli_test_triples.txt");
        std::fs::write(&triples, "1 9 2\n2 7 3\n").unwrap();
        let g = read_graph(triples.to_str().unwrap()).unwrap();
        assert_eq!(g.num_edges(), 2);
        let labels: std::collections::BTreeSet<u32> =
            g.edges().map(|e| e.label.index()).collect();
        assert_eq!(labels.len(), 2);

        assert!(read_graph("/nonexistent/grepair.txt").is_err());
    }

    #[test]
    fn unknown_command_is_reported() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&[])).is_err());
    }

    #[test]
    fn value_flags_are_validated() {
        let known = ["-o", "--map"];
        assert!(validate_value_flags(&args(&[]), &known).is_ok());
        assert!(validate_value_flags(&args(&["-o", "x"]), &known).is_ok());
        assert!(validate_value_flags(&args(&["--map", "m", "-o", "x"]), &known).is_ok());
        assert!(validate_value_flags(&args(&["--mpa", "m"]), &known).is_err());
        assert!(validate_value_flags(&args(&["-o"]), &known).is_err());
        assert!(validate_value_flags(&args(&["stray", "-o", "x"]), &known).is_err());
    }
}
