//! `grepair` — command-line front end for the gRePair graph compressor.
//!
//! ```text
//! grepair stats      <graph.txt>
//! grepair compress   <graph.txt> -o <out.g2g> [--max-rank N] [--order fp|fp0|bfs|natural|random]
//!                    [--no-prune] [--no-virtual] [--map <out.map>]
//! grepair decompress <in.g2g> -o <graph.txt> [--map <in.map>]
//! grepair query      reach <in.g2g> <s> <t>
//! grepair query      neighbors <in.g2g> <v>
//! grepair query      components <in.g2g>
//! grepair query      rpq <in.g2g> <s> <t> <atom>...
//! grepair store      serve-file <in.g2g> <queries.txt> [--batch N] [--threads N]
//! grepair store      serve <in.g2g> [--addr HOST:PORT] [--threads N] [--batch N] [--max-line N]
//! grepair store      patch <in.g2g> <patches.txt> -o <out.g2g> [--backend NAME]
//! grepair store      versions <in.g2g> <patches.txt>
//! grepair generate   <kind> [n] [seed] -o <graph.txt>
//! ```
//!
//! Graph text formats: SNAP-style `source target` pairs, or integer RDF
//! triples `subject predicate object` (three columns, autodetected).
//!
//! Every decode and query path is fallible end to end (the CLI is a thin
//! shell over [`grepair_store::GraphStore`]): hostile `.g2g` bytes and
//! out-of-range node ids exit with an error message, never a panic.

#![forbid(unsafe_code)]

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::order::NodeOrder;
use grepair_hypergraph::{io, Hypergraph};
use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Fail(message)) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        // Usage errors (unknown backend, mirroring `repro`'s unknown-flag
        // contract) exit 2 so scripts can tell "you called it wrong" from
        // "it ran and failed".
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// A CLI failure, split by exit code: `Usage` is a malformed invocation
/// (exit 2, like `repro`'s unknown-flag handling); `Fail` is a run-time
/// failure (exit 1).
#[derive(Debug)]
pub enum CliError {
    /// The invocation itself is wrong (exit 2).
    Usage(String),
    /// The command ran and failed (exit 1).
    Fail(String),
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Fail(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::Fail(message.into())
    }
}

const USAGE: &str = "usage:
  grepair stats      <graph.txt>
  grepair compress   <graph.txt> -o <out.g2g> [--backend NAME] [--max-rank N] [--order ORDER] [--no-prune] [--no-virtual] [--map FILE]
  grepair decompress <in.g2g> -o <graph.txt> [--map FILE]
  grepair query      reach <in.g2g> <s> <t> | neighbors <in.g2g> <v> | components <in.g2g> | rpq <in.g2g> <s> <t> <atom>...
  grepair store      serve-file <in.g2g> <queries.txt> [--batch N] [--threads N]
  grepair store      serve <in.g2g> [--addr HOST:PORT] [--threads N] [--batch N] [--max-line N] [--read-timeout SECS] [--max-connections N] [--io epoll|threads]
  grepair store      patch <in.g2g> <patches.txt> -o <out.g2g> [--backend NAME]
  grepair store      versions <in.g2g> <patches.txt>
  grepair generate   <kind> [n] [seed] -o <graph.txt>   (kinds: ttt, types, pa, er, coauth, web, chess, versions)
backends: grepair (default), k2, lm, hn — every one loads and serves through `query` / `store`";

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("stats") => Ok(commands::stats(args.get(1).ok_or("missing input file")?)?),
        Some("compress") => {
            let input = args.get(1).ok_or("missing input file")?;
            let opts = parse_compress_opts(&args[2..])?;
            Ok(commands::compress_file(input, &opts)?)
        }
        Some("decompress") => {
            let input = args.get(1).ok_or("missing input file")?;
            validate_value_flags(&args[2..], &["-o", "--map"])?;
            let output = flag_value(&args[2..], "-o").ok_or("missing -o OUTPUT")?;
            let map = flag_value(&args[2..], "--map");
            Ok(commands::decompress_file(input, &output, map.as_deref())?)
        }
        Some("query") => Ok(commands::query(&args[1..])?),
        Some("store") => Ok(commands::store_cmd(&args[1..])?),
        Some("generate") => Ok(commands::generate(&args[1..])?),
        Some(other) => Err(format!("unknown command {other:?}").into()),
        None => Err("no command given".into()),
    }
}

/// Options for `grepair compress`.
pub struct CompressOpts {
    /// Output path.
    pub output: String,
    /// Optional node-map sidecar path.
    pub map: Option<String>,
    /// Which registered backend encodes the graph (default `grepair`).
    pub backend: &'static str,
    /// Compressor configuration (gRePair backend only).
    pub config: GRePairConfig,
}

// One argv contract for every binary in the workspace (the server shares
// these — see `grepair_util::args`).
pub(crate) use grepair_util::args::{flag_value, validate_value_flags};

fn parse_compress_opts(args: &[String]) -> Result<CompressOpts, CliError> {
    // Unknown or value-less flags are usage errors, not silent no-ops — a
    // typoed `--backed k2` or `--backend=k2` must never quietly fall back
    // to the default grammar backend.
    let value_flags = ["-o", "--map", "--backend", "--max-rank", "--order"];
    let bool_flags = ["--no-prune", "--no-virtual"];
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if bool_flags.contains(&a.as_str()) {
            i += 1;
        } else if value_flags.contains(&a.as_str()) {
            if i + 1 >= args.len() {
                return Err(CliError::Usage(format!("flag {a} needs a value")));
            }
            i += 2;
        } else {
            return Err(CliError::Usage(format!("unexpected argument {a:?}")));
        }
    }
    let output = flag_value(args, "-o").ok_or("missing -o OUTPUT")?;
    let map = flag_value(args, "--map");
    let backend = match flag_value(args, "--backend") {
        None => grepair_store::backend::GREPAIR,
        Some(name) => match grepair_store::codec_for(&name) {
            Some(codec) => codec.name(),
            // A typoed backend is a usage error (exit 2) that teaches the
            // registry — the message is the registry's own
            // (`unknown_backend_error`), shared with container dispatch,
            // mirroring `repro`'s unknown-flag handling.
            None => {
                return Err(CliError::Usage(
                    grepair_store::backend::unknown_backend_error(&name),
                ))
            }
        },
    };
    let grammar_only = ["--max-rank", "--order", "--no-prune", "--no-virtual"];
    if backend != grepair_store::backend::GREPAIR {
        if let Some(flag) = args.iter().find(|a| grammar_only.contains(&a.as_str())) {
            return Err(CliError::Usage(format!(
                "{flag} applies to the grepair backend only (got --backend {backend})"
            )));
        }
    }
    let mut config = GRePairConfig::default();
    if let Some(raw) = flag_value(args, "--max-rank") {
        config.max_rank = raw.parse().map_err(|e| format!("bad --max-rank: {e}"))?;
    }
    if let Some(raw) = flag_value(args, "--order") {
        config.order = match raw.as_str() {
            "fp" => NodeOrder::Fp,
            "fp0" => NodeOrder::Fp0,
            "bfs" => NodeOrder::Bfs,
            "natural" => NodeOrder::Natural,
            "random" => NodeOrder::Random(0),
            other => return Err(format!("unknown order {other:?}").into()),
        };
    }
    if args.iter().any(|a| a == "--no-prune") {
        config.prune = false;
    }
    if args.iter().any(|a| a == "--no-virtual") {
        config.connect_components = false;
    }
    Ok(CompressOpts { output, map, backend, config })
}

/// Read a graph from a text file, autodetecting pairs vs triples.
pub fn read_graph(path: &str) -> Result<Hypergraph, String> {
    read_graph_with_map(path).map(|(g, _)| g)
}

/// Like [`read_graph`], but also return the dense-id → original-label map
/// the parser built (index = dense node id, value = the label the input
/// file used).
pub fn read_graph_with_map(path: &str) -> Result<(Hypergraph, Vec<u64>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let columns = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.split_whitespace().count())
        .unwrap_or(2);
    match columns {
        2 => io::parse_pairs(&text).map(|(g, m, _)| (g, m)).map_err(|e| e.to_string()),
        3 => io::parse_triples(&text).map(|(g, m, _)| (g, m)).map_err(|e| e.to_string()),
        n => Err(format!("{path}: expected 2 or 3 columns, found {n}")),
    }
}

/// Run a compression and report to stdout.
pub fn compress_and_report(g: &Hypergraph, config: &GRePairConfig) -> grepair_core::CompressedGraph {
    let out = compress(g, config);
    println!(
        "compressed: |g| = {} -> |G| = {} (ratio {:.3}); {} rules, {} replacements",
        out.stats.input_size,
        out.stats.grammar_size,
        out.stats.ratio(),
        out.grammar.num_nonterminals(),
        out.stats.replacements,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn compress_opts_defaults() {
        let opts = parse_compress_opts(&args(&["-o", "out.g2g"])).unwrap();
        assert_eq!(opts.output, "out.g2g");
        assert!(opts.map.is_none());
        assert_eq!(opts.backend, "grepair");
        assert_eq!(opts.config.max_rank, 4);
        assert!(opts.config.prune);
        assert!(opts.config.connect_components);
    }

    #[test]
    fn compress_opts_backend_selection() {
        for name in ["grepair", "k2", "lm", "hn"] {
            let opts = parse_compress_opts(&args(&["-o", "x", "--backend", name])).unwrap();
            assert_eq!(opts.backend, name);
        }
        // Unknown backends and grammar-only flags on other backends are
        // Usage errors (exit 2), not plain failures.
        assert!(matches!(
            parse_compress_opts(&args(&["-o", "x", "--backend", "zpaq"])),
            Err(CliError::Usage(m)) if m.contains("grepair, k2, lm, hn")
        ));
        assert!(matches!(
            parse_compress_opts(&args(&["-o", "x", "--backend", "lm", "--no-prune"])),
            Err(CliError::Usage(m)) if m.contains("--no-prune")
        ));
        // ...but they stay valid for the default grammar backend.
        assert!(parse_compress_opts(&args(&["-o", "x", "--no-prune"])).is_ok());
        // Malformed flag shapes must not silently fall back to the
        // default backend: `=`-style values, typos, and value-less flags
        // are all usage errors.
        assert!(matches!(
            parse_compress_opts(&args(&["-o", "x", "--backend=k2"])),
            Err(CliError::Usage(m)) if m.contains("--backend=k2")
        ));
        assert!(matches!(
            parse_compress_opts(&args(&["-o", "x", "--backed", "k2"])),
            Err(CliError::Usage(m)) if m.contains("--backed")
        ));
        assert!(matches!(
            parse_compress_opts(&args(&["-o", "x", "--backend"])),
            Err(CliError::Usage(m)) if m.contains("needs a value")
        ));
    }

    #[test]
    fn compress_opts_full() {
        let opts = parse_compress_opts(&args(&[
            "--max-rank", "6", "-o", "x", "--order", "bfs", "--no-prune", "--no-virtual",
            "--map", "m.txt",
        ]))
        .unwrap();
        assert_eq!(opts.config.max_rank, 6);
        assert_eq!(opts.config.order, NodeOrder::Bfs);
        assert!(!opts.config.prune);
        assert!(!opts.config.connect_components);
        assert_eq!(opts.map.as_deref(), Some("m.txt"));
    }

    #[test]
    fn compress_opts_errors() {
        assert!(parse_compress_opts(&args(&[])).is_err());
        assert!(parse_compress_opts(&args(&["-o", "x", "--order", "zigzag"])).is_err());
        assert!(parse_compress_opts(&args(&["-o", "x", "--max-rank", "many"])).is_err());
    }

    #[test]
    fn read_graph_autodetects_columns() {
        let dir = std::env::temp_dir();
        let pairs = dir.join("grepair_cli_test_pairs.txt");
        std::fs::write(&pairs, "# c\n1 2\n2 3\n").unwrap();
        let g = read_graph(pairs.to_str().unwrap()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.edges().all(|e| e.label.index() == 0));

        let triples = dir.join("grepair_cli_test_triples.txt");
        std::fs::write(&triples, "1 9 2\n2 7 3\n").unwrap();
        let g = read_graph(triples.to_str().unwrap()).unwrap();
        assert_eq!(g.num_edges(), 2);
        let labels: std::collections::BTreeSet<u32> =
            g.edges().map(|e| e.label.index()).collect();
        assert_eq!(labels.len(), 2);

        assert!(read_graph("/nonexistent/grepair.txt").is_err());
    }

    #[test]
    fn unknown_command_is_reported() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&[])).is_err());
    }

    #[test]
    fn value_flags_are_validated() {
        let known = ["-o", "--map"];
        assert!(validate_value_flags(&args(&[]), &known).is_ok());
        assert!(validate_value_flags(&args(&["-o", "x"]), &known).is_ok());
        assert!(validate_value_flags(&args(&["--map", "m", "-o", "x"]), &known).is_ok());
        assert!(validate_value_flags(&args(&["--mpa", "m"]), &known).is_err());
        assert!(validate_value_flags(&args(&["-o"]), &known).is_err());
        assert!(validate_value_flags(&args(&["stray", "-o", "x"]), &known).is_err());
    }
}
