//! Command implementations for the `grepair` CLI.

use crate::{compress_and_report, read_graph, CompressOpts};
use grepair_datasets as datasets;
use grepair_hypergraph::{EdgeLabel, Hypergraph};
use grepair_queries::{speedup, GrammarIndex, ReachIndex};

/// Container magic for `.g2g` files.
const MAGIC: &[u8; 4] = b"G2G1";

/// `grepair stats <graph>`.
pub fn stats(path: &str) -> Result<(), String> {
    let g = read_graph(path)?;
    let s = datasets::stats(&g);
    println!("|V|        {}", grepair_util::fmt::human_count(s.nodes as u64));
    println!("|E|        {}", grepair_util::fmt::human_count(s.edges as u64));
    println!("|Sigma|    {}", s.labels);
    println!("|[~FP]|    {}", grepair_util::fmt::human_count(s.fp_classes as u64));
    Ok(())
}

/// `grepair compress <graph> -o <out>`.
pub fn compress_file(input: &str, opts: &CompressOpts) -> Result<(), String> {
    let g = read_graph(input)?;
    let out = compress_and_report(&g, &opts.config);
    let encoded = grepair_codec::encode(&out.grammar);
    let mut file = Vec::with_capacity(encoded.bytes.len() + 16);
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&encoded.bit_len.to_le_bytes());
    file.extend_from_slice(&encoded.bytes);
    std::fs::write(&opts.output, &file).map_err(|e| format!("{}: {e}", opts.output))?;
    println!(
        "wrote {} ({} bytes, {:.3} bits/edge)",
        opts.output,
        file.len(),
        encoded.bits_per_edge(g.num_edges())
    );
    if let Some(map_path) = &opts.map {
        let mut text = String::new();
        for (derived, original) in out.node_map.iter().enumerate() {
            text.push_str(&format!("{derived} {original}\n"));
        }
        std::fs::write(map_path, text).map_err(|e| format!("{map_path}: {e}"))?;
        println!("wrote node map {map_path}");
    }
    Ok(())
}

fn read_g2g(path: &str) -> Result<grepair_grammar::Grammar, String> {
    let file = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if file.len() < 12 || &file[..4] != MAGIC {
        return Err(format!("{path}: not a g2g file"));
    }
    let bit_len = u64::from_le_bytes(file[4..12].try_into().unwrap());
    grepair_codec::decode(&file[12..], bit_len).map_err(|e| format!("{path}: {e}"))
}

/// `grepair decompress <in> -o <out>`.
pub fn decompress_file(input: &str, output: &str) -> Result<(), String> {
    let grammar = read_g2g(input)?;
    let derived = grammar.derive();
    // Pairs for single-label rank-2 graphs, triples otherwise.
    let single_label = derived
        .edges()
        .all(|e| e.label == EdgeLabel::Terminal(0) && e.att.len() == 2);
    let mut text = String::new();
    for e in derived.edges() {
        if single_label {
            text.push_str(&format!("{} {}\n", e.att[0], e.att[1]));
        } else {
            text.push_str(&format!("{} {} {}\n", e.att[0], e.label.index(), e.att[1]));
        }
    }
    std::fs::write(output, text).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "decompressed {} -> {} ({} nodes, {} edges)",
        input,
        output,
        derived.num_nodes(),
        derived.num_edges()
    );
    Ok(())
}

/// `grepair query ...`.
pub fn query(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("reach") => {
            let grammar = read_g2g(args.get(1).ok_or("missing g2g file")?)?;
            let s: u64 = args.get(2).ok_or("missing s")?.parse().map_err(|e| format!("{e}"))?;
            let t: u64 = args.get(3).ok_or("missing t")?.parse().map_err(|e| format!("{e}"))?;
            let reach = ReachIndex::new(&grammar);
            println!("{}", if reach.reachable(s, t) { "reachable" } else { "not reachable" });
            Ok(())
        }
        Some("neighbors") => {
            let grammar = read_g2g(args.get(1).ok_or("missing g2g file")?)?;
            let v: u64 = args.get(2).ok_or("missing v")?.parse().map_err(|e| format!("{e}"))?;
            let idx = GrammarIndex::new(&grammar);
            println!("out: {:?}", idx.out_neighbors(v));
            println!("in:  {:?}", idx.in_neighbors(v));
            Ok(())
        }
        Some("components") => {
            let grammar = read_g2g(args.get(1).ok_or("missing g2g file")?)?;
            println!("{}", speedup::connected_components(&grammar));
            Ok(())
        }
        other => Err(format!("unknown query {other:?}")),
    }
}

/// `grepair generate <kind> [n] [seed] -o <out>`.
pub fn generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("missing dataset kind")?;
    let positional: Vec<&String> = args[1..]
        .iter()
        .take_while(|a| !a.starts_with('-'))
        .collect();
    let n: usize = positional
        .first()
        .map(|s| s.parse().map_err(|e| format!("bad n: {e}")))
        .transpose()?
        .unwrap_or(10_000);
    let seed: u64 = positional
        .get(1)
        .map(|s| s.parse().map_err(|e| format!("bad seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let output = crate::flag_value(args, "-o").ok_or("missing -o OUTPUT")?;

    let g: Hypergraph = match kind.as_str() {
        "ttt" => datasets::ttt::game_graph(),
        "types" => datasets::rdf::types_star(n, (n / 500).max(4), seed),
        "pa" => datasets::network::preferential_attachment(n, 4, seed),
        "er" => datasets::network::erdos_renyi(n, 5 * n, seed),
        "coauth" => datasets::network::co_authorship(n, 2 * n / 3, 6, seed),
        "web" => datasets::network::web_copy(n, 6, 0.6, seed),
        "chess" => datasets::version::chess_like(n, 12, seed),
        "versions" => {
            let h = datasets::version::CoauthorshipHistory::generate(8, n / 100 + 5, n / 4 + 10, n / 50 + 1, seed);
            h.version_graph(7)
        }
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    let labeled = g.edges().any(|e| e.label != EdgeLabel::Terminal(0));
    let mut text = String::new();
    if labeled {
        for e in g.edges() {
            text.push_str(&format!("{} {} {}\n", e.att[0], e.label.index(), e.att[1]));
        }
    } else {
        for e in g.edges() {
            text.push_str(&format!("{} {}\n", e.att[0], e.att[1]));
        }
    }
    std::fs::write(&output, text).map_err(|e| format!("{output}: {e}"))?;
    println!("wrote {output}: {} nodes, {} edges", g.num_nodes(), g.num_edges());
    Ok(())
}
