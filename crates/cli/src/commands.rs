//! Command implementations for the `grepair` CLI.
//!
//! Everything that touches a `.g2g` goes through
//! [`grepair_store::GraphStore`], so the CLI inherits the store's zero-panic
//! guarantee: hostile bytes and out-of-range ids become error messages and a
//! non-zero exit code.

use std::io::{BufReader, BufWriter, Read, Write};

use crate::{compress_and_report, read_graph, read_graph_with_map, CompressOpts};
use grepair_datasets as datasets;
use grepair_hypergraph::{EdgeLabel, Hypergraph};
use grepair_store::backend::{resolve_codec, split_any_container, GREPAIR};
use grepair_store::{
    materialize, write_container, EdgePatch, GraphStore, GrepairError, StoreRegistry,
    VersionedStore,
};

/// `grepair stats <graph>`.
pub fn stats(path: &str) -> Result<(), String> {
    let g = read_graph(path)?;
    let s = datasets::stats(&g);
    println!("|V|        {}", grepair_util::fmt::human_count(s.nodes as u64));
    println!("|E|        {}", grepair_util::fmt::human_count(s.edges as u64));
    println!("|Sigma|    {}", s.labels);
    println!("|[~FP]|    {}", grepair_util::fmt::human_count(s.fp_classes as u64));
    Ok(())
}

/// `grepair compress <graph> -o <out> [--backend NAME]`.
///
/// The gRePair backend keeps its config-driven path (and its byte-exact
/// legacy `.g2g` output); every other backend routes through its
/// registered [`grepair_store::GraphCodec`], producing a tagged container
/// the same `query`/`store` commands load transparently.
pub fn compress_file(input: &str, opts: &CompressOpts) -> Result<(), String> {
    let (g, originals) = read_graph_with_map(input)?;
    // derived id -> dense parser id, built only when a `--map` sidecar was
    // asked for. The grammar backend renumbers nodes (its map is moved out
    // of the compression result, never copied); every other backend
    // preserves the parser's dense ids, so its map is the identity.
    let node_map: Option<Vec<u32>>;
    let file = if opts.backend == GREPAIR {
        let out = compress_and_report(&g, &opts.config);
        let encoded = grepair_codec::encode(&out.grammar);
        node_map = opts.map.is_some().then_some(out.node_map);
        write_container(&encoded.bytes, encoded.bit_len)
    } else {
        let codec = resolve_codec(opts.backend).map_err(|e| e.to_string())?;
        node_map = opts.map.is_some().then(|| (0..g.node_bound() as u32).collect());
        codec.encode(&g).map_err(|e| format!("{input}: {e}"))?
    };
    std::fs::write(&opts.output, &file).map_err(|e| format!("{}: {e}", opts.output))?;
    println!(
        "wrote {} (backend {}, {} bytes, {:.3} bits/edge)",
        opts.output,
        opts.backend,
        file.len(),
        grepair_util::fmt::bits_per_edge(file.len() as u64 * 8, g.num_edges() as u64)
    );
    if let Some(map_path) = &opts.map {
        // Compose the compressor's derived→dense map with the parser's
        // dense→original renumbering, so each line reads
        // `<derived id> <label the input file used>` and `decompress --map`
        // can relabel without any second sidecar.
        let node_map = node_map.expect("built above whenever --map is set");
        let mut text = String::new();
        for (derived, dense) in node_map.iter().enumerate() {
            let original = originals
                .get(*dense as usize)
                .copied()
                .ok_or_else(|| format!("{map_path}: node map references unknown dense id {dense}"))?;
            text.push_str(&format!("{derived} {original}\n"));
        }
        std::fs::write(map_path, text).map_err(|e| format!("{map_path}: {e}"))?;
        println!("wrote node map {map_path}");
    }
    Ok(())
}

/// Load a `.g2g` through the store, prefixing non-IO errors with the path
/// (IO errors already carry it).
fn open_store(path: &str) -> Result<GraphStore, String> {
    GraphStore::open(path).map_err(|e| match e {
        GrepairError::Io { .. } => e.to_string(),
        other => format!("{path}: {other}"),
    })
}

/// Read a `derived original` node-map file written by `compress --map`.
fn read_node_map(path: &str, nodes: usize) -> Result<Vec<u64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut map = vec![None; nodes];
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, String> {
            tok.ok_or_else(|| format!("{path}:{}: expected two columns", i + 1))?
                .parse()
                .map_err(|e| format!("{path}:{}: {e}", i + 1))
        };
        let derived = parse(it.next())? as usize;
        let original = parse(it.next())?;
        if let Some(extra) = it.next() {
            return Err(format!("{path}:{}: unexpected trailing token {extra:?}", i + 1));
        }
        if derived >= nodes {
            return Err(format!(
                "{path}:{}: derived id {derived} out of range (graph has {nodes} nodes)",
                i + 1
            ));
        }
        if map[derived].is_some() {
            return Err(format!("{path}:{}: duplicate mapping for derived id {derived}", i + 1));
        }
        map[derived] = Some(original);
    }
    map.into_iter()
        .enumerate()
        .map(|(v, m)| m.ok_or_else(|| format!("{path}: no mapping for derived id {v}")))
        .collect()
}

/// Decode any container file (legacy `.g2g` or tagged) back into a graph
/// through its registered codec, prefixing errors with the path.
fn open_graph(input: &str) -> Result<(Hypergraph, &'static str), String> {
    let file = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let (tag, bit_len, payload) =
        split_any_container(&file).map_err(|e| format!("{input}: {e}"))?;
    let codec = resolve_codec(tag).map_err(|e| format!("{input}: {e}"))?;
    let g = codec.decode(payload, bit_len).map_err(|e| format!("{input}: {e}"))?;
    Ok((g, codec.name()))
}

/// `grepair decompress <in> -o <out> [--map FILE]`. Dispatches on the
/// container's backend tag: a grammar container derives `val(G)`, the
/// baseline containers decode their own representations.
pub fn decompress_file(input: &str, output: &str, map: Option<&str>) -> Result<(), String> {
    let (derived, backend) = open_graph(input)?;
    let relabel: Option<Vec<u64>> = map
        .map(|path| read_node_map(path, derived.num_nodes()))
        .transpose()?;
    let label_of = |v: u32| -> u64 {
        match &relabel {
            Some(m) => m[v as usize],
            None => v as u64,
        }
    };
    // Pairs for single-label rank-2 graphs, triples otherwise.
    let single_label = derived
        .edges()
        .all(|e| e.label == EdgeLabel::Terminal(0) && e.att.len() == 2);
    let mut text = String::new();
    for e in derived.edges() {
        if single_label {
            text.push_str(&format!("{} {}\n", label_of(e.att[0]), label_of(e.att[1])));
        } else {
            text.push_str(&format!(
                "{} {} {}\n",
                label_of(e.att[0]),
                e.label.index(),
                label_of(e.att[1])
            ));
        }
    }
    std::fs::write(output, text).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "decompressed {} -> {} (backend {}, {} nodes, {} edges)",
        input,
        output,
        backend,
        derived.num_nodes(),
        derived.num_edges()
    );
    Ok(())
}

/// `grepair query ...`.
pub fn query(args: &[String]) -> Result<(), String> {
    let id = |tok: Option<&String>, what: &str| -> Result<u64, String> {
        tok.ok_or_else(|| format!("missing {what}"))?
            .parse()
            .map_err(|e| format!("bad {what}: {e}"))
    };
    match args.first().map(String::as_str) {
        Some("reach") => {
            let store = open_store(args.get(1).ok_or("missing g2g file")?)?;
            let s = id(args.get(2), "s")?;
            let t = id(args.get(3), "t")?;
            let reachable = store.reachable(s, t).map_err(|e| e.to_string())?;
            println!("{}", if reachable { "reachable" } else { "not reachable" });
            Ok(())
        }
        Some("neighbors") => {
            let store = open_store(args.get(1).ok_or("missing g2g file")?)?;
            let v = id(args.get(2), "v")?;
            let out = store.out_neighbors(v).map_err(|e| e.to_string())?;
            let inn = store.in_neighbors(v).map_err(|e| e.to_string())?;
            println!("out: {out:?}");
            println!("in:  {inn:?}");
            Ok(())
        }
        Some("components") => {
            let store = open_store(args.get(1).ok_or("missing g2g file")?)?;
            println!("{}", store.components());
            Ok(())
        }
        Some("rpq") => {
            let store = open_store(args.get(1).ok_or("missing g2g file")?)?;
            let s = id(args.get(2), "s")?;
            let t = id(args.get(3), "t")?;
            if args.len() < 5 {
                return Err("missing rpq pattern atoms".into());
            }
            let pattern = args[4..].join(" ");
            let matched = store.rpq(&pattern, s, t).map_err(|e| e.to_string())?;
            println!("{}", if matched { "match" } else { "no match" });
            Ok(())
        }
        other => Err(format!("unknown query {other:?}")),
    }
}

/// Count the request lines (non-blank, non-comment) left in a reader —
/// what a mid-file `QUIT` would leave unanswered.
fn count_request_lines(reader: &mut impl std::io::BufRead) -> std::io::Result<u64> {
    let mut line = Vec::new();
    let mut count = 0u64;
    loop {
        line.clear();
        if reader.read_until(b'\n', &mut line)? == 0 {
            return Ok(count);
        }
        let trimmed = line.trim_ascii();
        if !trimmed.is_empty() && !trimmed.starts_with(b"#") {
            count += 1;
        }
    }
}

/// `grepair store serve-file ...` (offline) and `grepair store serve ...`
/// (the TCP front end).
///
/// `serve <in.g2g> [--addr HOST:PORT] [--threads N] [--batch N]
/// [--max-line N] [--attach NAME=PATH]... [--memory-budget BYTES]
/// [--io epoll|threads]`
/// delegates to `grepair-server`: it binds, prints one
/// `listening <addr> ...` line, and speaks the wire protocol of DESIGN.md
/// §6/§8 (the serve-file query plane plus the `PING`/`INFO`/`STATS`/
/// `USE`/`ATTACH`/`DETACH`/`LIST`/`RELOAD`/`PATCH`/`VERSIONS`/`QUIT`
/// admin plane and SIGHUP hot reload) until killed. Each `--attach`
/// registers a further
/// namespace, opened lazily on first query; `--memory-budget` caps
/// resident container bytes with LRU eviction (DESIGN.md §8).
///
/// `serve-file <in.g2g> <queries.txt> [--batch N] [--threads N]
/// [--attach NAME=PATH]... [--memory-budget BYTES]` drives
/// the **same session engine** from a file instead of a socket — the two
/// front ends are byte-identical on the same input by construction, every
/// failure mode included (unknown verbs, out-of-range ids, non-UTF-8
/// bytes, oversized lines). One reply line per request line, in input
/// order; a bad request never stops the stream. The file is streamed (at
/// most `--batch` parsed lines in memory), `--threads N` sizes the worker
/// pool batches fan out on (`0` = one per available core), and serving
/// statistics go to stderr. A missing final newline is tolerated: file
/// input is line-oriented, so the last line counts even unterminated
/// (over a raw socket the same bytes would be a mid-line disconnect and
/// be discarded — see DESIGN.md §6.1). The admin plane works offline too
/// (a scripted `RELOAD` swaps generations mid-file); a `QUIT` ends the
/// run like it ends a connection, with a stderr warning naming how many
/// request lines it left unanswered.
///
/// `patch <in.g2g> <patches.txt> -o <out.g2g> [--backend NAME]` replays a
/// patch file (one `ADD|DEL <s> <label> <t>` per line — the wire
/// protocol's `PATCH` grammar, DESIGN.md §12) against the container
/// offline, materializes the resulting head version, and recompresses it
/// (by default with the input's own backend). `versions <in.g2g>
/// <patches.txt>` is the dry run: same replay, but it only prints the
/// retained-version summary line, byte-identical to a live server's
/// `VERSIONS` reply after the same patches.
pub fn store_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("serve") => grepair_server::run_cli(&args[1..]),
        Some("serve-file") => {
            let g2g = args.get(1).ok_or("missing g2g file")?;
            let queries_path = args.get(2).ok_or("missing queries file")?;
            crate::validate_value_flags(
                &args[3..],
                &[
                    "--batch",
                    "--threads",
                    "--attach",
                    "--memory-budget",
                    "--shed-watermark",
                    "--failpoints",
                    "--fail-seed",
                ],
            )?;
            // The chaos-twin surface (DESIGN.md §10): the same failpoint
            // and shedding knobs as `store serve`, so a fault schedule
            // replays identically through both front ends.
            grepair_util::fail::init_from_env()?;
            if let Some(seed) = crate::flag_value(&args[3..], "--fail-seed") {
                let seed: u64 = seed.parse().map_err(|e| format!("bad --fail-seed: {e}"))?;
                if !grepair_util::fail::enabled() {
                    return Err(format!("--fail-seed: {}", grepair_util::fail::DISABLED));
                }
                grepair_util::fail::set_seed(seed);
            }
            if let Some(specs) = crate::flag_value(&args[3..], "--failpoints") {
                grepair_util::fail::configure_list(&specs)
                    .map_err(|e| format!("bad --failpoints: {e}"))?;
            }
            let batch_size: usize = match crate::flag_value(&args[3..], "--batch") {
                Some(raw) => raw.parse().map_err(|e| format!("bad --batch: {e}"))?,
                None => 1024,
            };
            if batch_size == 0 {
                return Err("--batch must be at least 1".into());
            }
            let threads: usize = match crate::flag_value(&args[3..], "--threads") {
                Some(raw) => raw.parse().map_err(|e| format!("bad --threads: {e}"))?,
                None => 1,
            };
            // Open through the path-recording constructor — exactly what
            // `grepair-server` does — so bare RELOAD, `--attach` tenants,
            // and `--memory-budget` eviction behave byte-identically
            // across the socket and file front ends.
            let registry = StoreRegistry::open(g2g).map_err(|e| match e {
                GrepairError::Io { .. } => e.to_string(),
                other => format!("{g2g}: {other}"),
            })?;
            grepair_server::apply_tenancy_flags(&registry, &args[3..])?;
            let pool = grepair_server::WorkerPool::new(threads);
            if let Some(raw) = crate::flag_value(&args[3..], "--shed-watermark") {
                let watermark: usize =
                    raw.parse().map_err(|e| format!("bad --shed-watermark: {e}"))?;
                pool.set_shed_watermark(watermark);
            }
            let file = std::fs::File::open(queries_path)
                .map_err(|e| format!("{queries_path}: {e}"))?;
            // Chaining one extra newline terminates an unterminated final
            // line; for well-formed files it is a trailing blank line,
            // which the protocol skips without a reply.
            let mut reader = BufReader::new(file.chain(&b"\n"[..]));
            let stdout = std::io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            let opts = grepair_server::SessionOpts {
                batch: batch_size,
                reload_path: Some(g2g.clone()),
                ..Default::default()
            };
            let summary =
                grepair_server::serve_session(&registry, &pool, &mut reader, &mut out, &opts)
                    .map_err(|e| format!("{queries_path}: {e}"))?;
            out.flush().map_err(|e| format!("stdout: {e}"))?;
            // The admin plane works offline too, so a QUIT line ends the
            // session like it ends a connection — but a replayed log that
            // stops mid-file deserves a visible trace, not silence.
            let skipped = count_request_lines(&mut reader)
                .map_err(|e| format!("{queries_path}: {e}"))?;
            if skipped > 0 {
                eprintln!("warning: QUIT left {skipped} request lines unanswered");
            }
            eprintln!(
                "served {} queries ({} errors) from {g2g}: {}",
                summary.served,
                summary.errors,
                registry.stats()
            );
            Ok(())
        }
        Some("patch") => {
            let input = args.get(1).ok_or("missing g2g file")?;
            let patches_path = args.get(2).ok_or("missing patches file")?;
            crate::validate_value_flags(&args[3..], &["-o", "--backend"])?;
            let output = crate::flag_value(&args[3..], "-o").ok_or("missing -o OUTPUT")?;
            let (versioned, summaries) = replay_patches(input, patches_path)?;
            let head = versioned.head();
            // Default to re-encoding with the input's own backend; --backend
            // converts while patching (the overlay is backend-agnostic).
            let backend = crate::flag_value(&args[3..], "--backend")
                .unwrap_or_else(|| head.backend().to_string());
            let codec = resolve_codec(&backend).map_err(|e| e.to_string())?;
            let g = materialize(&head).map_err(|e| format!("{input}: {e}"))?;
            let file = codec.encode(&g).map_err(|e| format!("{output}: {e}"))?;
            std::fs::write(&output, &file).map_err(|e| format!("{output}: {e}"))?;
            let last = summaries.last().expect("v0 always present");
            println!(
                "wrote {} (backend {}, {} bytes): v{} materialized, {} nodes, {} edges, +{}-{}",
                output,
                codec.name(),
                file.len(),
                last.version,
                g.num_nodes(),
                g.num_edges(),
                last.added,
                last.removed
            );
            Ok(())
        }
        Some("versions") => {
            let input = args.get(1).ok_or("missing g2g file")?;
            let patches_path = args.get(2).ok_or("missing patches file")?;
            crate::validate_value_flags(&args[3..], &[])?;
            let (_, summaries) = replay_patches(input, patches_path)?;
            // Exactly the wire protocol's VERSIONS reply line, so scripts
            // can diff this dry run against a live server's answer.
            let head = summaries.last().expect("v0 always present").version;
            let mut line = format!("versions={} head=v{head}", summaries.len());
            for s in &summaries {
                line.push_str(&format!(" {s}"));
            }
            println!("{line}");
            Ok(())
        }
        other => Err(format!("unknown store command {other:?}")),
    }
}

/// Shared front half of `store patch` / `store versions`: open the
/// container, replay every patch line against a fresh version log, and
/// return the log plus its retained-version summaries. Patch files hold
/// one `ADD|DEL <s> <label> <t>` record per line — the wire protocol's
/// `PATCH` argument grammar — with blank lines and `#` comments skipped;
/// errors carry the file position, and a rejected patch (duplicate add,
/// missing del, self-loop) aborts the replay with nothing written.
fn replay_patches(
    input: &str,
    patches_path: &str,
) -> Result<(VersionedStore, Vec<grepair_store::VersionSummary>), String> {
    let store = open_store(input)?;
    let versioned = VersionedStore::new(std::sync::Arc::new(store))
        .map_err(|e| format!("{input}: {e}"))?;
    let text =
        std::fs::read_to_string(patches_path).map_err(|e| format!("{patches_path}: {e}"))?;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let patch =
            EdgePatch::parse(line).map_err(|e| format!("{patches_path}:{}: {e}", i + 1))?;
        versioned.apply(patch).map_err(|e| format!("{patches_path}:{}: {e}", i + 1))?;
    }
    let summaries = versioned.summaries();
    Ok((versioned, summaries))
}

/// `grepair generate <kind> [n] [seed] -o <out>`.
pub fn generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("missing dataset kind")?;
    let positional: Vec<&String> = args[1..]
        .iter()
        .take_while(|a| !a.starts_with('-'))
        .collect();
    let n: usize = positional
        .first()
        .map(|s| s.parse().map_err(|e| format!("bad n: {e}")))
        .transpose()?
        .unwrap_or(10_000);
    let seed: u64 = positional
        .get(1)
        .map(|s| s.parse().map_err(|e| format!("bad seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let output = crate::flag_value(args, "-o").ok_or("missing -o OUTPUT")?;

    let g: Hypergraph = match kind.as_str() {
        "ttt" => datasets::ttt::game_graph(),
        "types" => datasets::rdf::types_star(n, (n / 500).max(4), seed),
        "pa" => datasets::network::preferential_attachment(n, 4, seed),
        "er" => datasets::network::erdos_renyi(n, 5 * n, seed),
        "coauth" => datasets::network::co_authorship(n, 2 * n / 3, 6, seed),
        "web" => datasets::network::web_copy(n, 6, 0.6, seed),
        "chess" => datasets::version::chess_like(n, 12, seed),
        "versions" => {
            let h = datasets::version::CoauthorshipHistory::generate(8, n / 100 + 5, n / 4 + 10, n / 50 + 1, seed);
            h.version_graph(7)
        }
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    let labeled = g.edges().any(|e| e.label != EdgeLabel::Terminal(0));
    let mut text = String::new();
    if labeled {
        for e in g.edges() {
            text.push_str(&format!("{} {} {}\n", e.att[0], e.label.index(), e.att[1]));
        }
    } else {
        for e in g.edges() {
            text.push_str(&format!("{} {}\n", e.att[0], e.att[1]));
        }
    }
    std::fs::write(&output, text).map_err(|e| format!("{output}: {e}"))?;
    println!("wrote {output}: {} nodes, {} edges", g.num_nodes(), g.num_edges());
    Ok(())
}
