//! Command implementations for the `grepair` CLI.
//!
//! Everything that touches a `.g2g` goes through
//! [`grepair_store::GraphStore`], so the CLI inherits the store's zero-panic
//! guarantee: hostile bytes and out-of-range ids become error messages and a
//! non-zero exit code.

use std::io::{BufRead, BufReader, BufWriter, Write};

use crate::{compress_and_report, read_graph, read_graph_with_map, CompressOpts};
use grepair_datasets as datasets;
use grepair_hypergraph::{EdgeLabel, Hypergraph};
use grepair_store::{parse_query, write_container, GraphStore, GrepairError, Query};

/// `grepair stats <graph>`.
pub fn stats(path: &str) -> Result<(), String> {
    let g = read_graph(path)?;
    let s = datasets::stats(&g);
    println!("|V|        {}", grepair_util::fmt::human_count(s.nodes as u64));
    println!("|E|        {}", grepair_util::fmt::human_count(s.edges as u64));
    println!("|Sigma|    {}", s.labels);
    println!("|[~FP]|    {}", grepair_util::fmt::human_count(s.fp_classes as u64));
    Ok(())
}

/// `grepair compress <graph> -o <out>`.
pub fn compress_file(input: &str, opts: &CompressOpts) -> Result<(), String> {
    let (g, originals) = read_graph_with_map(input)?;
    let out = compress_and_report(&g, &opts.config);
    let encoded = grepair_codec::encode(&out.grammar);
    let file = write_container(&encoded.bytes, encoded.bit_len);
    std::fs::write(&opts.output, &file).map_err(|e| format!("{}: {e}", opts.output))?;
    println!(
        "wrote {} ({} bytes, {:.3} bits/edge)",
        opts.output,
        file.len(),
        encoded.bits_per_edge(g.num_edges())
    );
    if let Some(map_path) = &opts.map {
        // Compose the compressor's derived→dense map with the parser's
        // dense→original renumbering, so each line reads
        // `<derived id> <label the input file used>` and `decompress --map`
        // can relabel without any second sidecar.
        let mut text = String::new();
        for (derived, dense) in out.node_map.iter().enumerate() {
            let original = originals
                .get(*dense as usize)
                .copied()
                .ok_or_else(|| format!("{map_path}: node map references unknown dense id {dense}"))?;
            text.push_str(&format!("{derived} {original}\n"));
        }
        std::fs::write(map_path, text).map_err(|e| format!("{map_path}: {e}"))?;
        println!("wrote node map {map_path}");
    }
    Ok(())
}

/// Load a `.g2g` through the store, prefixing non-IO errors with the path
/// (IO errors already carry it).
fn open_store(path: &str) -> Result<GraphStore, String> {
    GraphStore::open(path).map_err(|e| match e {
        GrepairError::Io { .. } => e.to_string(),
        other => format!("{path}: {other}"),
    })
}

/// Read a `derived original` node-map file written by `compress --map`.
fn read_node_map(path: &str, nodes: usize) -> Result<Vec<u64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut map = vec![None; nodes];
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, String> {
            tok.ok_or_else(|| format!("{path}:{}: expected two columns", i + 1))?
                .parse()
                .map_err(|e| format!("{path}:{}: {e}", i + 1))
        };
        let derived = parse(it.next())? as usize;
        let original = parse(it.next())?;
        if let Some(extra) = it.next() {
            return Err(format!("{path}:{}: unexpected trailing token {extra:?}", i + 1));
        }
        if derived >= nodes {
            return Err(format!(
                "{path}:{}: derived id {derived} out of range (graph has {nodes} nodes)",
                i + 1
            ));
        }
        if map[derived].is_some() {
            return Err(format!("{path}:{}: duplicate mapping for derived id {derived}", i + 1));
        }
        map[derived] = Some(original);
    }
    map.into_iter()
        .enumerate()
        .map(|(v, m)| m.ok_or_else(|| format!("{path}: no mapping for derived id {v}")))
        .collect()
}

/// `grepair decompress <in> -o <out> [--map FILE]`.
pub fn decompress_file(input: &str, output: &str, map: Option<&str>) -> Result<(), String> {
    let store = open_store(input)?;
    let derived = store.grammar().derive();
    let relabel: Option<Vec<u64>> = map
        .map(|path| read_node_map(path, derived.num_nodes()))
        .transpose()?;
    let label_of = |v: u32| -> u64 {
        match &relabel {
            Some(m) => m[v as usize],
            None => v as u64,
        }
    };
    // Pairs for single-label rank-2 graphs, triples otherwise.
    let single_label = derived
        .edges()
        .all(|e| e.label == EdgeLabel::Terminal(0) && e.att.len() == 2);
    let mut text = String::new();
    for e in derived.edges() {
        if single_label {
            text.push_str(&format!("{} {}\n", label_of(e.att[0]), label_of(e.att[1])));
        } else {
            text.push_str(&format!(
                "{} {} {}\n",
                label_of(e.att[0]),
                e.label.index(),
                label_of(e.att[1])
            ));
        }
    }
    std::fs::write(output, text).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "decompressed {} -> {} ({} nodes, {} edges)",
        input,
        output,
        derived.num_nodes(),
        derived.num_edges()
    );
    Ok(())
}

/// `grepair query ...`.
pub fn query(args: &[String]) -> Result<(), String> {
    let id = |tok: Option<&String>, what: &str| -> Result<u64, String> {
        tok.ok_or_else(|| format!("missing {what}"))?
            .parse()
            .map_err(|e| format!("bad {what}: {e}"))
    };
    match args.first().map(String::as_str) {
        Some("reach") => {
            let store = open_store(args.get(1).ok_or("missing g2g file")?)?;
            let s = id(args.get(2), "s")?;
            let t = id(args.get(3), "t")?;
            let reachable = store.reachable(s, t).map_err(|e| e.to_string())?;
            println!("{}", if reachable { "reachable" } else { "not reachable" });
            Ok(())
        }
        Some("neighbors") => {
            let store = open_store(args.get(1).ok_or("missing g2g file")?)?;
            let v = id(args.get(2), "v")?;
            let out = store.out_neighbors(v).map_err(|e| e.to_string())?;
            let inn = store.in_neighbors(v).map_err(|e| e.to_string())?;
            println!("out: {out:?}");
            println!("in:  {inn:?}");
            Ok(())
        }
        Some("components") => {
            let store = open_store(args.get(1).ok_or("missing g2g file")?)?;
            println!("{}", store.components());
            Ok(())
        }
        Some("rpq") => {
            let store = open_store(args.get(1).ok_or("missing g2g file")?)?;
            let s = id(args.get(2), "s")?;
            let t = id(args.get(3), "t")?;
            if args.len() < 5 {
                return Err("missing rpq pattern atoms".into());
            }
            let pattern = args[4..].join(" ");
            let matched = store.rpq(&pattern, s, t).map_err(|e| e.to_string())?;
            println!("{}", if matched { "match" } else { "no match" });
            Ok(())
        }
        other => Err(format!("unknown query {other:?}")),
    }
}

/// Answer one batch of parsed lines and write the answers (or per-line
/// errors) in input order. Returns how many lines errored.
fn serve_chunk(
    store: &GraphStore,
    pending: &[Result<Query, String>],
    threads: usize,
    out: &mut impl Write,
) -> Result<usize, String> {
    let queries: Vec<Query> = pending.iter().filter_map(|p| p.as_ref().ok().cloned()).collect();
    let answers = if threads > 1 {
        store.query_batch_parallel(&queries, threads)
    } else {
        store.query_batch(&queries)
    };
    let emit = |out: &mut dyn Write, text: std::fmt::Arguments<'_>| {
        out.write_fmt(text).map_err(|e| format!("stdout: {e}"))
    };
    let mut next = 0usize;
    let mut errors = 0usize;
    for p in pending {
        match p {
            Ok(_) => {
                match &answers[next] {
                    Ok(a) => emit(out, format_args!("{a}\n"))?,
                    Err(e) => {
                        errors += 1;
                        emit(out, format_args!("error: {e}\n"))?;
                    }
                }
                next += 1;
            }
            Err(e) => {
                errors += 1;
                emit(out, format_args!("error: {e}\n"))?;
            }
        }
    }
    Ok(errors)
}

/// `grepair store serve-file <in.g2g> <queries.txt> [--batch N]
/// [--threads N]`: the traffic-shaped scenario — load once, answer a
/// stream of queries.
///
/// One answer line per query line, in input order: the rendered answer, or
/// `error: <reason>` for requests the store rejected (a bad request never
/// stops the stream — a server must outlive its worst client). The query
/// file is streamed line by line in `--batch`-sized chunks, so memory use
/// is bounded by the batch size, never by the file; `--threads N` fans each
/// chunk out across N worker threads (`0` = one per available core).
/// Serving statistics go to stderr.
pub fn store_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("serve-file") => {
            let g2g = args.get(1).ok_or("missing g2g file")?;
            let queries_path = args.get(2).ok_or("missing queries file")?;
            crate::validate_value_flags(&args[3..], &["--batch", "--threads"])?;
            let batch_size: usize = match crate::flag_value(&args[3..], "--batch") {
                Some(raw) => raw.parse().map_err(|e| format!("bad --batch: {e}"))?,
                None => 1024,
            };
            if batch_size == 0 {
                return Err("--batch must be at least 1".into());
            }
            let threads: usize = match crate::flag_value(&args[3..], "--threads") {
                Some(raw) => {
                    let n: usize = raw.parse().map_err(|e| format!("bad --threads: {e}"))?;
                    if n == 0 {
                        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
                    } else {
                        n
                    }
                }
                None => 1,
            };
            let store = open_store(g2g)?;
            let file = std::fs::File::open(queries_path)
                .map_err(|e| format!("{queries_path}: {e}"))?;
            let mut reader = BufReader::new(file);
            let stdout = std::io::stdout();
            let mut out = BufWriter::new(stdout.lock());

            // Stream: at most one batch of parsed lines is in memory at a
            // time, so a query log larger than RAM still serves.
            let mut pending: Vec<Result<Query, String>> = Vec::with_capacity(batch_size);
            let mut line = String::new();
            let mut served = 0usize;
            let mut errors = 0usize;
            loop {
                line.clear();
                let bytes = reader
                    .read_line(&mut line)
                    .map_err(|e| format!("{queries_path}: {e}"))?;
                if bytes > 0 {
                    let trimmed = line.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    pending.push(parse_query(trimmed).map_err(|e| e.to_string()));
                }
                if pending.len() >= batch_size || (bytes == 0 && !pending.is_empty()) {
                    served += pending.len();
                    errors += serve_chunk(&store, &pending, threads, &mut out)?;
                    pending.clear();
                }
                if bytes == 0 {
                    break;
                }
            }
            out.flush().map_err(|e| format!("stdout: {e}"))?;
            eprintln!(
                "served {served} queries ({errors} errors) from {g2g}: {}",
                store.stats()
            );
            Ok(())
        }
        other => Err(format!("unknown store command {other:?}")),
    }
}

/// `grepair generate <kind> [n] [seed] -o <out>`.
pub fn generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("missing dataset kind")?;
    let positional: Vec<&String> = args[1..]
        .iter()
        .take_while(|a| !a.starts_with('-'))
        .collect();
    let n: usize = positional
        .first()
        .map(|s| s.parse().map_err(|e| format!("bad n: {e}")))
        .transpose()?
        .unwrap_or(10_000);
    let seed: u64 = positional
        .get(1)
        .map(|s| s.parse().map_err(|e| format!("bad seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let output = crate::flag_value(args, "-o").ok_or("missing -o OUTPUT")?;

    let g: Hypergraph = match kind.as_str() {
        "ttt" => datasets::ttt::game_graph(),
        "types" => datasets::rdf::types_star(n, (n / 500).max(4), seed),
        "pa" => datasets::network::preferential_attachment(n, 4, seed),
        "er" => datasets::network::erdos_renyi(n, 5 * n, seed),
        "coauth" => datasets::network::co_authorship(n, 2 * n / 3, 6, seed),
        "web" => datasets::network::web_copy(n, 6, 0.6, seed),
        "chess" => datasets::version::chess_like(n, 12, seed),
        "versions" => {
            let h = datasets::version::CoauthorshipHistory::generate(8, n / 100 + 5, n / 4 + 10, n / 50 + 1, seed);
            h.version_graph(7)
        }
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    let labeled = g.edges().any(|e| e.label != EdgeLabel::Terminal(0));
    let mut text = String::new();
    if labeled {
        for e in g.edges() {
            text.push_str(&format!("{} {} {}\n", e.att[0], e.label.index(), e.att[1]));
        }
    } else {
        for e in g.edges() {
            text.push_str(&format!("{} {}\n", e.att[0], e.att[1]));
        }
    }
    std::fs::write(&output, text).map_err(|e| format!("{output}: {e}"))?;
    println!("wrote {output}: {} nodes, {} edges", g.num_nodes(), g.num_edges());
    Ok(())
}
