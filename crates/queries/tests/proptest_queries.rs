//! Differential property tests: every grammar query must agree with the
//! same query evaluated on the decompressed graph, for arbitrary inputs and
//! compressor configurations.

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::order::NodeOrder;
use grepair_hypergraph::{traverse, Hypergraph};
use grepair_queries::{speedup, GrammarIndex, ReachIndex};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Hypergraph> {
    (2u32..40, proptest::collection::vec((0u32..40, 0u32..3, 0u32..40), 0..120)).prop_map(
        |(nodes, triples)| {
            let triples: Vec<(u32, u32, u32)> = triples
                .into_iter()
                .map(|(s, l, t)| (s % nodes, l, t % nodes))
                .collect();
            Hypergraph::from_simple_edges(nodes as usize, triples).0
        },
    )
}

fn arb_config() -> impl Strategy<Value = GRePairConfig> {
    (2usize..=5, any::<bool>(), any::<bool>()).prop_map(|(max_rank, prune, connect)| {
        GRePairConfig {
            max_rank,
            order: NodeOrder::Fp,
            connect_components: connect,
            prune,
            num_terminals: None,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn neighborhoods_match_decompressed(g in arb_graph(), config in arb_config()) {
        let out = compress(&g, &config);
        let derived = out.grammar.derive();
        let idx = GrammarIndex::new(&out.grammar);
        prop_assert_eq!(idx.total_nodes as usize, derived.num_nodes());
        for k in 0..idx.total_nodes {
            let mut want: Vec<u64> =
                derived.out_neighbors(k as u32).map(|v| v as u64).collect();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(idx.out_neighbors(k), want, "out({})", k);
            let mut want: Vec<u64> =
                derived.in_neighbors(k as u32).map(|v| v as u64).collect();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(idx.in_neighbors(k), want, "in({})", k);
        }
    }

    #[test]
    fn reachability_matches_decompressed(g in arb_graph(), config in arb_config()) {
        let out = compress(&g, &config);
        let derived = out.grammar.derive();
        let reach = ReachIndex::new(&out.grammar);
        let n = derived.num_nodes() as u64;
        // All pairs is O(n²·|G|); keep n small via the strategy.
        for s in 0..n {
            for t in 0..n {
                let want = traverse::reachable(&derived, s as u32, t as u32);
                prop_assert_eq!(reach.reachable(s, t), want, "reach({}, {})", s, t);
            }
        }
    }

    #[test]
    fn aggregates_match_decompressed(g in arb_graph(), config in arb_config()) {
        let out = compress(&g, &config);
        let (_, want_cc) = traverse::connected_components(&g);
        prop_assert_eq!(speedup::connected_components(&out.grammar), want_cc as u64);
        let degs: Vec<u64> = g.node_ids().map(|v| g.degree(v) as u64).collect();
        let want = degs.iter().min().map(|&lo| (lo, *degs.iter().max().unwrap()));
        prop_assert_eq!(speedup::degree_extrema(&out.grammar), want);
    }

    #[test]
    fn locate_global_id_inverse(g in arb_graph(), config in arb_config()) {
        let out = compress(&g, &config);
        let idx = GrammarIndex::new(&out.grammar);
        for k in 0..idx.total_nodes {
            let repr = idx.locate(k);
            prop_assert_eq!(idx.global_id(&repr.path, repr.node), k);
        }
    }

    #[test]
    fn rpq_matches_product_bfs(
        g in arb_graph(),
        config in arb_config(),
        regex_pick in 0usize..4,
    ) {
        use grepair_queries::{Regex, RpqIndex};
        let regex = match regex_pick {
            0 => Regex::star(Regex::alt(vec![
                Regex::label(0), Regex::label(1), Regex::label(2),
            ])),
            1 => Regex::cat(vec![Regex::label(0), Regex::label(1)]),
            2 => Regex::plus(Regex::label(0)),
            _ => Regex::cat(vec![
                Regex::label(1),
                Regex::star(Regex::label(0)),
                Regex::opt(Regex::label(2)),
            ]),
        };
        let nfa = grepair_queries::Nfa::from_regex(&regex);
        let out = compress(&g, &config);
        let derived = out.grammar.derive();
        let rpq = RpqIndex::new(&out.grammar, nfa.clone());
        let n = derived.num_nodes() as u64;
        // Sampled pairs (all-pairs would dominate runtime).
        for i in 0..40u64 {
            let s = (i * 6151) % n.max(1);
            let t = (i * 911 + 3) % n.max(1);
            let want = grepair_queries::rpq::rpq_on_graph(
                &derived, &nfa, s as u32, t as u32,
            );
            prop_assert_eq!(rpq.matches(s, t), want, "rpq({}, {})", s, t);
        }
    }
}
