//! Errors for the fallible query entry points.
//!
//! The panicking entry points ([`crate::GrammarIndex::locate`] and friends)
//! remain for trusted in-process callers (tests, benchmarks) whose inputs
//! come from the compressor itself; anything driven by external input — the
//! CLI, a [store](https://docs.rs/grepair-store) serving traffic — goes
//! through the `try_*` variants, which return this error instead of
//! panicking.

/// A query was asked about something that does not exist in `val(G)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Node id `id` is not a node of `val(G)` (valid ids are `0..total`).
    NodeOutOfRange {
        /// The offending id.
        id: u64,
        /// Number of nodes in `val(G)`; valid ids are `0..total`.
        total: u64,
    },
    /// A derivation-path operation needs a non-empty path.
    EmptyPath,
    /// A derivation path descended through a terminal edge.
    TerminalEdgeOnPath,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NodeOutOfRange { id, total } => {
                write!(f, "node id {id} out of range (valid ids: 0..{total})")
            }
            QueryError::EmptyPath => write!(f, "empty derivation path"),
            QueryError::TerminalEdgeOnPath => {
                write!(f, "derivation path through a terminal edge")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_valid_range() {
        let e = QueryError::NodeOutOfRange { id: 99, total: 7 };
        let msg = e.to_string();
        assert!(msg.contains("99") && msg.contains("0..7"), "{msg}");
        assert!(msg.contains("out of range"), "{msg}");
    }
}
