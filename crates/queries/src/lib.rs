//! Query evaluation over SL-HR grammars (§V) — *without decompression*.
//!
//! The paper describes three families and proves their complexity, but
//! explicitly leaves them unimplemented ("The results in this section have
//! not been implemented"). This crate implements them:
//!
//! * [`index::GrammarIndex`] — G-representations of `val(G)` node IDs:
//!   locating a node costs O(log ℓ + h), mapping a representation back to an
//!   ID costs O(h) (ℓ = nonterminal edges in S, h = grammar height).
//! * [`neighbors`] — in/out neighborhood queries (Proposition 4):
//!   O(log ℓ + n·h) for n neighbors.
//! * [`reach`] — (s,t)-reachability in O(|G|) time via per-nonterminal
//!   *skeleton graphs* (Theorem 6), built with Tarjan SCC exactly as in the
//!   paper's proof.
//! * [`speedup`] — one-pass CMSO-style aggregate queries (Proposition 5
//!   flavor): number of connected components, and max/min degree.
//! * [`rpq`] — **regular path queries**, the paper's stated future work,
//!   via an automaton-product generalization of the skeleton construction.
//!
//! Every algorithm is differentially tested against the same query run on
//! the decompressed graph.

#![forbid(unsafe_code)]

pub mod error;
pub mod index;
pub mod neighbors;
pub mod reach;
pub mod rpq;
pub mod speedup;

pub use error::QueryError;
pub use index::{GRepr, GrammarIndex};
pub use neighbors::Direction;
pub use reach::{ReachIndex, SourceClosure};
pub use rpq::{Nfa, Regex, RpqIndex, RpqSourceClosure};
