//! Neighborhood queries over the grammar (Proposition 4).
//!
//! Given a `val(G)` node ID, compute the IDs of its in- or out-neighbors
//! without decompressing: resolve the G-representation, scan the incident
//! edges of the context graph, and for nonterminal edges recurse into the
//! subgraph they derive (`getNeighboring`), converting every endpoint back
//! to a global ID via `getID`. Runtime O(log ℓ + n·h) for n neighbors.

use std::borrow::Borrow;

use crate::error::QueryError;
use crate::index::GrammarIndex;
use grepair_grammar::Grammar;
use grepair_hypergraph::{EdgeId, EdgeLabel, NodeId};

/// Direction of a neighborhood query on rank-2 terminal edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `N⁺`: follow edges `v → u`.
    Out,
    /// `N⁻`: follow edges `u → v`.
    In,
}

impl<G: Borrow<Grammar>> GrammarIndex<G> {
    /// Out-neighbor IDs of global node `k`, sorted ascending.
    pub fn out_neighbors(&self, k: u64) -> Vec<u64> {
        self.neighbors(k, Direction::Out)
    }

    /// In-neighbor IDs of global node `k`, sorted ascending.
    pub fn in_neighbors(&self, k: u64) -> Vec<u64> {
        self.neighbors(k, Direction::In)
    }

    /// Neighbor IDs of `k` in the given direction, sorted and deduplicated.
    /// Panics on an out-of-range `k`; [`GrammarIndex::try_neighbors`] is the
    /// checked variant.
    pub fn neighbors(&self, k: u64, dir: Direction) -> Vec<u64> {
        self.try_neighbors(k, dir).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Neighbor IDs of `k` in the given direction, sorted and deduplicated,
    /// or the valid id range when `k` lies outside `val(G)`.
    pub fn try_neighbors(&self, k: u64, dir: Direction) -> Result<Vec<u64>, QueryError> {
        let mut out = Vec::new();
        self.try_neighbors_into(k, dir, &mut out)?;
        Ok(out)
    }

    /// Like [`GrammarIndex::try_neighbors`], but clears and fills a
    /// caller-provided buffer instead of allocating a fresh `Vec` per call —
    /// batch evaluators answering many neighbor queries reuse one scratch
    /// buffer. Isolated (rank-0) nodes take an early-return fast path that
    /// skips the recursive collection entirely.
    pub fn try_neighbors_into(
        &self,
        k: u64,
        dir: Direction,
        out: &mut Vec<u64>,
    ) -> Result<(), QueryError> {
        out.clear();
        let repr = self.try_locate(k)?;
        // Fast path: a node no edge is incident with has no neighbors in
        // either direction — skip the collection and the sort/dedup.
        if self.context(&repr.path).incident(repr.node).next().is_none() {
            return Ok(());
        }
        // The final node may be shared with ancestors when it is... it is
        // internal by construction (or a start node), so every edge of
        // val(G) incident with it appears in its own context or below.
        self.collect_at(&repr.path, repr.node, dir, out);
        out.sort_unstable();
        out.dedup();
        Ok(())
    }

    /// Rule-relative neighbor expansion: the neighbors of the `pos`-th
    /// external node *inside* the subgraph derived from one `nt`-edge, as
    /// `(relative path, context-local node)` pairs. The relative path starts
    /// with edges of `rhs(nt)`; prepending the path of a concrete `nt`-edge
    /// occurrence and running [`GrammarIndex::global_id`] yields the global
    /// neighbor ids. Because the expansion depends only on `(nt, pos, dir)`
    /// — never on where the edge occurs — callers can memoize it across
    /// queries (the `grepair-store` crate does exactly that).
    pub fn rule_expansion(
        &self,
        nt: u32,
        pos: usize,
        dir: Direction,
    ) -> Vec<(Vec<EdgeId>, NodeId)> {
        let mut out = Vec::new();
        let rhs = self.grammar().rule(nt);
        let Some(&v) = rhs.ext().get(pos) else { return out };
        let mut rel: Vec<EdgeId> = Vec::new();
        self.expand(rhs, v, dir, &mut rel, &mut out);
        out
    }

    /// Recursive worker for [`GrammarIndex::rule_expansion`]: collect
    /// `(relative path, node)` neighbor pairs of `v` within `rhs` and the
    /// subgraphs its nonterminal edges derive.
    fn expand(
        &self,
        rhs: &grepair_hypergraph::Hypergraph,
        v: NodeId,
        dir: Direction,
        rel: &mut Vec<EdgeId>,
        out: &mut Vec<(Vec<EdgeId>, NodeId)>,
    ) {
        for e in rhs.incident(v) {
            let att = rhs.att(e);
            match rhs.label(e) {
                EdgeLabel::Terminal(_) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let neighbor = match dir {
                        Direction::Out if att[0] == v => att[1],
                        Direction::In if att[1] == v => att[0],
                        _ => continue,
                    };
                    out.push((rel.clone(), neighbor));
                }
                EdgeLabel::Nonterminal(sub_nt) => {
                    let sub_rhs = self.grammar().rule(sub_nt);
                    for (p2, &x) in att.iter().enumerate() {
                        if x == v {
                            rel.push(e);
                            self.expand(sub_rhs, sub_rhs.ext()[p2], dir, rel, out);
                            rel.pop();
                        }
                    }
                }
            }
        }
    }

    /// Collect neighbors of context-local `node` (under `path`) from its
    /// context graph, descending into nonterminal edges.
    fn collect_at(&self, path: &[EdgeId], node: NodeId, dir: Direction, out: &mut Vec<u64>) {
        let ctx = self.context(path);
        for e in ctx.incident(node) {
            let att = ctx.att(e);
            match ctx.label(e) {
                EdgeLabel::Terminal(_) => {
                    debug_assert!(att.len() <= 2, "terminal hyperedges have no direction");
                    if att.len() != 2 {
                        continue;
                    }
                    let (from, to) = (att[0], att[1]);
                    let neighbor = match dir {
                        Direction::Out if from == node => to,
                        Direction::In if to == node => from,
                        _ => continue,
                    };
                    out.push(self.global_id(path, neighbor));
                }
                EdgeLabel::Nonterminal(_) => {
                    // Descend for every position at which `node` is attached.
                    for (pos, &x) in att.iter().enumerate() {
                        if x == node {
                            let mut sub = path.to_vec();
                            sub.push(e);
                            self.neighboring(&sub, pos, dir, out);
                        }
                    }
                }
            }
        }
    }

    /// `getNeighboring(e, p)` (§V): neighbors of the `p`-th external node
    /// within the subgraph derived from the last edge of `path`.
    fn neighboring(&self, path: &[EdgeId], pos: usize, dir: Direction, out: &mut Vec<u64>) {
        let nt = self.nt_at(path);
        let rhs = self.grammar().rule(nt);
        let v = rhs.ext()[pos];
        for e in rhs.incident(v) {
            let att = rhs.att(e);
            match rhs.label(e) {
                EdgeLabel::Terminal(_) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let neighbor = match dir {
                        Direction::Out if att[0] == v => att[1],
                        Direction::In if att[1] == v => att[0],
                        _ => continue,
                    };
                    out.push(self.global_id(path, neighbor));
                }
                EdgeLabel::Nonterminal(_) => {
                    for (p2, &x) in att.iter().enumerate() {
                        if x == v {
                            let mut sub = path.to_vec();
                            sub.push(e);
                            self.neighboring(&sub, p2, dir, out);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_grammar::Grammar;
    use grepair_hypergraph::EdgeLabel::{Nonterminal as N, Terminal as T};
    use grepair_hypergraph::Hypergraph;

    fn fig1() -> Grammar {
        let mut start = Hypergraph::with_nodes(4);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[1, 2]);
        start.add_edge(N(0), &[2, 3]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 1]);
        rhs.add_edge(T(1), &[1, 2]);
        rhs.set_ext(vec![0, 2]);
        let mut g = Grammar::new(start, 2);
        g.add_rule(rhs);
        g
    }

    /// Oracle: neighbors on the derived graph must equal neighbors on the
    /// grammar for every node and both directions.
    fn check_against_derivation(g: &Grammar) {
        let derived = g.derive();
        let idx = GrammarIndex::new(g);
        assert_eq!(idx.total_nodes as usize, derived.num_nodes());
        for k in 0..idx.total_nodes {
            let mut want_out: Vec<u64> =
                derived.out_neighbors(k as u32).map(|v| v as u64).collect();
            want_out.sort_unstable();
            want_out.dedup();
            assert_eq!(idx.out_neighbors(k), want_out, "out of {k}");
            let mut want_in: Vec<u64> =
                derived.in_neighbors(k as u32).map(|v| v as u64).collect();
            want_in.sort_unstable();
            want_in.dedup();
            assert_eq!(idx.in_neighbors(k), want_in, "in of {k}");
        }
    }

    #[test]
    fn fig1_neighbors_match_derivation() {
        check_against_derivation(&fig1());
    }

    #[test]
    fn fig1_specific_neighbors() {
        let g = fig1();
        let idx = GrammarIndex::new(&g);
        // val: 0 →a 4 →b 1 →a 5 →b 2 →a 6 →b 3
        assert_eq!(idx.out_neighbors(0), vec![4]);
        assert_eq!(idx.out_neighbors(4), vec![1]);
        assert_eq!(idx.in_neighbors(1), vec![4]);
        assert_eq!(idx.out_neighbors(1), vec![5]);
        assert_eq!(idx.in_neighbors(0), Vec::<u64>::new());
        assert_eq!(idx.out_neighbors(3), Vec::<u64>::new());
    }

    #[test]
    fn nested_rules_neighbors_match() {
        let mut start = Hypergraph::with_nodes(3);
        start.add_edge(N(1), &[0, 1]);
        start.add_edge(N(1), &[1, 2]);
        start.add_edge(T(0), &[2, 0]);
        let mut rhs0 = Hypergraph::with_nodes(3);
        rhs0.add_edge(T(0), &[0, 2]);
        rhs0.add_edge(T(1), &[2, 1]);
        rhs0.set_ext(vec![0, 1]);
        let mut rhs1 = Hypergraph::with_nodes(3);
        rhs1.add_edge(N(0), &[0, 2]);
        rhs1.add_edge(T(2), &[1, 2]);
        rhs1.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 3);
        g.add_rule(rhs0);
        g.add_rule(rhs1);
        g.validate().unwrap();
        check_against_derivation(&g);
    }

    #[test]
    fn neighbors_into_reuses_buffer_and_handles_isolated_nodes() {
        // fig1 plus an isolated node (4) for the rank-0 fast path.
        let mut start = Hypergraph::with_nodes(5);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[1, 2]);
        start.add_edge(N(0), &[2, 3]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 1]);
        rhs.add_edge(T(1), &[1, 2]);
        rhs.set_ext(vec![0, 2]);
        let mut g = Grammar::new(start, 2);
        g.add_rule(rhs);
        g.validate().unwrap();
        let idx = GrammarIndex::new(&g);
        let mut buf = vec![99u64; 8]; // stale contents must be cleared
        for k in 0..idx.total_nodes {
            for dir in [Direction::Out, Direction::In] {
                idx.try_neighbors_into(k, dir, &mut buf).unwrap();
                assert_eq!(buf, idx.try_neighbors(k, dir).unwrap(), "{k} {dir:?}");
            }
        }
        // The isolated node is empty in both directions via the fast path.
        idx.try_neighbors_into(4, Direction::Out, &mut buf).unwrap();
        assert!(buf.is_empty());
        // Out-of-range ids still error.
        assert!(idx.try_neighbors_into(idx.total_nodes, Direction::Out, &mut buf).is_err());
    }

    #[test]
    fn hub_through_nonterminals() {
        // A star compressed into nonterminals: hub neighbors span subtrees.
        let mut start = Hypergraph::with_nodes(1);
        for _ in 0..3 {
            start.add_edge(N(0), &[0]);
        }
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 1]);
        rhs.add_edge(T(0), &[0, 2]);
        rhs.set_ext(vec![0]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs);
        g.validate().unwrap();
        let idx = GrammarIndex::new(&g);
        assert_eq!(idx.out_neighbors(0).len(), 6);
        check_against_derivation(&g);
    }
}
