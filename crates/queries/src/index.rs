//! G-representations: addressing `val(G)` nodes inside the grammar.
//!
//! `val(G)`'s deterministic numbering (§II) assigns `0..m` to the start
//! graph's nodes and numbers the rest per nonterminal edge, depth-first.
//! A **G-representation** (§V) of node `k` is a path `e₀e₁…eₙ·v`: a
//! nonterminal edge of S, then nonterminal edges of successive right-hand
//! sides, ending at an internal node `v` of the last rule (or just `v` for a
//! start-graph node). [`GrammarIndex::locate`] computes it in
//! O(log ℓ + h) by binary-searching subtree-size prefix sums;
//! [`GrammarIndex::global_id`] is the inverse `getID`.
//!
//! The index is generic over *how it holds the grammar*: `GrammarIndex<&G>`
//! borrows (the natural choice for one-shot runs and tests), while
//! `GrammarIndex<Arc<Grammar>>` shares ownership so a long-lived store can
//! keep grammar and index together without self-referential lifetimes.

use std::borrow::Borrow;

use grepair_grammar::Grammar;
use grepair_hypergraph::{EdgeId, EdgeLabel, Hypergraph, NodeId};

use crate::error::QueryError;

/// A G-representation: the derivation path and the final node.
///
/// `path` is empty for start-graph nodes; otherwise `path[0]` is a
/// nonterminal edge of S and `path[i]` a nonterminal edge of the rhs of
/// `path[i-1]`'s label. `node` is an *internal* node of the last rhs (or an
/// alive start node when `path` is empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GRepr {
    /// Edge path from the start graph down.
    pub path: Vec<EdgeId>,
    /// Final node (context-local ID).
    pub node: NodeId,
}

/// Per-rule navigation data.
#[derive(Debug)]
pub struct RuleIndex {
    /// Internal nodes of the rhs in node-ID order (the creation order).
    pub internal_nodes: Vec<NodeId>,
    /// rhs node → index in `internal_nodes` (`u32::MAX` for externals).
    internal_pos: Vec<u32>,
    /// Nonterminal edges of the rhs in edge-ID order.
    pub nt_edges: Vec<EdgeId>,
    /// Local node offset at which each `nt_edges[i]` subtree starts
    /// (`internal_nodes.len() + Σ sizes of earlier subtrees`).
    nt_offsets: Vec<u64>,
    /// Total nodes created by expanding one edge with this label.
    pub subtree_size: u64,
}

/// Navigation index over a grammar.
#[derive(Debug)]
pub struct GrammarIndex<G: Borrow<Grammar>> {
    grammar: G,
    /// |V_S| (alive start nodes) — global IDs `0..m` are start nodes.
    pub m: usize,
    /// global id → start node.
    s_alive: Vec<NodeId>,
    /// start node → global id.
    s_pos: Vec<u32>,
    /// Nonterminal edges of S in edge-ID order.
    pub s_nt: Vec<EdgeId>,
    /// Global ID at which each `s_nt[i]` subtree starts.
    s_offsets: Vec<u64>,
    /// Per-nonterminal navigation data.
    pub rules: Vec<RuleIndex>,
    /// Total node count of `val(G)`.
    pub total_nodes: u64,
}

impl<G: Borrow<Grammar>> GrammarIndex<G> {
    /// Build the index in O(|G|).
    pub fn new(grammar: G) -> Self {
        let g: &Grammar = grammar.borrow();
        let sizes = g.derived_internal_node_counts();
        let rules: Vec<RuleIndex> = g
            .rules()
            .iter()
            .enumerate()
            .map(|(nt, rhs)| {
                let internal_nodes: Vec<NodeId> =
                    rhs.node_ids().filter(|&v| !rhs.is_external(v)).collect();
                let mut internal_pos = vec![u32::MAX; rhs.node_bound()];
                for (i, &v) in internal_nodes.iter().enumerate() {
                    internal_pos[v as usize] = i as u32;
                }
                let nt_edges: Vec<EdgeId> = rhs
                    .edges()
                    .filter(|e| e.label.is_nonterminal())
                    .map(|e| e.id)
                    .collect();
                let mut nt_offsets = Vec::with_capacity(nt_edges.len());
                let mut acc = internal_nodes.len() as u64;
                for &e in &nt_edges {
                    nt_offsets.push(acc);
                    let EdgeLabel::Nonterminal(child) = rhs.label(e) else { unreachable!() };
                    acc += sizes[child as usize];
                }
                debug_assert_eq!(acc, sizes[nt]);
                RuleIndex {
                    internal_nodes,
                    internal_pos,
                    nt_edges,
                    nt_offsets,
                    subtree_size: sizes[nt],
                }
            })
            .collect();

        let start = &g.start;
        let s_alive: Vec<NodeId> = start.node_ids().collect();
        let mut s_pos = vec![u32::MAX; start.node_bound()];
        for (i, &v) in s_alive.iter().enumerate() {
            s_pos[v as usize] = i as u32;
        }
        let s_nt: Vec<EdgeId> = start
            .edges()
            .filter(|e| e.label.is_nonterminal())
            .map(|e| e.id)
            .collect();
        let m = s_alive.len();
        let mut s_offsets = Vec::with_capacity(s_nt.len());
        let mut acc = m as u64;
        for &e in &s_nt {
            s_offsets.push(acc);
            let EdgeLabel::Nonterminal(child) = start.label(e) else { unreachable!() };
            acc += sizes[child as usize];
        }
        Self { grammar, m, s_alive, s_pos, s_nt, s_offsets, rules, total_nodes: acc }
    }

    /// The grammar this index navigates.
    pub fn grammar(&self) -> &Grammar {
        self.grammar.borrow()
    }

    /// The sequence of context graphs along `path`: `contexts[0]` = S, then
    /// the rhs each edge descends into; `contexts[i+1]` is the rhs of
    /// `path[i]`'s label (which labels `path[i]` within `contexts[i]`).
    pub fn contexts(&self, path: &[EdgeId]) -> Vec<&Hypergraph> {
        let g = self.grammar();
        let mut out = Vec::with_capacity(path.len() + 1);
        out.push(&g.start);
        for &e in path {
            let host = *out.last().unwrap();
            let EdgeLabel::Nonterminal(nt) = host.label(e) else {
                panic!("path through terminal edge");
            };
            out.push(g.rule(nt));
        }
        out
    }

    /// The context graph a path ends in: S for the empty path, else the rhs
    /// of the last edge's label.
    pub fn context(&self, path: &[EdgeId]) -> &Hypergraph {
        self.contexts(path).last().unwrap()
    }

    /// Nonterminal labeling the last edge of `path` (panics on empty path;
    /// [`GrammarIndex::try_nt_at`] is the checked variant).
    pub fn nt_at(&self, path: &[EdgeId]) -> u32 {
        self.try_nt_at(path).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Nonterminal labeling the last edge of `path`.
    pub fn try_nt_at(&self, path: &[EdgeId]) -> Result<u32, QueryError> {
        let (&last, prefix) = path.split_last().ok_or(QueryError::EmptyPath)?;
        let host = self.context(prefix);
        match host.label(last) {
            EdgeLabel::Nonterminal(nt) => Ok(nt),
            EdgeLabel::Terminal(_) => Err(QueryError::TerminalEdgeOnPath),
        }
    }

    /// Compute the G-representation of global node `k` (Prop. 4 step 1):
    /// O(log ℓ + h). Panics when `k` is not a `val(G)` node;
    /// [`GrammarIndex::try_locate`] is the checked variant.
    pub fn locate(&self, k: u64) -> GRepr {
        self.try_locate(k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Compute the G-representation of global node `k`, or report the valid
    /// id range when `k` lies outside `val(G)`.
    pub fn try_locate(&self, k: u64) -> Result<GRepr, QueryError> {
        if k >= self.total_nodes {
            return Err(QueryError::NodeOutOfRange { id: k, total: self.total_nodes });
        }
        if (k as usize) < self.m {
            return Ok(GRepr { path: Vec::new(), node: self.s_alive[k as usize] });
        }
        let g = self.grammar();
        // Binary search the S-level subtree that contains k.
        let i = self.s_offsets.partition_point(|&o| o <= k) - 1;
        let mut path = vec![self.s_nt[i]];
        let mut local = k - self.s_offsets[i];
        let EdgeLabel::Nonterminal(mut nt) = g.start.label(self.s_nt[i]) else {
            unreachable!()
        };
        loop {
            let rule = &self.rules[nt as usize];
            if (local as usize) < rule.internal_nodes.len() {
                return Ok(GRepr { path, node: rule.internal_nodes[local as usize] });
            }
            let j = rule.nt_offsets.partition_point(|&o| o <= local) - 1;
            let edge = rule.nt_edges[j];
            local -= rule.nt_offsets[j];
            let EdgeLabel::Nonterminal(child) = g.rule(nt).label(edge) else {
                unreachable!()
            };
            path.push(edge);
            nt = child;
        }
    }

    /// `getID` (§V): the global ID of context-local node `node` under
    /// `path`. Climbs out of external nodes in O(h).
    pub fn global_id(&self, path: &[EdgeId], node: NodeId) -> u64 {
        let contexts = self.contexts(path);
        let mut depth = path.len();
        let mut node = node;
        // While the node is external in its context, it merges with the
        // parent attachment.
        while depth > 0 {
            let rhs = contexts[depth];
            match rhs.ext().iter().position(|&x| x == node) {
                Some(pos) => {
                    node = contexts[depth - 1].att(path[depth - 1])[pos];
                    depth -= 1;
                }
                None => break,
            }
        }
        if depth == 0 {
            return self.s_pos[node as usize] as u64;
        }
        // Internal node: offset of the subtree + cumulative offset inside.
        let s_idx = self.s_nt.binary_search(&path[0]).expect("S nonterminal edge");
        let mut id = self.s_offsets[s_idx];
        for d in 1..depth {
            let EdgeLabel::Nonterminal(nt) = contexts[d - 1].label(path[d - 1]) else {
                unreachable!()
            };
            let rule = &self.rules[nt as usize];
            let j = rule
                .nt_edges
                .binary_search(&path[d])
                .expect("nonterminal edge of rhs");
            id += rule.nt_offsets[j];
        }
        let EdgeLabel::Nonterminal(nt) = contexts[depth - 1].label(path[depth - 1]) else {
            unreachable!()
        };
        let rule = &self.rules[nt as usize];
        id + rule.internal_pos[node as usize] as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_hypergraph::EdgeLabel::{Nonterminal as N, Terminal as T};

    /// Fig. 1 grammar: S = A A A over a 4-node path, A → a·b.
    fn fig1() -> Grammar {
        let mut start = Hypergraph::with_nodes(4);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[1, 2]);
        start.add_edge(N(0), &[2, 3]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 1]);
        rhs.add_edge(T(1), &[1, 2]);
        rhs.set_ext(vec![0, 2]);
        let mut g = Grammar::new(start, 2);
        g.add_rule(rhs);
        g
    }

    #[test]
    fn locate_and_global_id_are_inverse() {
        let g = fig1();
        let idx = GrammarIndex::new(&g);
        assert_eq!(idx.total_nodes, 7);
        for k in 0..idx.total_nodes {
            let repr = idx.locate(k);
            assert_eq!(idx.global_id(&repr.path, repr.node), k, "node {k}");
        }
    }

    #[test]
    fn start_nodes_come_first() {
        let g = fig1();
        let idx = GrammarIndex::new(&g);
        for k in 0..4 {
            let repr = idx.locate(k);
            assert!(repr.path.is_empty());
            assert_eq!(repr.node as u64, k);
        }
        // Node 4 is the internal node of the first A-edge.
        let repr = idx.locate(4);
        assert_eq!(repr.path, vec![0]);
        assert_eq!(repr.node, 1);
    }

    #[test]
    fn external_nodes_climb_to_parent() {
        let g = fig1();
        let idx = GrammarIndex::new(&g);
        // rhs node 0 (external position 0) under S-edge 1 is S node 1.
        assert_eq!(idx.global_id(&[1], 0), 1);
        // rhs node 2 (external position 1) under S-edge 2 is S node 3.
        assert_eq!(idx.global_id(&[2], 2), 3);
    }

    #[test]
    fn nested_grammar_index() {
        // S: one N1 edge; N1 → N0 · c; N0 → a · b (heights 2).
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(N(1), &[0, 1]);
        let mut rhs0 = Hypergraph::with_nodes(3);
        rhs0.add_edge(T(0), &[0, 2]);
        rhs0.add_edge(T(1), &[2, 1]);
        rhs0.set_ext(vec![0, 1]);
        let mut rhs1 = Hypergraph::with_nodes(3);
        rhs1.add_edge(N(0), &[0, 2]);
        rhs1.add_edge(T(2), &[2, 1]);
        rhs1.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 3);
        g.add_rule(rhs0);
        g.add_rule(rhs1);
        let idx = GrammarIndex::new(&g);
        assert_eq!(idx.total_nodes, 4);
        for k in 0..4 {
            let repr = idx.locate(k);
            assert_eq!(idx.global_id(&repr.path, repr.node), k);
        }
        // Node 3 is N0's internal node, two levels deep.
        let repr = idx.locate(3);
        assert_eq!(repr.path.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_locate_panics() {
        let g = fig1();
        let idx = GrammarIndex::new(&g);
        idx.locate(7);
    }

    #[test]
    fn try_locate_reports_range() {
        let g = fig1();
        let idx = GrammarIndex::new(&g);
        assert!(idx.try_locate(6).is_ok());
        let err = idx.try_locate(7).unwrap_err();
        assert_eq!(err, QueryError::NodeOutOfRange { id: 7, total: 7 });
        assert_eq!(
            idx.try_locate(u64::MAX).unwrap_err(),
            QueryError::NodeOutOfRange { id: u64::MAX, total: 7 }
        );
    }

    #[test]
    fn try_nt_at_checks_path() {
        let g = fig1();
        let idx = GrammarIndex::new(&g);
        assert_eq!(idx.try_nt_at(&[]), Err(QueryError::EmptyPath));
        assert_eq!(idx.try_nt_at(&[0]), Ok(0));
    }

    #[test]
    fn index_can_share_ownership() {
        let g = std::sync::Arc::new(fig1());
        let idx = GrammarIndex::new(g.clone());
        assert_eq!(idx.total_nodes, 7);
        assert_eq!(idx.grammar().num_nonterminals(), g.num_nonterminals());
    }
}
