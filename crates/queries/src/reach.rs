//! (s,t)-reachability over the grammar in O(|G|) — Theorem 6.
//!
//! Bottom-up (in ≤NT order), every nonterminal gets a **skeleton graph**
//! `sk(A)`: a digraph on the external nodes of `rhs(A)` preserving exactly
//! the reachability `val(A)` provides between them. Following the paper's
//! proof, the skeleton is built from the SCC condensation (Tarjan) of the
//! rhs with nested nonterminal edges replaced by their skeletons: SCCs
//! without external nodes are shortcut away, each remaining SCC becomes a
//! cycle over its external nodes, and inter-SCC edges connect arbitrary
//! representatives.
//!
//! A query resolves both nodes' G-representations, computes the forward
//! (resp. backward) reachable sets level by level up the derivation paths,
//! and tests intersection at every common-prefix level — paths that leave a
//! subtree and re-enter appear at the shallowest level they visit, where the
//! skeleton edges summarize the detours.

use std::borrow::Borrow;

use crate::error::QueryError;
use crate::index::GrammarIndex;
use grepair_grammar::Grammar;
use grepair_hypergraph::traverse::tarjan_scc;
use grepair_hypergraph::{EdgeId, EdgeLabel, Hypergraph, NodeId};

/// Skeleton graphs for every nonterminal plus the skeletonized start graph.
#[derive(Debug)]
pub struct ReachIndex<G: Borrow<Grammar>> {
    index: GrammarIndex<G>,
    /// `skeletons[A]` = edges (i, j) between external-node *positions*:
    /// position j is reachable from position i through `val(A)`.
    skeletons: Vec<Vec<(u8, u8)>>,
    /// Per context (S = None, rule = Some(nt)): the context graph with every
    /// nonterminal edge replaced by its skeleton's rank-2 edges.
    start_prime: Hypergraph,
    rules_prime: Vec<Hypergraph>,
}

/// Replace every nonterminal edge of `g` by plain edges realizing its
/// skeleton relation (label 0 — labels are irrelevant for reachability).
fn skeletonize(g: &Hypergraph, skeletons: &[Vec<(u8, u8)>]) -> Hypergraph {
    let mut out = Hypergraph::with_nodes(g.node_bound());
    for v in 0..g.node_bound() as NodeId {
        if !g.node_is_alive(v) {
            out.remove_node(v);
        }
    }
    let mut seen = grepair_util::FxHashSet::default();
    for e in g.edges() {
        match e.label {
            EdgeLabel::Terminal(_) => {
                if e.att.len() == 2 && seen.insert((e.att[0], e.att[1])) {
                    out.add_edge(EdgeLabel::Terminal(0), &[e.att[0], e.att[1]]);
                }
            }
            EdgeLabel::Nonterminal(nt) => {
                for &(i, j) in &skeletons[nt as usize] {
                    let (a, b) = (e.att[i as usize], e.att[j as usize]);
                    if a != b && seen.insert((a, b)) {
                        out.add_edge(EdgeLabel::Terminal(0), &[a, b]);
                    }
                }
            }
        }
    }
    out.set_ext(g.ext().to_vec());
    out
}

/// Build `sk(A)` from the skeletonized rhs, per the Theorem 6 construction.
fn build_skeleton(rhs_prime: &Hypergraph) -> Vec<(u8, u8)> {
    let ext = rhs_prime.ext();
    if ext.is_empty() {
        return Vec::new();
    }
    let (scc, scc_count) = tarjan_scc(rhs_prime);

    // Condensation adjacency (dedup) + external positions per component.
    let mut comp_ext: Vec<Vec<u8>> = vec![Vec::new(); scc_count];
    for (pos, &v) in ext.iter().enumerate() {
        comp_ext[scc[v as usize] as usize].push(pos as u8);
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); scc_count];
    for e in rhs_prime.edges() {
        if e.att.len() == 2 {
            let (a, b) = (scc[e.att[0] as usize], scc[e.att[1] as usize]);
            if a != b && !adj[a as usize].contains(&b) {
                adj[a as usize].push(b);
            }
        }
    }

    // Remove components without external nodes by shortcutting D→C→E to
    // D→E. Tarjan emits SCC ids in reverse topological order, so processing
    // ids ascending sees every successor before its predecessors.
    #[allow(clippy::needless_range_loop)] // index arithmetic over SCC ids
    for c in 0..scc_count {
        if comp_ext[c].is_empty() && !adj[c].is_empty() {
            let succs = adj[c].clone();
            for d in 0..scc_count {
                if d == c || !adj[d].contains(&(c as u32)) {
                    continue;
                }
                for &s in &succs {
                    if s as usize != d && !adj[d].contains(&s) {
                        adj[d].push(s);
                    }
                }
            }
        }
    }

    // Emit: a cycle over each component's external positions, plus one edge
    // per condensation edge between components that (still) have externals —
    // via reachability through ext-free components already shortcut above.
    let mut edges: Vec<(u8, u8)> = Vec::new();
    for c in 0..scc_count {
        let positions = &comp_ext[c];
        if positions.len() > 1 {
            for w in 0..positions.len() {
                edges.push((positions[w], positions[(w + 1) % positions.len()]));
            }
        }
        if positions.is_empty() {
            continue;
        }
        for &d in &adj[c] {
            if let Some(&target) = comp_ext[d as usize].first() {
                edges.push((positions[0], target));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges.retain(|&(a, b)| a != b);
    edges
}

impl<G: Borrow<Grammar>> ReachIndex<G> {
    /// Precompute all skeletons in one bottom-up pass — O(|G|).
    pub fn new(grammar: G) -> Self {
        let g: &Grammar = grammar.borrow();
        let order = g
            .topo_order_bottom_up()
            .expect("grammar must be straight-line");
        let mut skeletons: Vec<Vec<(u8, u8)>> = vec![Vec::new(); g.num_nonterminals()];
        let mut rules_prime: Vec<Hypergraph> = vec![Hypergraph::new(); g.num_nonterminals()];
        for nt in order {
            let rhs_prime = skeletonize(g.rule(nt), &skeletons);
            skeletons[nt as usize] = build_skeleton(&rhs_prime);
            rules_prime[nt as usize] = rhs_prime;
        }
        let start_prime = skeletonize(&g.start, &skeletons);
        Self { index: GrammarIndex::new(grammar), skeletons, start_prime, rules_prime }
    }

    /// The navigation index (shared with neighborhood queries).
    pub fn index(&self) -> &GrammarIndex<G> {
        &self.index
    }

    /// The skeleton relation of nonterminal `nt` (external-position pairs).
    pub fn skeleton(&self, nt: u32) -> &[(u8, u8)] {
        &self.skeletons[nt as usize]
    }

    fn context_prime(&self, path: &[EdgeId]) -> &Hypergraph {
        if path.is_empty() {
            &self.start_prime
        } else {
            &self.rules_prime[self.index.nt_at(path) as usize]
        }
    }

    /// Forward (or backward) closure of `seeds` within a skeletonized
    /// context graph.
    fn closure(g: &Hypergraph, seeds: &[NodeId], backward: bool) -> Vec<bool> {
        let mut seen = vec![false; g.node_bound()];
        let mut queue: Vec<NodeId> = Vec::new();
        for &s in seeds {
            if !seen[s as usize] {
                seen[s as usize] = true;
                queue.push(s);
            }
        }
        while let Some(v) = queue.pop() {
            let next: Vec<NodeId> = if backward {
                g.in_neighbors(v).collect()
            } else {
                g.out_neighbors(v).collect()
            };
            for u in next {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push(u);
                }
            }
        }
        seen
    }

    /// Per-level reachable sets walking up a G-representation: entry `d`
    /// holds the closure within the context at depth `d` (0 = S).
    fn level_sets(&self, path: &[EdgeId], node: NodeId, backward: bool) -> Vec<Vec<bool>> {
        let mut sets: Vec<Vec<bool>> = vec![Vec::new(); path.len() + 1];
        let contexts = self.index.contexts(path);
        let mut seeds: Vec<NodeId> = vec![node];
        for depth in (0..=path.len()).rev() {
            let ctx_prime = self.context_prime(&path[..depth]);
            let closure = Self::closure(ctx_prime, &seeds, backward);
            if depth > 0 {
                // Map reached external positions to parent attachment nodes.
                let rhs = contexts[depth];
                let parent_att = contexts[depth - 1].att(path[depth - 1]);
                seeds = rhs
                    .ext()
                    .iter()
                    .enumerate()
                    .filter(|(_, &x)| closure[x as usize])
                    .map(|(pos, _)| parent_att[pos])
                    .collect();
            }
            sets[depth] = closure;
        }
        sets
    }

    /// Is `val(G)` node `t` reachable from node `s`? O(|G|). Panics on an
    /// out-of-range id; [`ReachIndex::try_reachable`] is the checked variant.
    pub fn reachable(&self, s: u64, t: u64) -> bool {
        self.try_reachable(s, t).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Is `val(G)` node `t` reachable from node `s`, or an error naming the
    /// valid id range.
    pub fn try_reachable(&self, s: u64, t: u64) -> Result<bool, QueryError> {
        if s == t {
            // Trivially true — but only for ids that exist; O(1), no
            // forward pass.
            return if s < self.index.total_nodes {
                Ok(true)
            } else {
                Err(QueryError::NodeOutOfRange { id: s, total: self.index.total_nodes })
            };
        }
        let src = self.try_source(s)?;
        self.try_reachable_from(&src, t)
    }

    /// Precompute the forward closure of `s` once, for reuse across many
    /// targets: a batch of `reach s t₁`, `reach s t₂`, … then costs one
    /// forward pass total instead of one per query.
    pub fn try_source(&self, s: u64) -> Result<SourceClosure, QueryError> {
        let rs = self.index.try_locate(s)?;
        let forward = self.level_sets(&rs.path, rs.node, false);
        Ok(SourceClosure { s, path: rs.path, forward })
    }

    /// Is `t` reachable from the precomputed source? Only the backward pass
    /// for `t` runs; the forward half comes from `src`.
    pub fn try_reachable_from(&self, src: &SourceClosure, t: u64) -> Result<bool, QueryError> {
        if src.s == t {
            return Ok(true);
        }
        let rt = self.index.try_locate(t)?;
        let backward = self.level_sets(&rt.path, rt.node, true);
        // Common-prefix depth of the two derivation paths.
        let common = src
            .path
            .iter()
            .zip(&rt.path)
            .take_while(|(a, b)| a == b)
            .count();
        // Both set vectors cover depths 0..=common (common ≤ both path
        // lengths); at each shared context a forward/backward intersection
        // witnesses a path.
        for (fwd, bwd) in src.forward.iter().zip(&backward).take(common + 1) {
            if fwd.iter().zip(bwd).any(|(&x, &y)| x && y) {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// The forward half of a reachability query, computed once per source by
/// [`ReachIndex::try_source`] and shared across targets.
#[derive(Debug, Clone)]
pub struct SourceClosure {
    /// The source node id.
    s: u64,
    /// The source's derivation path.
    path: Vec<EdgeId>,
    /// Per-level forward-reachable sets (depth 0 = S).
    forward: Vec<Vec<bool>>,
}

impl SourceClosure {
    /// The source node this closure was computed for.
    pub fn source(&self) -> u64 {
        self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: reachability over the grammar must match BFS on val(G), for
    /// all node pairs.
    fn check_all_pairs(g: &Grammar) {
        let derived = g.derive();
        let r = ReachIndex::new(g);
        assert_eq!(r.index().total_nodes as usize, derived.num_nodes());
        for s in 0..derived.num_nodes() as u64 {
            for t in 0..derived.num_nodes() as u64 {
                let want =
                    grepair_hypergraph::traverse::reachable(&derived, s as u32, t as u32);
                assert_eq!(r.reachable(s, t), want, "reach({s},{t})");
            }
        }
    }

    use grepair_hypergraph::EdgeLabel::{Nonterminal as N, Terminal as T};

    #[test]
    fn fig1_chain_reachability() {
        let mut start = Hypergraph::with_nodes(4);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[1, 2]);
        start.add_edge(N(0), &[2, 3]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 1]);
        rhs.add_edge(T(1), &[1, 2]);
        rhs.set_ext(vec![0, 2]);
        let mut g = Grammar::new(start, 2);
        g.add_rule(rhs);
        check_all_pairs(&g);
    }

    #[test]
    fn cycle_through_nonterminals() {
        // S: A(0,1), A(1,0) — val is a 4-node directed cycle.
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[1, 0]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 2]);
        rhs.add_edge(T(0), &[2, 1]);
        rhs.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs);
        check_all_pairs(&g);
    }

    #[test]
    fn deep_nesting_same_subtree() {
        // Both endpoints inside the same S-subtree (tests the
        // common-prefix levels, not just the S level).
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(N(1), &[0, 1]);
        let mut rhs0 = Hypergraph::with_nodes(3); // a·b chain
        rhs0.add_edge(T(0), &[0, 2]);
        rhs0.add_edge(T(0), &[2, 1]);
        rhs0.set_ext(vec![0, 1]);
        let mut rhs1 = Hypergraph::with_nodes(4); // N0 then N0, sharing a mid node
        rhs1.add_edge(N(0), &[0, 2]);
        rhs1.add_edge(N(0), &[3, 2]); // converging, NOT a chain
        rhs1.add_edge(T(0), &[2, 1]);
        rhs1.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs0);
        g.add_rule(rhs1);
        g.validate().unwrap();
        check_all_pairs(&g);
    }

    #[test]
    fn exit_and_reenter_subtree() {
        // A path that must leave a subtree and re-enter another: two
        // nonterminal edges chained through S nodes plus a back edge.
        let mut start = Hypergraph::with_nodes(3);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(T(0), &[1, 2]);
        start.add_edge(N(0), &[2, 0]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 2]);
        rhs.add_edge(T(0), &[2, 1]);
        rhs.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs);
        check_all_pairs(&g);
    }

    #[test]
    fn skeleton_of_internal_scc() {
        // rhs with an internal cycle that connects ext 0 to ext 1 only
        // through a non-external SCC (exercises the shortcut step).
        let mut start = Hypergraph::with_nodes(4);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[2, 3]);
        let mut rhs = Hypergraph::with_nodes(4);
        rhs.add_edge(T(0), &[0, 2]); // into the cycle
        rhs.add_edge(T(0), &[2, 3]);
        rhs.add_edge(T(0), &[3, 2]); // cycle 2↔3
        rhs.add_edge(T(0), &[3, 1]); // out of the cycle
        rhs.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs);
        let r = ReachIndex::new(&g);
        assert_eq!(r.skeleton(0), &[(0, 1)]);
        check_all_pairs(&g);
    }

    #[test]
    fn source_closure_reuse_matches_pairwise() {
        let mut start = Hypergraph::with_nodes(4);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[1, 2]);
        start.add_edge(N(0), &[2, 3]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 1]);
        rhs.add_edge(T(1), &[1, 2]);
        rhs.set_ext(vec![0, 2]);
        let mut g = Grammar::new(start, 2);
        g.add_rule(rhs);
        let r = ReachIndex::new(&g);
        let n = r.index().total_nodes;
        for s in 0..n {
            let src = r.try_source(s).unwrap();
            assert_eq!(src.source(), s);
            for t in 0..n {
                assert_eq!(
                    r.try_reachable_from(&src, t).unwrap(),
                    r.reachable(s, t),
                    "({s},{t})"
                );
            }
        }
        // Out-of-range ids error instead of panicking, on both sides —
        // including the s == t fast path, which must still validate.
        assert!(r.try_source(n).is_err());
        let src = r.try_source(0).unwrap();
        assert!(r.try_reachable_from(&src, n).is_err());
        assert!(r.try_reachable(n, 0).is_err());
        assert!(r.try_reachable(n, n).is_err());
    }

    #[test]
    fn disconnected_val_graph() {
        let mut start = Hypergraph::with_nodes(4);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[2, 3]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 2]);
        rhs.add_edge(T(0), &[2, 1]);
        rhs.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs);
        check_all_pairs(&g);
    }
}
