//! A small NFA over terminal edge labels, built from a regex AST via
//! Thompson construction with ε-elimination.

use grepair_util::FxHashSet;

/// Regular expression over terminal labels.
#[derive(Debug, Clone)]
pub enum Regex {
    /// A single edge label.
    Label(u32),
    /// Concatenation.
    Cat(Vec<Regex>),
    /// Alternation.
    Alt(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One or more.
    Plus(Box<Regex>),
    /// Zero or one.
    Opt(Box<Regex>),
}

impl Regex {
    /// `Label` shorthand.
    pub fn label(l: u32) -> Regex {
        Regex::Label(l)
    }

    /// `Cat` shorthand.
    pub fn cat(parts: Vec<Regex>) -> Regex {
        Regex::Cat(parts)
    }

    /// `Alt` shorthand.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        Regex::Alt(parts)
    }

    /// `Star` shorthand.
    pub fn star(inner: Regex) -> Regex {
        Regex::Star(Box::new(inner))
    }

    /// `Plus` shorthand.
    pub fn plus(inner: Regex) -> Regex {
        Regex::Plus(Box::new(inner))
    }

    /// `Opt` shorthand.
    pub fn opt(inner: Regex) -> Regex {
        Regex::Opt(Box::new(inner))
    }
}

/// ε-free NFA over edge labels.
#[derive(Debug, Clone)]
pub struct Nfa {
    num_states: u32,
    /// (state, label, state).
    transitions: Vec<(u32, u32, u32)>,
    start: Vec<u32>,
    accept: Vec<u32>,
}

impl Nfa {
    /// Number of states.
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// Start states (ε-closed).
    pub fn start_states(&self) -> &[u32] {
        &self.start
    }

    /// Accepting states.
    pub fn accept_states(&self) -> &[u32] {
        &self.accept
    }

    /// Is `q` accepting?
    pub fn is_accepting(&self, q: u32) -> bool {
        self.accept.contains(&q)
    }

    /// Successor states of `q` on `label`.
    pub fn step(&self, q: u32, label: u32) -> impl Iterator<Item = u32> + '_ {
        self.transitions
            .iter()
            .filter(move |&&(a, l, _)| a == q && l == label)
            .map(|&(_, _, b)| b)
    }

    /// Predecessor states of `q` on `label`.
    pub fn step_back(&self, q: u32, label: u32) -> impl Iterator<Item = u32> + '_ {
        self.transitions
            .iter()
            .filter(move |&&(_, l, b)| b == q && l == label)
            .map(|&(a, _, _)| a)
    }

    /// Does the NFA accept this label word?
    pub fn accepts(&self, word: &[u32]) -> bool {
        let mut current: FxHashSet<u32> = self.start.iter().copied().collect();
        for &label in word {
            current = current
                .iter()
                .flat_map(|&q| self.step(q, label))
                .collect();
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&q| self.is_accepting(q))
    }

    /// Thompson construction with ε-elimination.
    pub fn from_regex(re: &Regex) -> Nfa {
        // ε-NFA: states with ε edges, then close.
        let mut b = Builder::default();
        let start = b.fresh();
        let end = b.fresh();
        b.build(re, start, end);
        b.finish(start, end)
    }
}

#[derive(Default)]
struct Builder {
    next: u32,
    eps: Vec<(u32, u32)>,
    trans: Vec<(u32, u32, u32)>,
}

impl Builder {
    fn fresh(&mut self) -> u32 {
        self.next += 1;
        self.next - 1
    }

    fn build(&mut self, re: &Regex, from: u32, to: u32) {
        match re {
            Regex::Label(l) => self.trans.push((from, *l, to)),
            Regex::Cat(parts) => {
                if parts.is_empty() {
                    self.eps.push((from, to));
                    return;
                }
                let mut cur = from;
                for (i, part) in parts.iter().enumerate() {
                    let nxt = if i + 1 == parts.len() { to } else { self.fresh() };
                    self.build(part, cur, nxt);
                    cur = nxt;
                }
            }
            Regex::Alt(parts) => {
                for part in parts {
                    self.build(part, from, to);
                }
            }
            Regex::Star(inner) => {
                let mid = self.fresh();
                self.eps.push((from, mid));
                self.eps.push((mid, to));
                self.build(inner, mid, mid);
            }
            Regex::Plus(inner) => {
                let mid = self.fresh();
                self.build(inner, from, mid);
                self.eps.push((mid, to));
                self.build(inner, mid, mid);
            }
            Regex::Opt(inner) => {
                self.eps.push((from, to));
                self.build(inner, from, to);
            }
        }
    }

    /// ε-closure per state.
    fn closure(&self, q: u32) -> Vec<u32> {
        let mut seen = vec![q];
        let mut stack = vec![q];
        while let Some(x) = stack.pop() {
            for &(a, b) in &self.eps {
                if a == x && !seen.contains(&b) {
                    seen.push(b);
                    stack.push(b);
                }
            }
        }
        seen
    }

    fn finish(self, start: u32, end: u32) -> Nfa {
        // Eliminate ε: transition (q, l, r) becomes (q', l, r) for every q'
        // with q ∈ closure(q'); accepting = states whose closure hits `end`.
        let n = self.next;
        let mut transitions = Vec::new();
        let closures: Vec<Vec<u32>> = (0..n).map(|q| self.closure(q)).collect();
        for q in 0..n {
            for &c in &closures[q as usize] {
                for &(a, l, b) in &self.trans {
                    if a == c && !transitions.contains(&(q, l, b)) {
                        transitions.push((q, l, b));
                    }
                }
            }
        }
        let accept: Vec<u32> =
            (0..n).filter(|&q| closures[q as usize].contains(&end)).collect();
        Nfa { num_states: n, transitions, start: vec![start], accept }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_acceptance() {
        let nfa = Nfa::from_regex(&Regex::cat(vec![Regex::label(0), Regex::label(1)]));
        assert!(nfa.accepts(&[0, 1]));
        assert!(!nfa.accepts(&[0]));
        assert!(!nfa.accepts(&[1, 0]));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn star_accepts_empty_and_repeats() {
        let nfa = Nfa::from_regex(&Regex::star(Regex::label(2)));
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&[2]));
        assert!(nfa.accepts(&[2, 2, 2, 2]));
        assert!(!nfa.accepts(&[2, 0]));
    }

    #[test]
    fn plus_requires_one() {
        let nfa = Nfa::from_regex(&Regex::plus(Regex::label(1)));
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&[1]));
        assert!(nfa.accepts(&[1, 1]));
    }

    #[test]
    fn alternation() {
        let nfa = Nfa::from_regex(&Regex::alt(vec![Regex::label(0), Regex::label(1)]));
        assert!(nfa.accepts(&[0]));
        assert!(nfa.accepts(&[1]));
        assert!(!nfa.accepts(&[0, 1]));
    }

    #[test]
    fn optional() {
        let nfa = Nfa::from_regex(&Regex::cat(vec![
            Regex::label(0),
            Regex::opt(Regex::label(1)),
            Regex::label(0),
        ]));
        assert!(nfa.accepts(&[0, 0]));
        assert!(nfa.accepts(&[0, 1, 0]));
        assert!(!nfa.accepts(&[0, 1, 1, 0]));
    }

    #[test]
    fn nested_composition() {
        // (a b)* a
        let nfa = Nfa::from_regex(&Regex::cat(vec![
            Regex::star(Regex::cat(vec![Regex::label(0), Regex::label(1)])),
            Regex::label(0),
        ]));
        assert!(nfa.accepts(&[0]));
        assert!(nfa.accepts(&[0, 1, 0]));
        assert!(nfa.accepts(&[0, 1, 0, 1, 0]));
        assert!(!nfa.accepts(&[0, 1]));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn step_and_back_are_consistent() {
        let nfa = Nfa::from_regex(&Regex::plus(Regex::label(3)));
        for q in 0..nfa.num_states() {
            for next in nfa.step(q, 3).collect::<Vec<_>>() {
                assert!(nfa.step_back(next, 3).any(|p| p == q));
            }
        }
    }
}
