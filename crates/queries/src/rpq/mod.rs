//! Regular path queries (RPQs) over the grammar — the paper's stated
//! future work ("In the future we want to find more query classes with this
//! property (e.g., regular path queries)").
//!
//! An RPQ asks: is there a directed path from `s` to `t` whose edge-label
//! word belongs to a regular language? The grammar-side evaluation
//! generalizes Theorem 6's skeletons to an automaton product: for every
//! nonterminal `A` and NFA `M` we precompute the relation
//!
//! > `R_A ⊆ (ext × Q) × (ext × Q)`:  ((i, q), (j, q')) ∈ R_A iff inside
//! > `val(A)` there is a path from external node i to external node j whose
//! > label word drives `M` from state q to state q'.
//!
//! computed bottom-up in one pass (each rule's product graph uses the nested
//! nonterminals' relations instead of expanding them). A query then runs the
//! same level-set climb as plain reachability, but over (node, state) pairs.
//! Plain (s,t)-reachability is exactly the RPQ for the one-state NFA that
//! loops on every label — a differential test below exploits that.

use std::borrow::Borrow;

use crate::error::QueryError;
use crate::index::GrammarIndex;
use grepair_grammar::Grammar;
use grepair_hypergraph::{EdgeId, EdgeLabel, Hypergraph, NodeId};
use grepair_util::FxHashSet;

mod nfa;
pub use nfa::{Nfa, Regex};

/// Precomputed RPQ evaluator for one grammar and one NFA.
#[derive(Debug)]
pub struct RpqIndex<G: Borrow<Grammar>> {
    index: GrammarIndex<G>,
    nfa: Nfa,
    /// `relations[A][i * |Q| + q]` = list of (j, q') reachable from
    /// external position i in state q, within val(A).
    relations: Vec<Vec<Vec<(u8, u32)>>>,
}

/// A (node, state) pair in some context graph.
type Config = (NodeId, u32);

impl<G: Borrow<Grammar>> RpqIndex<G> {
    /// Build the per-nonterminal relations bottom-up — O(|G|·|Q|²·maxRank).
    pub fn new(grammar: G, nfa: Nfa) -> Self {
        let g: &Grammar = grammar.borrow();
        let order = g
            .topo_order_bottom_up()
            .expect("grammar must be straight-line");
        let mut relations: Vec<Vec<Vec<(u8, u32)>>> =
            vec![Vec::new(); g.num_nonterminals()];
        for nt in order {
            let rhs = g.rule(nt);
            let q = nfa.num_states();
            let ext = rhs.ext();
            let mut rel = vec![Vec::new(); ext.len() * q as usize];
            for (i, &x) in ext.iter().enumerate() {
                for q0 in 0..q {
                    let closed = product_closure(rhs, &nfa, &relations, &[(x, q0)], false);
                    for &(n, qn) in &closed {
                        if let Some(j) = ext.iter().position(|&y| y == n) {
                            if (j, qn) != (i, q0) {
                                rel[i * q as usize + q0 as usize].push((j as u8, qn));
                            }
                        }
                    }
                }
            }
            relations[nt as usize] = rel;
        }
        Self { index: GrammarIndex::new(grammar), nfa, relations }
    }

    /// The navigation index.
    pub fn index(&self) -> &GrammarIndex<G> {
        &self.index
    }

    /// Is there a path from `val(G)` node `s` to node `t` whose label word
    /// is accepted by the NFA? (The empty word counts when `s == t` and the
    /// start state accepts.) Panics on an out-of-range id;
    /// [`RpqIndex::try_matches`] is the checked variant.
    pub fn matches(&self, s: u64, t: u64) -> bool {
        self.try_matches(s, t).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`RpqIndex::matches`], but out-of-range ids return an error
    /// naming the valid range instead of panicking.
    pub fn try_matches(&self, s: u64, t: u64) -> Result<bool, QueryError> {
        // Validate both ids (O(log) locates) before the expensive forward
        // product closure, so hostile targets cost two lookups, not a full
        // pass. Errors report `s` before `t`, matching the shared-source
        // batch path (which resolves the source closure first).
        self.index.try_locate(s)?;
        self.index.try_locate(t)?;
        let src = self.try_source(s)?;
        self.try_matches_from(&src, t)
    }

    /// Precompute the forward product closure of `s` once, for reuse across
    /// many targets — the RPQ generalization of
    /// [`crate::ReachIndex::try_source`]: a batch of `rpq s t₁`, `rpq s t₂`,
    /// … with one pattern then costs one forward pass total.
    pub fn try_source(&self, s: u64) -> Result<RpqSourceClosure, QueryError> {
        let rs = self.index.try_locate(s)?;
        let forward = self.level_sets(&rs.path, rs.node, self.nfa.start_states(), false);
        Ok(RpqSourceClosure { s, path: rs.path, forward })
    }

    /// Does some `src → t` path spell a word of the pattern's language?
    /// Only the backward pass for `t` runs; the forward half comes from
    /// `src`.
    pub fn try_matches_from(
        &self,
        src: &RpqSourceClosure,
        t: u64,
    ) -> Result<bool, QueryError> {
        let rt = self.index.try_locate(t)?;
        let accepts: Vec<u32> = self.nfa.accept_states().to_vec();
        let backward = self.level_sets(&rt.path, rt.node, &accepts, true);
        let common = src
            .path
            .iter()
            .zip(&rt.path)
            .take_while(|(a, b)| a == b)
            .count();
        for (f, b) in src.forward.iter().zip(&backward).take(common + 1) {
            if b.iter().any(|cfg| f.contains(cfg)) {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Per-level closures over (node, state) pairs, climbing the derivation
    /// path from the node's own context up to the start graph.
    fn level_sets(
        &self,
        path: &[EdgeId],
        node: NodeId,
        states: &[u32],
        backward: bool,
    ) -> Vec<FxHashSet<Config>> {
        let contexts = self.index.contexts(path);
        let mut sets: Vec<FxHashSet<Config>> = vec![FxHashSet::default(); path.len() + 1];
        let mut seeds: Vec<Config> = states.iter().map(|&q| (node, q)).collect();
        for depth in (0..=path.len()).rev() {
            let ctx = contexts[depth];
            let closed =
                product_closure(ctx, &self.nfa, &self.relations, &seeds, backward);
            if depth > 0 {
                let rhs = contexts[depth];
                let parent_att = contexts[depth - 1].att(path[depth - 1]);
                seeds = rhs
                    .ext()
                    .iter()
                    .enumerate()
                    .flat_map(|(pos, &x)| {
                        closed
                            .iter()
                            .filter(move |&&(n, _)| n == x)
                            .map(move |&(_, q)| (parent_att[pos], q))
                    })
                    .collect();
            }
            sets[depth] = closed;
        }
        sets
    }
}

/// The forward half of an RPQ evaluation: per-level product closures over
/// (node, state) pairs, computed once per (pattern, source) by
/// [`RpqIndex::try_source`] and shared across targets. Only meaningful
/// against the [`RpqIndex`] that produced it (the states are indices into
/// that index's NFA).
#[derive(Debug, Clone)]
pub struct RpqSourceClosure {
    /// The source node id.
    s: u64,
    /// The source's derivation path.
    path: Vec<EdgeId>,
    /// Per-level forward-reachable (node, state) sets (depth 0 = S).
    forward: Vec<FxHashSet<Config>>,
}

impl RpqSourceClosure {
    /// The source node this closure was computed for.
    pub fn source(&self) -> u64 {
        self.s
    }
}

/// Closure of `seeds` in the product of a context graph with the NFA,
/// using nested nonterminals' relations instead of expanding them.
fn product_closure(
    ctx: &Hypergraph,
    nfa: &Nfa,
    relations: &[Vec<Vec<(u8, u32)>>],
    seeds: &[Config],
    backward: bool,
) -> FxHashSet<Config> {
    let q = nfa.num_states() as usize;
    let mut seen: FxHashSet<Config> = seeds.iter().copied().collect();
    let mut queue: Vec<Config> = seeds.to_vec();
    while let Some((n, state)) = queue.pop() {
        for e in ctx.incident(n) {
            let att = ctx.att(e);
            match ctx.label(e) {
                EdgeLabel::Terminal(label) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let (from, to) = (att[0], att[1]);
                    let nexts: Vec<Config> = if !backward && from == n {
                        nfa.step(state, label).map(|q2| (to, q2)).collect()
                    } else if backward && to == n {
                        nfa.step_back(state, label).map(|q2| (from, q2)).collect()
                    } else {
                        continue;
                    };
                    for cfg in nexts {
                        if seen.insert(cfg) {
                            queue.push(cfg);
                        }
                    }
                }
                EdgeLabel::Nonterminal(b) => {
                    let rel = &relations[b as usize];
                    for (i, &x) in att.iter().enumerate() {
                        if x != n {
                            continue;
                        }
                        if !backward {
                            for &(j, q2) in &rel[i * q + state as usize] {
                                let cfg = (att[j as usize], q2);
                                if seen.insert(cfg) {
                                    queue.push(cfg);
                                }
                            }
                        } else {
                            // Reverse lookup: all (j, q') with
                            // ((j, q') → (i, state)) ∈ R_B.
                            for (jq, targets) in rel.iter().enumerate() {
                                if targets.contains(&(i as u8, state)) {
                                    let j = jq / q;
                                    let q2 = (jq % q) as u32;
                                    let cfg = (att[j], q2);
                                    if seen.insert(cfg) {
                                        queue.push(cfg);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    seen
}

/// Oracle: RPQ evaluation on a plain graph via BFS over the product space.
pub fn rpq_on_graph(g: &Hypergraph, nfa: &Nfa, s: NodeId, t: NodeId) -> bool {
    if s == t && nfa.start_states().iter().any(|&q| nfa.is_accepting(q)) {
        return true;
    }
    let mut seen: FxHashSet<Config> = FxHashSet::default();
    let mut queue: Vec<Config> = Vec::new();
    for &q in nfa.start_states() {
        seen.insert((s, q));
        queue.push((s, q));
    }
    while let Some((n, state)) = queue.pop() {
        for e in g.incident(n) {
            let att = g.att(e);
            if att.len() != 2 || att[0] != n {
                continue;
            }
            let EdgeLabel::Terminal(label) = g.label(e) else { continue };
            for q2 in nfa.step(state, label) {
                let cfg = (att[1], q2);
                if cfg.0 == t && nfa.is_accepting(q2) {
                    return true;
                }
                if seen.insert(cfg) {
                    queue.push(cfg);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_core::{compress, GRePairConfig};

    fn check_all_pairs(g: &Hypergraph, nfa: &Nfa) {
        let out = compress(g, &GRePairConfig::default());
        let derived = out.grammar.derive();
        let rpq = RpqIndex::new(&out.grammar, nfa.clone());
        // Map val-node → input-node to query the oracle on the input graph.
        for s in 0..derived.num_nodes() as u64 {
            for t in 0..derived.num_nodes() as u64 {
                let want = rpq_on_graph(
                    &derived,
                    nfa,
                    s as NodeId,
                    t as NodeId,
                );
                assert_eq!(rpq.matches(s, t), want, "rpq({s},{t})");
            }
        }
    }

    /// The repeated a·b path: (ab)^n.
    fn ab_path(reps: u32) -> Hypergraph {
        Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        )
        .0
    }

    #[test]
    fn word_query_on_folded_path() {
        // L = a·b : exactly one pattern repetition.
        let nfa = Nfa::from_regex(&Regex::cat(vec![Regex::label(0), Regex::label(1)]));
        check_all_pairs(&ab_path(12), &nfa);
    }

    #[test]
    fn star_query_matches_plain_reachability() {
        // L = (a|b)* : RPQ == reachability; differential against ReachIndex.
        let g = ab_path(16);
        let nfa = Nfa::from_regex(&Regex::star(Regex::alt(vec![
            Regex::label(0),
            Regex::label(1),
        ])));
        let out = compress(&g, &GRePairConfig::default());
        let rpq = RpqIndex::new(&out.grammar, nfa);
        let reach = crate::ReachIndex::new(&out.grammar);
        let n = out.grammar.derive().num_nodes() as u64;
        for s in (0..n).step_by(3) {
            for t in (0..n).step_by(3) {
                assert_eq!(rpq.matches(s, t), reach.reachable(s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn alternation_and_plus() {
        // L = a+ over a graph with both a- and b-paths.
        let (g, _) = Hypergraph::from_simple_edges(
            6,
            vec![(0u32, 0u32, 1u32), (1, 0, 2), (2, 1, 3), (3, 0, 4), (0, 1, 5)],
        );
        let nfa = Nfa::from_regex(&Regex::plus(Regex::label(0)));
        check_all_pairs(&g, &nfa);
    }

    #[test]
    fn empty_word_semantics() {
        let g = ab_path(4);
        // L = a* accepts ε: every node matches itself.
        let nfa = Nfa::from_regex(&Regex::star(Regex::label(0)));
        let out = compress(&g, &GRePairConfig::default());
        let rpq = RpqIndex::new(&out.grammar, nfa);
        assert!(rpq.matches(3, 3));
        // L = a·a does not accept ε.
        let nfa = Nfa::from_regex(&Regex::cat(vec![Regex::label(0), Regex::label(0)]));
        let out = compress(&g, &GRePairConfig::default());
        let rpq = RpqIndex::new(&out.grammar, nfa);
        assert!(!rpq.matches(3, 3));
    }

    #[test]
    fn source_closure_reuse_matches_pairwise() {
        let g = ab_path(8);
        let nfa = Nfa::from_regex(&Regex::cat(vec![
            Regex::star(Regex::label(0)),
            Regex::label(1),
        ]));
        let out = compress(&g, &GRePairConfig::default());
        let rpq = RpqIndex::new(&out.grammar, nfa);
        let n = out.grammar.derive().num_nodes() as u64;
        for s in 0..n {
            let src = rpq.try_source(s).unwrap();
            assert_eq!(src.source(), s);
            for t in 0..n {
                assert_eq!(
                    rpq.try_matches_from(&src, t).unwrap(),
                    rpq.matches(s, t),
                    "({s},{t})"
                );
            }
        }
        // Out-of-range ids error on both halves instead of panicking.
        assert!(rpq.try_source(n).is_err());
        let src = rpq.try_source(0).unwrap();
        assert!(rpq.try_matches_from(&src, n).is_err());
        assert!(rpq.try_matches(0, n).is_err());
        assert!(rpq.try_matches(n, 0).is_err());
    }

    #[test]
    fn cycle_queries() {
        // Directed 2-colored cycle: paths wrap around.
        let (g, _) = Hypergraph::from_simple_edges(
            8,
            (0..8u32).map(|i| (i, i % 2, (i + 1) % 8)),
        );
        let nfa = Nfa::from_regex(&Regex::star(Regex::cat(vec![
            Regex::label(0),
            Regex::label(1),
        ])));
        check_all_pairs(&g, &nfa);
    }

    #[test]
    fn optional_segments() {
        let (g, _) = Hypergraph::from_simple_edges(
            5,
            vec![(0u32, 0u32, 1u32), (1, 1, 2), (2, 0, 3), (0, 0, 4)],
        );
        // L = a·b?·a
        let nfa = Nfa::from_regex(&Regex::cat(vec![
            Regex::label(0),
            Regex::opt(Regex::label(1)),
            Regex::label(0),
        ]));
        check_all_pairs(&g, &nfa);
    }
}
