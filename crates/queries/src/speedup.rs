//! One-pass speed-up queries (Proposition 5 flavor).
//!
//! CMSO-definable properties and functions can be evaluated in a single
//! bottom-up pass through the grammar. Two of the functions the paper lists
//! are implemented here as concrete examples:
//!
//! * [`connected_components`] — per nonterminal, summarize how `val(A)`
//!   connects its external nodes (a partition) and how many components it
//!   closes off internally; compose summaries upward.
//! * [`degree_extrema`] — per nonterminal, the degree each external node
//!   gains inside `val(A)` and the min/max over internal nodes; compose.
//!
//! Both run in O(|G|) instead of O(|val(G)|) — the speed-up proportional to
//! the compression ratio.

use grepair_grammar::Grammar;
use grepair_hypergraph::traverse::UnionFind;
use grepair_hypergraph::{EdgeLabel, Hypergraph};

/// Per-nonterminal connectivity summary.
#[derive(Debug, Clone)]
struct ConnSummary {
    /// `partition[i] = partition[j]` iff external positions i and j are
    /// connected within `val(A)` (class ids are dense).
    partition: Vec<u8>,
    /// Components of `val(A)` touching no external node.
    closed: u64,
}

fn summarize(rhs: &Hypergraph, summaries: &[ConnSummary]) -> ConnSummary {
    let mut uf = UnionFind::new(rhs.node_bound());
    let mut closed = 0u64;
    for e in rhs.edges() {
        match e.label {
            EdgeLabel::Terminal(_) => {
                for w in e.att.windows(2) {
                    uf.union(w[0], w[1]);
                }
            }
            EdgeLabel::Nonterminal(nt) => {
                let sub = &summaries[nt as usize];
                closed += sub.closed;
                // Merge attachment nodes whose positions share a class.
                for i in 0..e.att.len() {
                    for j in (i + 1)..e.att.len() {
                        if sub.partition[i] == sub.partition[j] {
                            uf.union(e.att[i], e.att[j]);
                        }
                    }
                }
            }
        }
    }
    // Project onto external positions.
    let ext = rhs.ext();
    let mut class_of = Vec::with_capacity(ext.len());
    let mut reps: Vec<u32> = Vec::new();
    for &x in ext {
        let r = uf.find(x);
        let class = match reps.iter().position(|&q| q == r) {
            Some(i) => i,
            None => {
                reps.push(r);
                reps.len() - 1
            }
        };
        class_of.push(class as u8);
    }
    // Internal components not reaching any external node.
    let mut internal_reps: Vec<u32> = Vec::new();
    for v in rhs.node_ids() {
        let r = uf.find(v);
        if !reps.contains(&r) && !internal_reps.contains(&r) {
            internal_reps.push(r);
        }
    }
    closed += internal_reps.len() as u64;
    ConnSummary { partition: class_of, closed }
}

/// Number of connected components of `val(G)` (undirected view), computed
/// in one pass through the grammar.
pub fn connected_components(grammar: &Grammar) -> u64 {
    let order = grammar
        .topo_order_bottom_up()
        .expect("grammar must be straight-line");
    let mut summaries: Vec<ConnSummary> =
        vec![ConnSummary { partition: Vec::new(), closed: 0 }; grammar.num_nonterminals()];
    for nt in order {
        summaries[nt as usize] = summarize(grammar.rule(nt), &summaries);
    }
    // Treat S as a rank-0 "rule": all components are closed.
    let mut start = grammar.start.clone();
    start.set_ext(Vec::new());
    let top = summarize(&start, &summaries);
    top.closed
}

/// Per-nonterminal degree summary.
#[derive(Debug, Clone)]
struct DegreeSummary {
    /// Degree each external position gains inside `val(A)`.
    ext_degree: Vec<u64>,
    /// Min/max degree over the *internal* nodes of `val(A)` (None if none).
    internal: Option<(u64, u64)>,
}

fn degree_summary(rhs: &Hypergraph, summaries: &[DegreeSummary]) -> DegreeSummary {
    let mut deg = vec![0u64; rhs.node_bound()];
    let mut internal: Option<(u64, u64)> = None;
    let fold = |range: Option<(u64, u64)>, lo: u64, hi: u64| match range {
        None => Some((lo, hi)),
        Some((a, b)) => Some((a.min(lo), b.max(hi))),
    };
    for e in rhs.edges() {
        match e.label {
            EdgeLabel::Terminal(_) => {
                for &v in e.att {
                    deg[v as usize] += 1;
                }
            }
            EdgeLabel::Nonterminal(nt) => {
                let sub = &summaries[nt as usize];
                for (pos, &v) in e.att.iter().enumerate() {
                    deg[v as usize] += sub.ext_degree[pos];
                }
                if let Some((lo, hi)) = sub.internal {
                    internal = fold(internal, lo, hi);
                }
            }
        }
    }
    for v in rhs.node_ids() {
        if !rhs.is_external(v) {
            internal = fold(internal, deg[v as usize], deg[v as usize]);
        }
    }
    let ext_degree = rhs.ext().iter().map(|&x| deg[x as usize]).collect();
    DegreeSummary { ext_degree, internal }
}

/// `(min, max)` degree over all nodes of `val(G)` (undirected incidence
/// count), in one pass through the grammar. `None` for the empty graph.
pub fn degree_extrema(grammar: &Grammar) -> Option<(u64, u64)> {
    let order = grammar
        .topo_order_bottom_up()
        .expect("grammar must be straight-line");
    let mut summaries: Vec<DegreeSummary> = vec![
        DegreeSummary { ext_degree: Vec::new(), internal: None };
        grammar.num_nonterminals()
    ];
    for nt in order {
        summaries[nt as usize] = degree_summary(grammar.rule(nt), &summaries);
    }
    let mut start = grammar.start.clone();
    start.set_ext(Vec::new());
    let top = degree_summary(&start, &summaries);
    top.internal
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_core::{compress, GRePairConfig};
    use grepair_hypergraph::Hypergraph;

    fn oracle_components(g: &Hypergraph) -> u64 {
        grepair_hypergraph::traverse::connected_components(g).1 as u64
    }

    fn oracle_degrees(g: &Hypergraph) -> Option<(u64, u64)> {
        let degs: Vec<u64> = g.node_ids().map(|v| g.degree(v) as u64).collect();
        Some((*degs.iter().min()?, *degs.iter().max()?))
    }

    fn check(g: &Hypergraph) {
        let out = compress(g, &GRePairConfig::default());
        assert_eq!(
            connected_components(&out.grammar),
            oracle_components(g),
            "components"
        );
        assert_eq!(degree_extrema(&out.grammar), oracle_degrees(g), "degrees");
    }

    #[test]
    fn repeated_chain() {
        let (g, _) = Hypergraph::from_simple_edges(
            41,
            (0..20u32).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1, 2 * i + 2)]),
        );
        check(&g);
    }

    #[test]
    fn disjoint_copies() {
        let mut triples = Vec::new();
        for c in 0..10u32 {
            let b = 4 * c;
            triples.extend([(b, 0u32, b + 1), (b + 1, 0, b + 2), (b + 2, 0, b + 3), (b, 0, b + 2)]);
        }
        let (g, _) = Hypergraph::from_simple_edges(40, triples);
        check(&g); // 10 components, degree extremes 1..3
        assert_eq!(oracle_components(&g), 10);
    }

    #[test]
    fn isolated_nodes_count_as_components() {
        let (g, _) = Hypergraph::from_simple_edges(10, vec![(0u32, 0u32, 1u32)]);
        check(&g); // 1 edge component + 8 isolated nodes = 9
        assert_eq!(oracle_components(&g), 9);
    }

    #[test]
    fn hub_degrees() {
        let (g, _) =
            Hypergraph::from_simple_edges(33, (1..=32u32).map(|i| (0u32, 0u32, i)));
        check(&g);
        let out = compress(&g, &GRePairConfig::default());
        assert_eq!(degree_extrema(&out.grammar), Some((1, 32)));
    }
}
