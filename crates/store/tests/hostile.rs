//! The zero-panic guarantee, exercised end to end: every byte sequence
//! handed to the load path and every id handed to the query path must
//! produce `Ok` or a clean `Err` — never a panic.
//!
//! CI runs this suite by name (`cargo test -p grepair-store --test hostile`)
//! so the guarantee is enforced on every PR.

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::Hypergraph;
use grepair_store::{codecs, write_container, GraphStore, Query};

/// A real compressed container to corrupt.
fn good_container() -> Vec<u8> {
    let (g, _) = Hypergraph::from_simple_edges(
        41,
        (0..20u32).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    );
    let out = compress(&g, &GRePairConfig::default());
    let enc = grepair_codec::encode(&out.grammar);
    write_container(&enc.bytes, enc.bit_len)
}

#[test]
fn the_good_container_loads() {
    let store = GraphStore::from_bytes(&good_container()).unwrap();
    assert_eq!(store.total_nodes(), 41);
}

#[test]
fn truncation_at_every_offset_errors() {
    let file = good_container();
    // Every prefix, including the empty file and cuts inside the header —
    // the original bit_len header survives in prefixes ≥ 12 bytes, so this
    // also covers "header claims more bits than the payload holds".
    for keep in 0..file.len() {
        let result = GraphStore::from_bytes(&file[..keep]);
        assert!(result.is_err(), "prefix of {keep} bytes must error");
    }
}

#[test]
fn single_byte_flips_never_panic() {
    let file = good_container();
    for byte in 0..file.len() {
        for bit in 0..8 {
            let mut copy = file.clone();
            copy[byte] ^= 1 << bit;
            // Ok or Err are both acceptable (some flips decode to a
            // different valid grammar); panicking is not.
            let _ = GraphStore::from_bytes(&copy);
        }
    }
}

#[test]
fn garbage_and_wrong_magic_error() {
    for junk in [
        &b""[..],
        b"G2G",
        b"G2G2",
        b"G2G1",
        b"\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",
        b"not a g2g file at all, just some text",
    ] {
        assert!(GraphStore::from_bytes(junk).is_err(), "{junk:?}");
    }
    // Valid header, absurd bit length, no payload.
    let mut lie = Vec::new();
    lie.extend_from_slice(b"G2G1");
    lie.extend_from_slice(&u64::MAX.to_le_bytes());
    assert!(GraphStore::from_bytes(&lie).is_err());
}

/// A real container per registered backend, all encoding the same
/// unlabeled path graph (every backend's model accepts it).
fn backend_containers() -> Vec<(&'static str, Vec<u8>)> {
    let (g, _) = Hypergraph::from_simple_edges(41, (0..40u32).map(|i| (i, 0u32, i + 1)));
    codecs()
        .iter()
        .map(|codec| (codec.name(), codec.encode(&g).expect("path graph encodes")))
        .collect()
}

#[test]
fn every_backend_container_loads_and_serves() {
    for (name, file) in backend_containers() {
        let store = GraphStore::from_bytes(&file).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(store.backend(), name);
        assert_eq!(store.total_nodes(), 41, "{name}");
    }
}

#[test]
fn truncation_at_every_offset_errors_for_every_backend() {
    for (name, file) in backend_containers() {
        for keep in 0..file.len() {
            let result = GraphStore::from_bytes(&file[..keep]);
            assert!(result.is_err(), "{name}: prefix of {keep} bytes must error");
        }
    }
}

#[test]
fn single_byte_flips_never_panic_in_any_backend() {
    for (name, file) in backend_containers() {
        for byte in 0..file.len() {
            for bit in 0..8 {
                let mut copy = file.clone();
                copy[byte] ^= 1 << bit;
                // Ok or Err are both acceptable (some flips decode to a
                // different valid container); panicking is not. A store
                // that does load must then survive hostile queries.
                if let Ok(store) = GraphStore::from_bytes(&copy) {
                    let n = store.total_nodes();
                    let _ = store.query(&Query::OutNeighbors(n));
                    let _ = store.query(&Query::Reach { s: 0, t: n.saturating_sub(1) });
                }
                let _ = name;
            }
        }
    }
}

#[test]
fn hostile_query_inputs_error_for_every_backend() {
    for (name, file) in backend_containers() {
        let store = GraphStore::from_bytes(&file).unwrap();
        let n = store.total_nodes();
        for id in [n, n + 1, u64::MAX, 1 << 40] {
            assert!(store.out_neighbors(id).is_err(), "{name} out {id}");
            assert!(store.in_neighbors(id).is_err(), "{name} in {id}");
            assert!(store.neighbors(id).is_err(), "{name} both {id}");
            assert!(store.reachable(id, 0).is_err(), "{name} reach s={id}");
            assert!(store.reachable(0, id).is_err(), "{name} reach t={id}");
            assert!(store.rpq("0", id, 0).is_err(), "{name} rpq {id}");
        }
        // Malformed patterns are BadRequest, not panics.
        assert!(store.rpq("", 0, 1).is_err(), "{name}");
        assert!(store.rpq("x", 0, 1).is_err(), "{name}");
        // In-range queries still work after all that, through the batch
        // machinery (the acceptance shape), sequential and parallel.
        let queries: Vec<Query> = (0..2_000u64)
            .map(|i| match i % 4 {
                0 => Query::OutNeighbors(i % n),
                1 => Query::Neighbors((i * 7) % n),
                2 => Query::Reach { s: (i * 3) % n, t: (i * 11) % n },
                _ => Query::Rpq { s: (i * 5) % n, t: (i * 13) % n, pattern: "0*".into() },
            })
            .collect();
        let answers = store.query_batch(&queries);
        assert!(answers.iter().all(|a| a.is_ok()), "{name}");
        assert_eq!(store.query_batch_parallel(&queries, 4), answers, "{name}");
    }
}

#[test]
fn hostile_query_inputs_error() {
    let store = GraphStore::from_bytes(&good_container()).unwrap();
    let n = store.total_nodes();
    for id in [n, n + 1, u64::MAX, 1 << 40] {
        assert!(store.out_neighbors(id).is_err(), "out {id}");
        assert!(store.in_neighbors(id).is_err(), "in {id}");
        assert!(store.neighbors(id).is_err(), "both {id}");
        assert!(store.reachable(id, 0).is_err(), "reach s={id}");
        assert!(store.reachable(0, id).is_err(), "reach t={id}");
        assert!(store.rpq("0 1", id, 0).is_err(), "rpq {id}");
    }
    // Malformed patterns are BadRequest, not panics.
    assert!(store.rpq("", 0, 1).is_err());
    assert!(store.rpq("x", 0, 1).is_err());
    assert!(store.rpq("99999999999999999999", 0, 1).is_err());
    // In-range queries still work after all that.
    assert!(store.reachable(0, n - 1).unwrap());
}

#[test]
fn ten_thousand_mixed_queries_from_one_store() {
    // The acceptance scenario: one loaded store answers ≥ 10k mixed
    // queries in a single process, through the batched API.
    let store = GraphStore::from_bytes(&good_container()).unwrap();
    let n = store.total_nodes();
    let mut queries = Vec::with_capacity(10_500);
    for i in 0..10_500u64 {
        queries.push(match i % 5 {
            0 => Query::OutNeighbors(i % n),
            1 => Query::InNeighbors((i * 7) % n),
            2 => Query::Reach { s: (i * 3) % n, t: (i * 11) % n },
            3 => Query::Rpq {
                s: (i * 5) % n,
                t: (i * 13) % n,
                pattern: if i % 2 == 0 { "0 1".into() } else { "0* 1*".into() },
            },
            _ => Query::Neighbors((i * 17) % n),
        });
    }
    let answers = store.query_batch(&queries);
    assert_eq!(answers.len(), queries.len());
    assert!(answers.iter().all(|a| a.is_ok()));
    let stats = store.stats();
    assert_eq!(stats.queries_served, 10_500);
    assert_eq!(stats.errors, 0);
    assert!(stats.expansion_cache_hits > 0);
    assert_eq!(stats.rpq_plan_misses, 2, "{stats}");
    // The same 10k through the concurrent engine: identical answers, and
    // the worker fan-out keeps the counters exact.
    let parallel = store.query_batch_parallel(&queries, 8);
    assert_eq!(parallel, answers);
    let stats = store.stats();
    assert_eq!(stats.queries_served, 21_000, "{stats}");
    assert_eq!(stats.errors, 0, "{stats}");
    assert_eq!(stats.parallel_batches, 1, "{stats}");
    assert_eq!(stats.rpq_plan_misses, 2, "plans persist across batches: {stats}");
}
