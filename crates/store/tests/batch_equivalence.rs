//! Property test: the three ways to ask a `GraphStore` something — one-shot
//! [`GraphStore::query`], sequential [`GraphStore::query_batch`], and the
//! fanned-out [`GraphStore::query_batch_parallel`] — must agree on every
//! workload, answer for answer, in input order, error cases included.
//!
//! This is the contract that makes the concurrent engine safe to ship: none
//! of the amortization levers (duplicate memo, shared reach sources, shared
//! RPQ product closures, the locate cache, the sharded expansion cache) may
//! change a single answer.

use proptest::prelude::*;
use std::sync::Arc;

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::Hypergraph;
use grepair_store::{write_container, GraphStore, Query};

/// One store reused across all cases (the store is immutable under queries;
/// building it per case would dominate the test's runtime).
fn shared_store() -> &'static GraphStore {
    static STORE: std::sync::OnceLock<GraphStore> = std::sync::OnceLock::new();
    STORE.get_or_init(|| {
        // A graph with repetition (compresses into nested rules), a hub, a
        // cycle, and a disconnected tail — enough structure that neighbor,
        // reach, and RPQ queries all exercise nontrivial paths.
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        for i in 0..40u32 {
            edges.push((2 * i, 0, 2 * i + 1));
            edges.push((2 * i + 1, 1, 2 * i + 2));
        }
        for spoke in 1..8u32 {
            edges.push((0, 2, spoke * 9));
        }
        edges.push((80, 0, 0)); // close a long cycle
        edges.push((85, 2, 86)); // small disconnected piece
        edges.push((86, 2, 87));
        let (g, _) = Hypergraph::from_simple_edges(88, edges);
        let out = compress(&g, &GRePairConfig::default());
        let enc = grepair_codec::encode(&out.grammar);
        GraphStore::from_bytes(&write_container(&enc.bytes, enc.bit_len)).unwrap()
    })
}

/// Ids straddling the valid range: mostly in `0..n`, some hostile.
fn node_id(n: u64) -> BoxedStrategy<u64> {
    prop_oneof![
        (0..n).boxed(),
        Just(n),
        (n..n + 50).boxed(),
        Just(u64::MAX),
    ]
    .boxed()
}

fn query_strategy(n: u64) -> BoxedStrategy<Query> {
    let patterns = prop_oneof![
        Just("0".to_string()),
        Just("0 1".to_string()),
        Just("0* 1*".to_string()),
        Just("2? 0+".to_string()),
    ];
    prop_oneof![
        node_id(n).prop_map(Query::OutNeighbors).boxed(),
        node_id(n).prop_map(Query::InNeighbors).boxed(),
        node_id(n).prop_map(Query::Neighbors).boxed(),
        (node_id(n), node_id(n))
            .prop_map(|(s, t)| Query::Reach { s, t })
            .boxed(),
        (node_id(n), node_id(n), patterns)
            .prop_map(|(s, t, pattern)| Query::Rpq { s, t, pattern })
            .boxed(),
        Just(Query::Components).boxed(),
        Just(Query::DegreeExtrema).boxed(),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_and_parallel_match_one_shot(
        workload in (1u64..2).prop_flat_map(|_| {
            let n = shared_store().total_nodes();
            proptest::collection::vec(query_strategy(n), 0..120)
        }),
        threads in 2usize..9,
    ) {
        let store = shared_store();
        let sequential = store.query_batch(&workload);
        prop_assert_eq!(sequential.len(), workload.len());
        let parallel = store.query_batch_parallel(&workload, threads);
        prop_assert_eq!(parallel.len(), workload.len());
        for (i, q) in workload.iter().enumerate() {
            let one_shot = store.query(q);
            // Answers agree by value (including Err payloads)…
            prop_assert_eq!(&sequential[i], &one_shot, "batch vs one-shot at {} ({:?})", i, q);
            prop_assert_eq!(&parallel[i], &one_shot, "parallel vs one-shot at {} ({:?})", i, q);
        }
        // …and duplicates inside the sequential batch share one allocation
        // (the clone-free memo path), not just equal contents.
        for (i, q) in workload.iter().enumerate() {
            if let Some(j) = workload[..i].iter().position(|p| p == q) {
                if let (Ok(a), Ok(b)) = (&sequential[j], &sequential[i]) {
                    prop_assert!(
                        Arc::ptr_eq(a, b),
                        "duplicate {:?} at {} and {} must share the answer Arc", q, j, i
                    );
                }
            }
        }
    }
}
