//! Property test for the multi-tenant registry's eviction policy
//! (DESIGN.md §8): random `ATTACH` / `DETACH` / query / `RELOAD` / budget
//! interleavings must preserve the serving invariants —
//!
//! * **budget**: after every operation the resident container bytes fit
//!   the configured budget, except when a single just-touched store alone
//!   exceeds it (evicting the store a request is about to use would force
//!   an immediate reopen, so at most one evictable store may remain
//!   over-budget),
//! * **monotonic generations**: a namespace's generation never decreases
//!   across any interleaving, and a successful reload bumps it by exactly
//!   one — transparent evict/reopen cycles bump nothing,
//! * **byte identity**: a store that was evicted and reopened answers
//!   exactly like a twin loaded from the same container that was never
//!   evicted.

use std::collections::HashMap;
use std::sync::OnceLock;

use proptest::prelude::*;

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::Hypergraph;
use grepair_store::{write_container, GraphStore, Query, StoreRegistry};

/// The tenant pool: four names over three distinct containers.
const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const SIZES: [u32; 3] = [8, 12, 16];

struct Fixture {
    /// Container paths, one per entry of `SIZES`.
    paths: Vec<String>,
    /// Never-evicted twin stores, one per container.
    twins: Vec<GraphStore>,
    /// Container file sizes in bytes.
    bytes: Vec<u64>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir();
        let mut paths = Vec::new();
        let mut twins = Vec::new();
        let mut bytes = Vec::new();
        for (i, &reps) in SIZES.iter().enumerate() {
            let (g, _) = Hypergraph::from_simple_edges(
                (2 * reps + 1) as usize,
                (0..reps).flat_map(|k| [(2 * k, 0u32, 2 * k + 1), (2 * k + 1, 1u32, 2 * k + 2)]),
            );
            let out = compress(&g, &GRePairConfig::default());
            let enc = grepair_codec::encode(&out.grammar);
            let file = write_container(&enc.bytes, enc.bit_len);
            let path = dir.join(format!("grepair_evict_prop_{}_{i}.g2g", std::process::id()));
            std::fs::write(&path, &file).unwrap();
            bytes.push(file.len() as u64);
            twins.push(GraphStore::from_bytes(&file).unwrap());
            paths.push(path.to_string_lossy().into_owned());
        }
        Fixture { paths, twins, bytes }
    })
}

/// One step of the interleaving. Indices are mapped onto `NAMES` /
/// `SIZES`; budgets are in units of the smallest container's size so the
/// interesting regimes (zero, below-one-store, a-few-stores, unlimited)
/// all occur.
#[derive(Debug, Clone)]
enum Op {
    Attach { name: usize, file: usize },
    AttachCold { name: usize, file: usize },
    Detach { name: usize },
    Query { name: usize, node: u64 },
    Reload { name: usize, file: Option<usize> },
    SetBudget { half_stores: Option<u64> },
}

fn op_strategy() -> BoxedStrategy<Op> {
    let name = 0..NAMES.len();
    let file = 0..SIZES.len();
    prop_oneof![
        (name.clone(), file.clone()).prop_map(|(name, file)| Op::Attach { name, file }),
        (name.clone(), file.clone()).prop_map(|(name, file)| Op::AttachCold { name, file }),
        name.clone().prop_map(|name| Op::Detach { name }),
        (name.clone(), 0u64..40).prop_map(|(name, node)| Op::Query { name, node }),
        (name.clone(), prop_oneof![Just(None), file.prop_map(Some)])
            .prop_map(|(name, file)| Op::Reload { name, file }),
        prop_oneof![Just(None), (0u64..7).prop_map(Some)]
            .prop_map(|half_stores| Op::SetBudget { half_stores }),
    ]
    .boxed()
}

/// What the test tracks per registered namespace.
struct Model {
    /// Index into the fixture's containers this namespace currently serves.
    file: usize,
    /// Last generation observed for it.
    generation: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleavings_preserve_eviction_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let fx = fixture();
        let registry = StoreRegistry::new(GraphStore::from_bytes(
            &std::fs::read(&fx.paths[0]).unwrap(),
        ).unwrap());
        let mut model: HashMap<&str, Model> = HashMap::new();
        let mut budget: Option<u64> = None;

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Attach { name, file } => {
                    let name = NAMES[name];
                    let taken = model.contains_key(name);
                    let result = registry.attach(name, &fx.paths[file]);
                    if taken {
                        prop_assert!(result.is_err(), "step {step}: duplicate attach must fail");
                    } else {
                        let store = result.unwrap();
                        prop_assert_eq!(store.generation(), 1);
                        model.insert(name, Model { file, generation: 1 });
                    }
                }
                Op::AttachCold { name, file } => {
                    let name = NAMES[name];
                    let taken = model.contains_key(name);
                    let result = registry.attach_cold(name, &fx.paths[file]);
                    if taken {
                        prop_assert!(result.is_err());
                    } else {
                        result.unwrap();
                        model.insert(name, Model { file, generation: 0 });
                    }
                }
                Op::Detach { name } => {
                    let name = NAMES[name];
                    let known = model.remove(name).is_some();
                    prop_assert_eq!(registry.detach(name).is_ok(), known, "step {step}");
                }
                Op::Query { name, node } => {
                    let name = NAMES[name];
                    match model.get_mut(name) {
                        None => prop_assert!(registry.store(name).is_err()),
                        Some(m) => {
                            // Resolution must succeed whether the store is
                            // resident, cold-attached, or evicted — and the
                            // answer must match the never-evicted twin's.
                            let store = registry.store(name).unwrap();
                            let twin = &fx.twins[m.file];
                            prop_assert_eq!(
                                store.query(&Query::OutNeighbors(node)),
                                twin.query(&Query::OutNeighbors(node)),
                                "step {}: {} diverged from its twin", step, name
                            );
                            prop_assert_eq!(
                                store.query(&Query::Reach { s: 0, t: node }),
                                twin.query(&Query::Reach { s: 0, t: node }),
                            );
                            // First open moves a cold namespace to gen 1;
                            // nothing else about resolution may bump it.
                            let expect = m.generation.max(1);
                            prop_assert_eq!(store.generation(), expect, "step {step}");
                            m.generation = expect;
                        }
                    }
                }
                Op::Reload { name, file } => {
                    let name = NAMES[name];
                    match model.get_mut(name) {
                        None => {
                            prop_assert!(registry.reload(name, file.map(|f| fx.paths[f].as_str())).is_err());
                        }
                        Some(m) => {
                            let path = file.map(|f| fx.paths[f].as_str());
                            let reloaded = registry.reload(name, path).unwrap();
                            // A successful reload bumps by exactly one.
                            prop_assert_eq!(reloaded.generation(), m.generation + 1, "step {step}");
                            m.generation += 1;
                            if let Some(f) = file {
                                m.file = f;
                            }
                        }
                    }
                }
                Op::SetBudget { half_stores } => {
                    budget = half_stores.map(|h| h * fx.bytes[0] / 2);
                    registry.set_budget(budget);
                }
            }

            // --- Invariants after *every* operation ---

            // Generations never decrease (checked against the model, which
            // only ever ratchets).
            for (name, m) in &model {
                prop_assert_eq!(registry.generation_of(name).unwrap(), m.generation,
                    "step {}: generation of {} moved unexpectedly", step, name);
            }

            // Budget: resident bytes fit, or at most one evictable store
            // remains (the just-touched one, which may alone exceed it).
            if let Some(b) = budget {
                let resident = registry.resident_bytes();
                if resident > b {
                    let evictable_resident = registry
                        .list()
                        .into_iter()
                        .filter(|(name, resident, _)| *resident && name != "default")
                        .count();
                    prop_assert!(evictable_resident <= 1,
                        "step {step}: {resident} bytes resident over budget {b} with \
                         {evictable_resident} evictable stores");
                }
            }
        }

        // End state: every registered namespace still answers, identically
        // to its twin, whatever was evicted along the way.
        for (name, m) in &model {
            let store = registry.store(name).unwrap();
            let twin = &fx.twins[m.file];
            prop_assert_eq!(store.total_nodes(), twin.total_nodes());
            for v in 0..twin.total_nodes() {
                prop_assert_eq!(
                    store.query(&Query::OutNeighbors(v)),
                    twin.query(&Query::OutNeighbors(v)),
                    "final check: {} node {}", name, v
                );
            }
        }
    }
}
