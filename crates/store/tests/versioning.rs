//! The versioning oracle (DESIGN.md §12): over random base graphs and random
//! valid patch sequences, every retained version of a [`VersionedStore`] must
//! answer exactly like a from-scratch recompression of that version's
//! materialized graph — on all four backends.
//!
//! k2/lm/hn preserve node ids through encode, so answers compare literally.
//! grepair renumbers nodes during compression; the recompressed store is
//! compared through `grepair_core`'s `node_map` (derived id → input id), which
//! the container format discards but the in-process compressor still exposes.

use std::collections::BTreeSet;
use std::sync::Arc;

use grepair_hypergraph::Hypergraph;
use grepair_store::{codec_for, materialize, EdgePatch, GraphStore, PatchOp, VersionedStore};
use proptest::prelude::*;

/// One edge in store-id space.
type Edge = (u64, u32, u64);

/// A generated `(s, label, t)` triple.
type Triple = (u32, u32, u32);

/// Random case: a node bound, base triples, and patch intents. Intents may
/// name nodes past the base bound (exercising bound growth) and may repeat;
/// the replay below turns each into a valid toggle (ADD if absent, DEL if
/// present) and skips self-loops.
fn arb_case() -> impl Strategy<Value = (u32, Vec<Triple>, Vec<Triple>)> {
    (3u32..10).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0u32..3, 0..n), 0..18),
            proptest::collection::vec((0..n + 2, 0u32..3, 0..n + 2), 1..12),
        )
    })
}

/// Scan a store's full labeled edge set (store-id space).
fn edge_set(store: &GraphStore) -> BTreeSet<Edge> {
    let mut set = BTreeSet::new();
    for v in 0..store.total_nodes() {
        for (label, t) in store.out_edges(v).unwrap() {
            set.insert((v, label, t));
        }
    }
    set
}

/// Replay `intents` as toggles over a fresh base store for `backend`,
/// checking every retained version against (a) the tracked model edge set
/// and (b) a from-scratch recompression of its materialized graph.
fn check_backend(backend: &str, n: u32, base: &[Triple], intents: &[Triple]) {
    let labeled = matches!(backend, "grepair" | "k2");
    let triples: Vec<Triple> = base
        .iter()
        .map(|&(s, l, t)| (s, if labeled { l } else { 0 }, t))
        .collect();
    let g = Hypergraph::from_simple_edges(n as usize, triples).0;
    let file = codec_for(backend).unwrap().encode(&g).unwrap();
    let store = Arc::new(GraphStore::from_bytes(&file).unwrap());

    // The model lives in *store*-id space (read back from the base store, so
    // grepair's renumbering is already folded in), exactly like a client
    // that attaches a container and then patches it.
    let versioned = VersionedStore::new(Arc::clone(&store)).unwrap();
    let mut model = edge_set(&store);
    let mut snapshots = vec![model.clone()];
    for &(s, l, t) in intents {
        let (s, t) = (u64::from(s), u64::from(t));
        let label = if labeled { l } else { 0 };
        if s == t {
            continue; // self-loops are not representable (graph.rs drops them)
        }
        let op = if model.contains(&(s, label, t)) { PatchOp::Del } else { PatchOp::Add };
        let patch = EdgePatch { op, s, label, t };
        let (summary, head) = versioned.apply(patch).unwrap();
        match op {
            PatchOp::Add => assert!(model.insert((s, label, t))),
            PatchOp::Del => assert!(model.remove(&(s, label, t))),
        }
        assert_eq!(summary.version, versioned.head_version(), "{backend}: {patch}");
        assert_eq!(edge_set(&head), model, "{backend}: head after {patch}");
        snapshots.push(model.clone());
    }

    for (v, expected) in snapshots.iter().enumerate() {
        let at = versioned.at(v as u64).unwrap();
        assert_eq!(&edge_set(&at), expected, "{backend} v{v}: overlay vs model");
        check_recompression(backend, v, &at);
    }
}

/// `at` must answer exactly like a fresh compression of its materialized
/// graph: same edges, same reachability, same whole-graph aggregates.
fn check_recompression(backend: &str, v: usize, at: &GraphStore) {
    let materialized = materialize(at).unwrap();
    let bound = at.total_nodes();
    // identity[store id] = fresh-store id (grepair permutes; the rest don't).
    let (fresh, to_store): (GraphStore, Vec<u64>) = if backend == "grepair" {
        let out = grepair_core::compress(&materialized, &grepair_core::GRePairConfig::default());
        let map: Vec<u64> = out.node_map.iter().map(|&orig| u64::from(orig)).collect();
        (GraphStore::from_grammar(out.grammar).unwrap(), map)
    } else {
        let file = codec_for(backend).unwrap().encode(&materialized).unwrap();
        (GraphStore::from_bytes(&file).unwrap(), (0..bound).collect())
    };
    assert_eq!(fresh.total_nodes(), bound, "{backend} v{v}: node bound");
    let mut to_fresh = vec![u64::MAX; bound as usize];
    for (f, &orig) in to_store.iter().enumerate() {
        to_fresh[orig as usize] = f as u64;
    }

    for s in 0..bound {
        let mut want = at.out_edges(s).unwrap();
        want.sort_unstable();
        let mut got: Vec<(u32, u64)> = fresh
            .out_edges(to_fresh[s as usize])
            .unwrap()
            .into_iter()
            .map(|(l, t)| (l, to_store[t as usize]))
            .collect();
        got.sort_unstable();
        assert_eq!(got, want, "{backend} v{v}: out({s})");
        let mut want_in: Vec<u64> = at.in_neighbors(s).unwrap();
        want_in.sort_unstable();
        let mut got_in: Vec<u64> = fresh
            .in_neighbors(to_fresh[s as usize])
            .unwrap()
            .into_iter()
            .map(|t| to_store[t as usize])
            .collect();
        got_in.sort_unstable();
        assert_eq!(got_in, want_in, "{backend} v{v}: in({s})");
    }
    for (s, t) in [(0, bound - 1), (bound - 1, 0), (1 % bound, bound / 2)] {
        assert_eq!(
            at.reachable(s, t).unwrap(),
            fresh.reachable(to_fresh[s as usize], to_fresh[t as usize]).unwrap(),
            "{backend} v{v}: reach {s}->{t}"
        );
        assert_eq!(
            at.rpq("0* 1?", s, t).unwrap(),
            fresh.rpq("0* 1?", to_fresh[s as usize], to_fresh[t as usize]).unwrap(),
            "{backend} v{v}: rpq {s}->{t}"
        );
    }
    assert_eq!(at.components(), fresh.components(), "{backend} v{v}: components");
    assert_eq!(at.degree_extrema(), fresh.degree_extrema(), "{backend} v{v}: degrees");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn labeled_backends_time_travel_matches_recompression(
        (n, base, intents) in arb_case()
    ) {
        for backend in ["grepair", "k2"] {
            check_backend(backend, n, &base, &intents);
        }
    }

    #[test]
    fn unlabeled_backends_time_travel_matches_recompression(
        (n, base, intents) in arb_case()
    ) {
        for backend in ["lm", "hn"] {
            check_backend(backend, n, &base, &intents);
        }
    }
}
