//! Backend parity: for random graphs, every registered backend must give
//! the *same answers* through the one `QueryEngine` surface — the grammar
//! engine (the paper's compressor, with its own independently tested query
//! algorithms) is the oracle.
//!
//! Ids line up by construction: the oracle answers in the grammar's derived
//! numbering, so the baseline backends are encoded from `val(G)` itself —
//! the same concrete graph the oracle serves.

use proptest::prelude::*;

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::Hypergraph;
use grepair_store::{codec_for, GraphStore};

/// A random unlabeled simple digraph: `n` nodes, deduplicated edge list
/// (parallel edges are dropped because the matrix/list baselines cannot
/// represent multiplicity — their one intended lossiness).
fn graph_strategy() -> BoxedStrategy<(usize, Vec<(u32, u32)>)> {
    (2usize..28)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32);
            (Just(n), proptest::collection::vec(edge, 0..70)).prop_map(|(n, mut edges)| {
                edges.sort_unstable();
                edges.dedup();
                (n, edges)
            })
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn all_backends_agree_with_the_grammar_oracle((n, edges) in graph_strategy()) {
        let (g, _) = Hypergraph::from_simple_edges(
            n,
            edges.iter().map(|&(s, t)| (s, 0u32, t)),
        );
        let out = compress(&g, &GRePairConfig::default());
        let oracle = GraphStore::from_grammar(out.grammar.clone()).expect("fresh grammar loads");
        let derived = out.grammar.derive();
        prop_assert_eq!(derived.num_nodes() as u64, oracle.total_nodes());
        let total = oracle.total_nodes();

        for name in ["k2", "lm", "hn"] {
            let codec = codec_for(name).expect("registered");
            let file = codec.encode(&derived).expect("val(G) is unlabeled rank-2");
            let store = GraphStore::from_bytes(&file).expect("own container loads");
            prop_assert_eq!(store.backend(), name);
            prop_assert_eq!(store.total_nodes(), total, "{}", name);

            // Neighborhoods: exact, every node, every direction.
            for v in 0..total {
                prop_assert_eq!(
                    store.out_neighbors(v).unwrap(),
                    oracle.out_neighbors(v).unwrap(),
                    "{} out {}", name, v
                );
                prop_assert_eq!(
                    store.in_neighbors(v).unwrap(),
                    oracle.in_neighbors(v).unwrap(),
                    "{} in {}", name, v
                );
                prop_assert_eq!(
                    store.neighbors(v).unwrap(),
                    oracle.neighbors(v).unwrap(),
                    "{} both {}", name, v
                );
            }

            // Reachability: a deterministic pair sample covering the
            // diagonal, plus every pair on small graphs.
            let pairs: Vec<(u64, u64)> = if total <= 12 {
                (0..total).flat_map(|s| (0..total).map(move |t| (s, t))).collect()
            } else {
                (0..3 * total)
                    .map(|i| ((i * 7) % total, (i * 13 + 5) % total))
                    .chain((0..total).map(|v| (v, v)))
                    .collect()
            };
            for &(s, t) in &pairs {
                prop_assert_eq!(
                    store.reachable(s, t).unwrap(),
                    oracle.reachable(s, t).unwrap(),
                    "{} reach {} {}", name, s, t
                );
            }

            // RPQs over the one label (answered by completely different
            // machinery: grammar product closures vs product-automaton BFS).
            for pattern in ["0", "0 0", "0*", "0+ 0?"] {
                for &(s, t) in pairs.iter().take(40) {
                    prop_assert_eq!(
                        store.rpq(pattern, s, t).unwrap(),
                        oracle.rpq(pattern, s, t).unwrap(),
                        "{} rpq {:?} {} {}", name, pattern, s, t
                    );
                }
            }

            // Aggregates (well-defined here: the edge list is deduplicated,
            // so the baselines' multiplicity loss cannot show).
            prop_assert_eq!(store.components(), oracle.components(), "{}", name);
            prop_assert_eq!(store.degree_extrema(), oracle.degree_extrema(), "{}", name);

            // Hostile ids answer with the same error class everywhere.
            for id in [total, total + 17, u64::MAX] {
                prop_assert!(store.out_neighbors(id).is_err(), "{} {}", name, id);
                prop_assert!(store.reachable(0, id).is_err(), "{} {}", name, id);
            }
        }
    }
}
