//! Chaos suite for the store layer (DESIGN.md §10): seeded random fault
//! schedules over a multi-tenant registry, asserting the degradation
//! contract —
//!
//! * **no panics**: every injected fault surfaces as a `GrepairError`,
//!   never an unwind (the whole test passing *is* the assertion),
//! * **generation ratchet**: a namespace's generation never decreases, no
//!   matter which opens, reloads, or evictions the schedule failed,
//! * **recovery**: once the faults clear, every namespace serves again and
//!   answers **byte-identically** to a twin store that never saw a fault,
//! * **isolation**: a namespace driven into an open circuit breaker does
//!   not affect its healthy neighbors.
//!
//! The whole file is compiled only with the `fail` feature — the default
//! test run (tier 1) never pays for it; CI runs it with `--features fail`.

#![cfg(feature = "fail")]

use std::collections::HashMap;
use std::sync::OnceLock;

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::Hypergraph;
use grepair_store::{
    write_container, GraphStore, GrepairError, Query, StoreRegistry, BREAKER_COOLDOWN,
    BREAKER_THRESHOLD, COLD_OPEN_ATTEMPTS,
};
use grepair_util::fail;

const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
const SIZES: [u32; 3] = [8, 12, 16];

struct Fixture {
    paths: Vec<String>,
    twins: Vec<GraphStore>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir();
        let mut paths = Vec::new();
        let mut twins = Vec::new();
        for (i, &reps) in SIZES.iter().enumerate() {
            let (g, _) = Hypergraph::from_simple_edges(
                (2 * reps + 1) as usize,
                (0..reps).flat_map(|k| [(2 * k, 0u32, 2 * k + 1), (2 * k + 1, 1u32, 2 * k + 2)]),
            );
            let out = compress(&g, &GRePairConfig::default());
            let enc = grepair_codec::encode(&out.grammar);
            let bytes = write_container(&enc.bytes, enc.bit_len);
            let path = dir.join(format!("grepair_chaos_{}_{i}.g2g", std::process::id()));
            std::fs::write(&path, &bytes).expect("write fixture container");
            paths.push(path.display().to_string());
            twins.push(GraphStore::from_bytes(&bytes).expect("twin opens"));
        }
        Fixture { paths, twins }
    })
}

/// xorshift64*: the same deterministic generator family the failpoint
/// layer uses, reseeded per test so schedules are reproducible from the
/// seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A registry with every tenant attached cold and a budget tight enough
/// that touching all three containers keeps evicting somebody.
fn chaotic_registry(budget: Option<u64>) -> StoreRegistry {
    let f = fixture();
    let registry = StoreRegistry::new(
        GraphStore::from_bytes(&std::fs::read(&f.paths[0]).unwrap()).unwrap(),
    );
    for (name, path) in NAMES.iter().zip(&f.paths) {
        registry.attach_cold(name, path).expect("cold attach");
    }
    registry.set_budget(budget);
    registry
}

/// One seeded chaos round: configure a random fault schedule, hammer the
/// registry from several threads, then clear the faults and verify full
/// recovery against the never-faulted twins.
fn run_schedule(seed: u64) {
    let f = fixture();
    fail::clear_all();
    fail::set_seed(seed);
    let mut rng = Rng::new(seed);

    // Random schedule over the store-layer failpoints. `1in(n)` keeps the
    // faults intermittent so both the retry path and the breaker path get
    // exercised across rounds; tiny delays widen race windows.
    let specs = [
        ("store.open.read", ["1in(3):err", "1in(2):err", "nth(2):err", "1in(4):delay(1)+err"]),
        ("registry.cold_open", ["1in(3):err", "first(2):err", "1in(2):delay(1)", "always:delay(1)"]),
        ("reload.swap", ["1in(2):err", "nth(1):err", "1in(3):err", "1in(5):err"]),
        ("registry.evict", ["1in(2):err", "1in(3):delay(1)", "nth(2):err", "1in(4):err"]),
    ];
    for (name, options) in specs {
        if rng.below(4) < 3 {
            let spec = options[rng.below(options.len() as u64) as usize];
            fail::configure(name, spec).expect("valid spec");
        }
    }

    let registry = chaotic_registry(Some(400));
    let threads = 3;
    let ops_per_thread = 60;
    std::thread::scope(|s| {
        for t in 0..threads {
            let registry = &registry;
            let mut rng = Rng::new(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t + 1)));
            s.spawn(move || {
                let mut floor: HashMap<&str, u64> = HashMap::new();
                for _ in 0..ops_per_thread {
                    let ns = NAMES[rng.below(NAMES.len() as u64) as usize];
                    match rng.below(10) {
                        // Reload: success bumps the generation, failure
                        // must leave the old snapshot serving.
                        0 => {
                            let _ = registry.reload(ns, None);
                        }
                        // Health probes interleave with the mutations (a
                        // detach/re-attach op would legitimately reset the
                        // generation and void the ratchet assertion, so
                        // the concurrent schedule sticks to operations
                        // that must preserve it).
                        1 => {
                            let _ = registry.health_of(ns);
                            let _ = registry.aggregate_stats();
                        }
                        // Queries: resolve (maybe a faulty cold open) and
                        // answer; a resolution error is acceptable, a wrong
                        // answer is not.
                        _ => match registry.store(ns) {
                            Err(GrepairError::Io { .. } | GrepairError::Unavailable(_)) => {}
                            Err(other) => panic!("unexpected chaos error: {other}"),
                            Ok(store) => {
                                let node = rng.below(9);
                                let idx = NAMES.iter().position(|n| *n == ns).unwrap();
                                let expect = f.twins[idx].query(&Query::OutNeighbors(node));
                                let got = store.query(&Query::OutNeighbors(node));
                                match (got, expect) {
                                    (Ok(a), Ok(b)) => {
                                        assert_eq!(a.to_string(), b.to_string(), "torn answer")
                                    }
                                    (Err(_), Err(_)) => {}
                                    (a, b) => panic!("answer diverged: {a:?} vs {b:?}"),
                                }
                            }
                        },
                    }
                    // Generation ratchet: never decreases while the
                    // namespace identity is stable.
                    if let Ok(generation) = registry.generation_of(ns) {
                        let last = floor.entry(ns).or_insert(generation);
                        assert!(
                            generation >= *last,
                            "generation ratchet broke: {ns} {generation} < {last}"
                        );
                        *last = generation;
                    }
                }
            });
        }
    });

    // Faults clear ⇒ full recovery: wait out any open breaker, then every
    // namespace must serve byte-identically to its never-faulted twin.
    fail::clear_all();
    std::thread::sleep(BREAKER_COOLDOWN);
    for (idx, name) in NAMES.iter().enumerate() {
        let store = recover(&registry, name);
        for node in 0..u64::from(2 * SIZES[idx] + 1) {
            let got = store.query(&Query::OutNeighbors(node)).map(|a| a.to_string());
            let expect =
                f.twins[idx].query(&Query::OutNeighbors(node)).map(|a| a.to_string());
            assert_eq!(got, expect, "post-chaos divergence at {name}:{node}");
        }
    }
}

/// Resolve a namespace after the faults cleared, riding out at most one
/// half-open probe cycle (the probe itself is fault-free now, so one
/// cooldown is the worst case).
fn recover(registry: &StoreRegistry, name: &str) -> std::sync::Arc<GraphStore> {
    for _ in 0..50 {
        match registry.store(name) {
            Ok(store) => return store,
            Err(_) => std::thread::sleep(BREAKER_COOLDOWN / 5),
        }
    }
    panic!("{name} did not recover after faults cleared");
}

#[test]
fn seeded_fault_schedules_degrade_and_recover() {
    let _faults = fail::scoped();
    for seed in [7, 40_96, 0xdead_beef] {
        run_schedule(seed);
    }
    fail::clear_all();
}

#[test]
fn cold_open_retries_then_breaker_opens_and_half_open_probe_recovers() {
    let _faults = fail::scoped();
    let registry = chaotic_registry(None);

    // Every read fails: one resolution burns all retry attempts.
    fail::configure("registry.cold_open", "always:err").unwrap();
    let mut failures = 0;
    loop {
        match registry.store("alpha") {
            Err(GrepairError::Io { .. }) => failures += 1,
            Err(GrepairError::Unavailable(what)) => {
                assert!(what.contains("circuit open"), "{what}");
                break;
            }
            other => panic!("expected Io then Unavailable, got {other:?}"),
        }
        assert!(failures <= BREAKER_THRESHOLD, "breaker never opened");
    }
    let health = registry.health_of("alpha").unwrap();
    assert!(health.breaker_open);
    assert_eq!(health.breaker_trips, 1);
    // Each failed resolution exhausted the full retry budget.
    assert_eq!(health.open_failures, failures);
    let snapshot = fail::snapshot();
    let point = snapshot.iter().find(|p| p.name == "registry.cold_open").unwrap();
    assert_eq!(point.fired, failures * u64::from(COLD_OPEN_ATTEMPTS));

    // While open, refusals are fast and do not hit the failpoint again.
    let fired_before = point.fired;
    match registry.store("alpha") {
        Err(GrepairError::Unavailable(_)) => {}
        other => panic!("breaker must refuse fast, got {other:?}"),
    }
    let snapshot = fail::snapshot();
    let point = snapshot.iter().find(|p| p.name == "registry.cold_open").unwrap();
    assert_eq!(point.fired, fired_before, "an open breaker must not retry the disk");

    // Isolation: the failpoint is gone but alpha's breaker is still open —
    // beta must serve anyway, with pristine health. (The failpoint itself
    // is process-global, so isolation is the breaker's job, not the
    // fault's.)
    fail::clear_all();
    assert!(registry.store("beta").is_ok());
    assert!(!registry.health_of("beta").unwrap().breaker_open);
    assert_eq!(registry.health_of("beta").unwrap().open_failures, 0);

    // Cooldown elapses: the half-open probe succeeds and the namespace
    // serves again.
    std::thread::sleep(BREAKER_COOLDOWN);
    let store = registry.store("alpha").expect("half-open probe recovers");
    assert!(store.query(&Query::OutNeighbors(0)).is_ok());
    assert!(!registry.health_of("alpha").unwrap().breaker_open);
}

#[test]
fn transient_open_faults_are_retried_invisibly() {
    let _faults = fail::scoped();
    let registry = chaotic_registry(None);
    // First attempt fails, the in-line retry succeeds: the caller never
    // sees an error and the breaker stays closed.
    fail::configure("registry.cold_open", "first(1):err").unwrap();
    let store = registry.store("alpha").expect("retry hides a single transient fault");
    assert!(store.query(&Query::OutNeighbors(0)).is_ok());
    let health = registry.health_of("alpha").unwrap();
    assert!(!health.breaker_open);
    assert_eq!(health.open_failures, 0, "a retried-away fault is not a failure");
    fail::clear_all();
}

#[test]
fn faulted_patches_never_leave_a_torn_version() {
    use grepair_store::EdgePatch;

    let _faults = fail::scoped();
    let registry = chaotic_registry(None);
    // An id-stable tenant to patch (the k2 codec keeps input node ids, so
    // the expected edge set below can be tracked by literal ids).
    let (g, _) = Hypergraph::from_simple_edges(6, (0..5u32).map(|i| (i, 0u32, i + 1)));
    let bytes = grepair_store::codec_for("k2").unwrap().encode(&g).unwrap();
    registry.attach_store("delta", GraphStore::from_bytes(&bytes).unwrap()).unwrap();

    // Half the patch applications abort between validation and the
    // version-log push. The atomicity contract (DESIGN.md §12): either the
    // generation ratchets and a new version appears, or *nothing* changes
    // — never a version whose overlay half-applied.
    fail::set_seed(0xfeed);
    fail::configure("patch.apply", "1in(2):err").unwrap();
    let mut rng = Rng::new(0xabc);
    let mut present: std::collections::BTreeSet<(u64, u32, u64)> =
        (0..5u64).map(|i| (i, 0u32, i + 1)).collect();
    let (mut applied, mut faulted) = (0u64, 0u64);
    for _ in 0..60 {
        let s = rng.below(6);
        let t = (s + 1 + rng.below(5)) % 6; // never a self-loop
        let key = (s, 0u32, t);
        let line = if present.contains(&key) {
            format!("DEL {s} 0 {t}")
        } else {
            format!("ADD {s} 0 {t}")
        };
        let patch = EdgePatch::parse(&line).unwrap();
        let before_generation = registry.generation_of("delta").unwrap();
        let before_versions = registry.versions_of("delta").unwrap();
        match registry.patch("delta", patch) {
            Ok((summary, store)) => {
                applied += 1;
                if !present.remove(&key) {
                    present.insert(key);
                }
                assert_eq!(summary.version, before_versions.last().unwrap().version + 1);
                assert_eq!(store.generation(), before_generation + 1);
            }
            Err(GrepairError::Unavailable(what)) => {
                faulted += 1;
                assert!(what.contains("aborted"), "{what}");
                // Atomicity: the fault consumed nothing — same generation,
                // same retained versions.
                assert_eq!(registry.generation_of("delta").unwrap(), before_generation);
                assert_eq!(registry.versions_of("delta").unwrap(), before_versions);
            }
            Err(other) => panic!("unexpected patch error: {other}"),
        }
        // Whatever happened, the head serves exactly the tracked edge set.
        let head = registry.store("delta").unwrap();
        for v in 0..6u64 {
            let got = head.out_neighbors(v).unwrap();
            let expect: Vec<u64> = present
                .iter()
                .filter(|(from, _, _)| *from == v)
                .map(|&(_, _, to)| to)
                .collect();
            assert_eq!(got, expect, "torn head at node {v}");
        }
    }
    assert!(
        applied > 0 && faulted > 0,
        "schedule must exercise both outcomes: {applied} applied, {faulted} faulted"
    );
    fail::clear_all();
}

#[test]
fn concurrent_cold_open_and_eviction_race_under_injected_delays() {
    let _faults = fail::scoped();
    let f = fixture();
    // Delays stretch both sides of the hazard: the cold open holds its
    // window open while the evictor walks the LRU list.
    fail::configure("registry.cold_open", "always:delay(5)").unwrap();
    fail::configure("registry.evict", "1in(2):delay(5)").unwrap();
    for round in 0..8u64 {
        let registry = chaotic_registry(Some(200)); // tight: every open evicts someone
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let registry = &registry;
                let mut rng = Rng::new((round << 8) | (t + 1));
                s.spawn(move || {
                    for _ in 0..12 {
                        let ns = NAMES[rng.below(NAMES.len() as u64) as usize];
                        if let Ok(store) = registry.store(ns) {
                            let idx = NAMES.iter().position(|n| *n == ns).unwrap();
                            let got = store.query(&Query::OutNeighbors(0)).unwrap();
                            let expect = f.twins[idx].query(&Query::OutNeighbors(0)).unwrap();
                            assert_eq!(got.to_string(), expect.to_string());
                        }
                    }
                });
            }
        });
        // The interleaving settled into a consistent state: every
        // namespace still resolves and serves correct answers.
        for (idx, name) in NAMES.iter().enumerate() {
            let store = recover(&registry, name);
            let got = store.query(&Query::OutNeighbors(1)).unwrap();
            let expect = f.twins[idx].query(&Query::OutNeighbors(1)).unwrap();
            assert_eq!(got.to_string(), expect.to_string(), "{name} torn after race");
        }
    }
    fail::clear_all();
}
