//! Serving-grade graph store: load a compressed graph **once**, answer
//! queries **forever**.
//!
//! The paper's payoff (§V) is querying `val(G)` directly on the grammar;
//! this crate turns that from a one-shot CLI run into a long-lived,
//! crash-proof server building block:
//!
//! * **Fallible load** — [`GraphStore::open`] / [`GraphStore::from_bytes`]
//!   take any byte sequence to either a serving store or a [`GrepairError`];
//!   no hostile container, truncation, or bit flip can panic the process.
//! * **Pluggable backends** — containers are self-describing
//!   (DESIGN.md §7): the [`backend`] module defines [`GraphCodec`] /
//!   [`QueryEngine`], and `from_bytes` dispatches to whichever registered
//!   backend (`grepair`, `k2`, `lm`, `hn`) wrote the file, legacy `.g2g`
//!   images included. Every backend serves the same query plane; the
//!   paper's space/query comparison runs live through one API.
//! * **Eager indexing** — the G-representation navigation index and the
//!   reachability skeletons are built at load time, so per-query latency
//!   never pays the O(|G|) setup.
//! * **Batched serving** — [`GraphStore::query_batch`] amortizes work
//!   across requests: duplicate queries collapse, `reach` queries sharing a
//!   source reuse one forward closure, `rpq` queries sharing a
//!   (pattern, source) pair reuse one product closure, and neighbor
//!   expansion of repeated rule labels is memoized store-wide (with
//!   hit/miss counters in [`StoreStats`]).
//! * **Concurrent serving** — the caches are sharded (`RwLock` per shard,
//!   see `DESIGN.md §5`), answers are `Arc<QueryAnswer>` so every cache or
//!   memo hit is a pointer clone instead of a deep copy, and
//!   [`GraphStore::query_batch_parallel`] partitions one batch across
//!   worker threads that share the per-batch closures. Long-lived servers
//!   plug their own reusable worker pool into the same machinery through
//!   [`GraphStore::query_batch_on`] / [`BatchExecutor`].
//! * **Multi-tenant hosting** — a [`StoreRegistry`] maps namespace names
//!   to hot-reloadable store slots with per-namespace monotonic
//!   generations: a freshly loaded container swaps in while in-flight
//!   queries finish on the old `Arc` (the wire protocol's `RELOAD`
//!   command, DESIGN.md §6/§8). Tenants can be attached cold (opened
//!   lazily on first query) and, under a configured byte budget, the
//!   least-recently-hit resident stores are evicted and reopen
//!   transparently on their next hit. The end-to-end embedded pattern —
//!   registry + batches, no sockets — is `examples/serving.rs` at the
//!   repository root; the socket front end is the `grepair-server` crate.
//! * **Versioned serving** — any namespace accepts edge patches
//!   ([`StoreRegistry::patch`], the wire protocol's `PATCH`): the base
//!   container stays immutable while each applied [`EdgePatch`] becomes a
//!   new monotonic version served through a cheap delta overlay, and
//!   `@vN` addressing ([`StoreRegistry::store_at`]) pins queries to any
//!   retained version while bare queries track the head (DESIGN.md §12).
//!
//! ```
//! use grepair_store::{GraphStore, Query, QueryAnswer, write_container};
//!
//! // Compress any graph, wrap it in the .g2g container, serve it.
//! let (g, _) = grepair_hypergraph::Hypergraph::from_simple_edges(
//!     9,
//!     (0..8u32).map(|i| (i, 0u32, i + 1)),
//! );
//! let out = grepair_core::compress(&g, &grepair_core::GRePairConfig::default());
//! let enc = grepair_codec::encode(&out.grammar);
//! let store = GraphStore::from_bytes(&write_container(&enc.bytes, enc.bit_len)).unwrap();
//!
//! let queries = [
//!     Query::OutNeighbors(0),
//!     Query::Reach { s: 0, t: 8 },
//!     Query::Components,
//! ];
//! let answers = store.query_batch(&queries);
//! assert!(answers.iter().all(|a| a.is_ok()));
//! assert_eq!(answers[1].as_deref(), Ok(&QueryAnswer::Bool(true)));
//!
//! // The same batch fanned out over worker threads: identical answers.
//! assert_eq!(store.query_batch_parallel(&queries, 4), answers);
//!
//! // Hostile input errors instead of crashing the server.
//! assert!(GraphStore::from_bytes(b"G2G1junk").is_err());
//! assert!(store.query(&Query::OutNeighbors(1 << 40)).is_err());
//! ```

#![forbid(unsafe_code)]

pub mod backend;
mod cache;
mod engine;
mod error;
pub mod query;
mod registry;
mod store;
mod version;

pub use backend::{
    backend_names, codec_for, codecs, split_any_container, write_tagged_container, GraphCodec,
    QueryEngine, TAGGED_MAGIC,
};
pub use engine::GrammarEngine;
pub use error::GrepairError;
pub use query::{compile_pattern, error_reply, parse_pattern, parse_query, Query, QueryAnswer};
pub use registry::{
    retry_backoff, valid_namespace, NamespaceHealth, RegistryStats, StoreRegistry,
    BREAKER_COOLDOWN, BREAKER_THRESHOLD, COLD_OPEN_ATTEMPTS, DEFAULT_NAMESPACE,
    MAX_NAMESPACE_LEN,
};
pub use store::{
    parse_container, write_container, BatchExecutor, GraphStore, StoreStats, HEADER_LEN, MAGIC,
};
pub use version::{
    materialize, EdgePatch, PatchOp, VersionSummary, VersionedStore, MAX_VERSIONED_NODES,
};
