//! Versioned graphs: an immutable compressed base plus an append-only
//! patch log of edge add/remove records (DESIGN.md §12).
//!
//! The paper's own evaluation compresses *version graphs* — snapshots of an
//! evolving graph — but a compressed container is frozen at encode time.
//! This module makes a served graph writable without giving up compression:
//! the base container (any registered backend) stays untouched, every edit
//! lives in a cheap in-memory `Overlay`, and each applied patch is a new
//! monotonic version. Queries against a version evaluate as
//! base-engine-answer ⊕ overlay-correction over the labeled edge primitive
//! ([`crate::QueryEngine::out_edges`] / `in_edges`), so the compressed-
//! domain speedups the base engine delivers keep applying to the base
//! structure.
//!
//! Retained versions are addressable forever (until a reload/detach drops
//! the log): `v0` is the base, `vN` is the state after the `N`-th patch,
//! and the wire protocol's `@vN` suffix pins a query to any of them while
//! bare queries track the head (DESIGN.md §12).

use std::collections::VecDeque;
use std::sync::Arc;

use grepair_hypergraph::Hypergraph;
use grepair_queries::QueryError;
use grepair_util::sync::RwLock;
use grepair_util::{FxHashMap, FxHashSet};

use crate::backend::{count_components, degree_extrema_of, QueryEngine};
use crate::query::compile_pattern;
use crate::{GraphStore, GrepairError};

/// Hard cap on a versioned graph's node bound (base nodes and any node a
/// patch introduces). The same guard the baseline decoders apply
/// (`k2::MAX_DECODE_NODES`): whole-graph scans (`components`, `degrees`)
/// and BFS visited sets allocate proportionally to the bound, so a hostile
/// `PATCH ADD 0 0 <huge>` must not be able to demand gigabytes.
pub const MAX_VERSIONED_NODES: u64 = 1 << 24;

/// One edge patch operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchOp {
    /// Insert the `(s, label, t)` triple; errors if it is already present.
    Add,
    /// Remove the `(s, label, t)` triple; errors if it is absent.
    Del,
}

/// One edge add/remove record: the unit of the patch log. Applying one
/// patch creates one new version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgePatch {
    /// The operation.
    pub op: PatchOp,
    /// Source node id.
    pub s: u64,
    /// Edge label.
    pub label: u32,
    /// Target node id.
    pub t: u64,
}

impl std::fmt::Display for EdgePatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let op = match self.op {
            PatchOp::Add => "ADD",
            PatchOp::Del => "DEL",
        };
        write!(f, "{op} {} {} {}", self.s, self.label, self.t)
    }
}

impl EdgePatch {
    /// Parse one patch record: `ADD <s> <label> <t>` or `DEL <s> <label>
    /// <t>` (the wire protocol's `PATCH` operand and the CLI patch-file
    /// line format — one grammar, byte-identical semantics).
    pub fn parse(text: &str) -> Result<Self, GrepairError> {
        let bad = || {
            GrepairError::BadRequest(format!(
                "bad patch {text:?} (want ADD|DEL <s> <label> <t>)"
            ))
        };
        let mut words = text.split_ascii_whitespace();
        let op = match words.next() {
            Some("ADD") => PatchOp::Add,
            Some("DEL") => PatchOp::Del,
            _ => return Err(bad()),
        };
        let mut num = || words.next().and_then(|w| w.parse::<u64>().ok()).ok_or_else(bad);
        let (s, label, t) = (num()?, num()?, num()?);
        if words.next().is_some() {
            return Err(bad());
        }
        let label = u32::try_from(label).map_err(|_| bad())?;
        let patch = Self { op, s, label, t };
        patch.check_ids()?;
        Ok(patch)
    }

    /// Reject node ids at or beyond [`MAX_VERSIONED_NODES`], and
    /// self-loops — the graph model drops those at ingestion
    /// (`Hypergraph::from_simple_edges`), so a patched graph containing
    /// one could never round-trip through recompression.
    fn check_ids(&self) -> Result<(), GrepairError> {
        if self.s == self.t {
            return Err(GrepairError::BadRequest(format!(
                "patch {self}: self-loops are not representable"
            )));
        }
        for id in [self.s, self.t] {
            if id >= MAX_VERSIONED_NODES {
                return Err(GrepairError::BadRequest(format!(
                    "patch node id {id} exceeds the versioning bound (max {})",
                    MAX_VERSIONED_NODES - 1
                )));
            }
        }
        Ok(())
    }
}

/// The cumulative delta of one version against the base: edges added on
/// top of the base and base edges removed, plus the (possibly grown) node
/// bound. Immutable once built — applying a patch clones the head overlay
/// and extends the clone, so every retained version keeps answering from
/// its own frozen state.
#[derive(Debug, Clone, Default)]
pub(crate) struct Overlay {
    /// Added edges by source: `s → sorted (label, t)` pairs.
    added_out: FxHashMap<u64, Vec<(u32, u64)>>,
    /// Added edges by target: `t → sorted (label, s)` pairs.
    added_in: FxHashMap<u64, Vec<(u32, u64)>>,
    /// Removed *base* triples `(s, label, t)` (an added-then-deleted edge
    /// just leaves `added_*` again — the overlay stays minimal).
    removed: FxHashSet<(u64, u32, u64)>,
    /// Node bound of this version: base bound, grown by added endpoints.
    bound: u64,
}

impl Overlay {
    fn empty(bound: u64) -> Self {
        Self { bound, ..Self::default() }
    }

    fn added_len(&self) -> u64 {
        self.added_out.values().map(|row| row.len() as u64).sum()
    }

    fn removed_len(&self) -> u64 {
        self.removed.len() as u64
    }

    fn contains_added(&self, s: u64, label: u32, t: u64) -> bool {
        self.added_out
            .get(&s)
            .is_some_and(|row| row.binary_search(&(label, t)).is_ok())
    }

    fn add(&mut self, s: u64, label: u32, t: u64) {
        if !self.removed.remove(&(s, label, t)) {
            // Not a resurrected base edge: record it as added, keeping both
            // directions sorted for binary search and merge.
            for (map, key, pair) in
                [(&mut self.added_out, s, (label, t)), (&mut self.added_in, t, (label, s))]
            {
                let row = map.entry(key).or_default();
                if let Err(i) = row.binary_search(&pair) {
                    row.insert(i, pair);
                }
            }
        }
        self.bound = self.bound.max(s + 1).max(t + 1);
    }

    fn del(&mut self, s: u64, label: u32, t: u64) {
        let mut was_added = false;
        for (map, key, pair) in
            [(&mut self.added_out, s, (label, t)), (&mut self.added_in, t, (label, s))]
        {
            if let Some(row) = map.get_mut(&key) {
                if let Ok(i) = row.binary_search(&pair) {
                    row.remove(i);
                    was_added = true;
                }
                if row.is_empty() {
                    map.remove(&key);
                }
            }
        }
        if !was_added {
            self.removed.insert((s, label, t));
        }
        // The bound never shrinks: a version's id space is append-only, so
        // `@vN` answers stay stable however later versions evolve.
    }

    /// Corrected labeled out-edges of `v`: base rows minus removed triples
    /// plus added rows. Nodes beyond the base bound have no base rows.
    fn corrected_out(&self, base: &GraphStore, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        let mut rows: Vec<(u32, u64)> = if v < base.total_nodes() {
            base.out_edges(v)?
                .into_iter()
                .filter(|&(label, t)| !self.removed.contains(&(v, label, t)))
                .collect()
        } else {
            Vec::new()
        };
        if let Some(extra) = self.added_out.get(&v) {
            rows.extend(extra.iter().copied());
            rows.sort_unstable();
            rows.dedup();
        }
        Ok(rows)
    }

    /// Corrected labeled in-edges of `v` (pairs are `(label, source)`).
    fn corrected_in(&self, base: &GraphStore, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        let mut rows: Vec<(u32, u64)> = if v < base.total_nodes() {
            base.in_edges(v)?
                .into_iter()
                .filter(|&(label, s)| !self.removed.contains(&(s, label, v)))
                .collect()
        } else {
            Vec::new()
        };
        if let Some(extra) = self.added_in.get(&v) {
            rows.extend(extra.iter().copied());
            rows.sort_unstable();
            rows.dedup();
        }
        Ok(rows)
    }
}

/// The [`QueryEngine`] of one retained version: the immutable base store
/// plus this version's frozen `Overlay`. Every query evaluates as
/// base-answer ⊕ overlay-correction over the labeled edge primitive; the
/// base's own compressed-domain machinery (grammar navigation, k²-tree
/// walks) keeps answering the base part.
#[derive(Debug)]
struct OverlayEngine {
    base: Arc<GraphStore>,
    overlay: Arc<Overlay>,
}

impl OverlayEngine {
    fn check(&self, v: u64) -> Result<(), GrepairError> {
        if v >= self.overlay.bound {
            return Err(QueryError::NodeOutOfRange { id: v, total: self.overlay.bound }.into());
        }
        Ok(())
    }

    /// Directed BFS over the corrected out-edge rows.
    fn bfs_reach(&self, s: u64, t: u64) -> Result<bool, GrepairError> {
        if s == t {
            return Ok(true);
        }
        let mut visited = vec![false; self.overlay.bound as usize];
        // audited: callers checked s < bound == visited.len()
        visited[s as usize] = true;
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for (_, w) in self.overlay.corrected_out(&self.base, v)? {
                if w == t {
                    return Ok(true);
                }
                // audited: corrected rows only hold ids < bound (base rows < base bound, added rows grew bound)
                if !visited[w as usize] {
                    // audited: same bound as the read just above
                    visited[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        Ok(false)
    }

    /// Undirected corrected edge scan as `(u32, u32)` endpoint pairs — the
    /// whole-graph aggregate input. Row errors cannot occur for in-bound
    /// ids (the scan stays in `0..bound`), but the aggregate trait methods
    /// are infallible, so an impossible error degrades to an empty row.
    fn scan_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.overlay.bound).flat_map(move |v| {
            self.overlay
                .corrected_out(&self.base, v)
                .unwrap_or_default()
                .into_iter()
                .map(move |(_, w)| (v as u32, w as u32))
                .collect::<Vec<_>>()
        })
    }
}

impl QueryEngine for OverlayEngine {
    fn backend(&self) -> &'static str {
        // A version serves *as* its base backend: INFO/STATS report what
        // answers the structural part of every query.
        self.base.backend()
    }

    fn total_nodes(&self) -> u64 {
        self.overlay.bound
    }

    fn out_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        self.check(v)?;
        let mut out: Vec<u64> =
            self.overlay.corrected_out(&self.base, v)?.into_iter().map(|(_, w)| w).collect();
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    fn in_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        self.check(v)?;
        let mut out: Vec<u64> =
            self.overlay.corrected_in(&self.base, v)?.into_iter().map(|(_, w)| w).collect();
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    fn out_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        self.check(v)?;
        self.overlay.corrected_out(&self.base, v)
    }

    fn in_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        self.check(v)?;
        self.overlay.corrected_in(&self.base, v)
    }

    fn reachable(&self, s: u64, t: u64) -> Result<bool, GrepairError> {
        self.check(s)?;
        self.check(t)?;
        self.bfs_reach(s, t)
    }

    fn rpq(&self, pattern: &str, s: u64, t: u64) -> Result<bool, GrepairError> {
        self.check(s)?;
        self.check(t)?;
        let nfa = compile_pattern(pattern)?;
        // Product-automaton BFS over the corrected rows. Unlike the
        // adjacency engines' per-label walk, the corrected row already
        // carries its labels, so each popped state steps the NFA by every
        // outgoing edge's label directly.
        let mut visited: FxHashSet<(u64, u32)> = FxHashSet::default();
        let mut queue: VecDeque<(u64, u32)> = VecDeque::new();
        for &q in nfa.start_states() {
            if visited.insert((s, q)) {
                queue.push_back((s, q));
            }
        }
        while let Some((v, q)) = queue.pop_front() {
            if v == t && nfa.is_accepting(q) {
                return Ok(true);
            }
            for (label, w) in self.overlay.corrected_out(&self.base, v)? {
                for q2 in nfa.step(q, label) {
                    if visited.insert((w, q2)) {
                        queue.push_back((w, q2));
                    }
                }
            }
        }
        Ok(false)
    }

    fn components(&self) -> u64 {
        count_components(self.overlay.bound as usize, self.scan_edges())
    }

    fn degree_extrema(&self) -> Option<(u64, u64)> {
        degree_extrema_of(self.overlay.bound as usize, self.scan_edges())
    }
}

/// One retained version's public description — the `VERSIONS` admin reply
/// and the CLI's `store versions` rows render these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionSummary {
    /// The version number (`0` = base).
    pub version: u64,
    /// Cumulative edges added against the base.
    pub added: u64,
    /// Cumulative base edges removed.
    pub removed: u64,
}

impl std::fmt::Display for VersionSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}=+{}-{}", self.version, self.added, self.removed)
    }
}

struct VersionEntry {
    store: Arc<GraphStore>,
    overlay: Arc<Overlay>,
}

impl std::fmt::Debug for VersionEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionEntry").field("overlay", &self.overlay).finish_non_exhaustive()
    }
}

/// An immutable base store plus its append-only patch log. Version `0` is
/// the base itself (served directly — no overlay indirection on an
/// unpatched graph); every applied [`EdgePatch`] yields a new retained
/// version whose [`GraphStore`] answers through an `OverlayEngine`
/// holding the *cumulative* delta, so overlay depth stays 1 no matter how
/// long the log grows.
///
/// Patch application is atomic by construction: the new overlay is built
/// from a clone of the head's, and nothing shared mutates until the final
/// push — a failure anywhere (validation, the `patch.apply` failpoint)
/// leaves every retained version, the head included, exactly as it was.
#[derive(Debug)]
pub struct VersionedStore {
    base: Arc<GraphStore>,
    versions: RwLock<Vec<VersionEntry>>,
}

impl VersionedStore {
    /// Open a version log over `base` (which becomes `v0`).
    pub fn new(base: Arc<GraphStore>) -> Result<Self, GrepairError> {
        if base.total_nodes() > MAX_VERSIONED_NODES {
            return Err(GrepairError::Unsupported(format!(
                "versioning supports at most {MAX_VERSIONED_NODES} nodes, base has {}",
                base.total_nodes()
            )));
        }
        let overlay = Arc::new(Overlay::empty(base.total_nodes()));
        let v0 = VersionEntry { store: Arc::clone(&base), overlay };
        Ok(Self { base, versions: RwLock::new(vec![v0]) })
    }

    /// The base store (`v0`).
    pub fn base(&self) -> Arc<GraphStore> {
        Arc::clone(&self.base)
    }

    /// The head (latest) version's store.
    pub fn head(&self) -> Arc<GraphStore> {
        let versions = self.versions.read();
        match versions.last() {
            Some(entry) => Arc::clone(&entry.store),
            // Unreachable (the log is built with v0), but degrade to the
            // base rather than panic.
            None => Arc::clone(&self.base),
        }
    }

    /// The head version number (`0` until the first patch).
    pub fn head_version(&self) -> u64 {
        (self.versions.read().len() as u64).saturating_sub(1)
    }

    /// The store pinned to version `v`, erroring on unknown versions.
    pub fn at(&self, v: u64) -> Result<Arc<GraphStore>, GrepairError> {
        let versions = self.versions.read();
        versions
            .get(v as usize)
            .map(|entry| Arc::clone(&entry.store))
            .ok_or_else(|| {
                GrepairError::BadRequest(format!(
                    "unknown version v{v} (head is v{})",
                    (versions.len() as u64).saturating_sub(1)
                ))
            })
    }

    /// Every retained version's cumulative delta size, in order.
    pub fn summaries(&self) -> Vec<VersionSummary> {
        self.versions
            .read()
            .iter()
            .enumerate()
            .map(|(i, entry)| VersionSummary {
                version: i as u64,
                added: entry.overlay.added_len(),
                removed: entry.overlay.removed_len(),
            })
            .collect()
    }

    /// Apply one patch against the head, creating and returning the new
    /// version (summary and store). Validation and the `patch.apply`
    /// failpoint (DESIGN.md §10) both run before anything shared mutates:
    /// a failed apply changes nothing — no torn version can exist.
    pub fn apply(
        &self,
        patch: EdgePatch,
    ) -> Result<(VersionSummary, Arc<GraphStore>), GrepairError> {
        patch.check_ids()?;
        let mut versions = self.versions.write();
        let Some(head) = versions.last() else {
            return Err(GrepairError::BadRequest("version log is empty".into()));
        };
        let head_version = (versions.len() as u64) - 1;
        let present = self.present(&head.overlay, patch.s, patch.label, patch.t)?;
        match patch.op {
            PatchOp::Add if present => {
                return Err(GrepairError::BadRequest(format!(
                    "patch {patch}: edge already present at v{head_version}"
                )));
            }
            PatchOp::Del if !present => {
                return Err(GrepairError::BadRequest(format!(
                    "patch {patch}: no such edge at v{head_version}"
                )));
            }
            _ => {}
        }
        let mut overlay = (*head.overlay).clone();
        match patch.op {
            PatchOp::Add => overlay.add(patch.s, patch.label, patch.t),
            PatchOp::Del => overlay.del(patch.s, patch.label, patch.t),
        }
        // Failpoint `patch.apply` (DESIGN.md §10): injects a failure after
        // validation, before the new version becomes visible — the window
        // a crashing patch must not tear. Everything above operated on a
        // private clone, so erroring here leaves the log untouched.
        grepair_util::fail::point("patch.apply").map_err(|error| {
            GrepairError::Unavailable(format!("patch {patch} aborted: {error}"))
        })?;
        let overlay = Arc::new(overlay);
        let engine =
            OverlayEngine { base: Arc::clone(&self.base), overlay: Arc::clone(&overlay) };
        let store = Arc::new(GraphStore::from_engine(Box::new(engine)));
        let summary = VersionSummary {
            version: head_version + 1,
            added: overlay.added_len(),
            removed: overlay.removed_len(),
        };
        versions.push(VersionEntry { store: Arc::clone(&store), overlay });
        Ok((summary, store))
    }

    /// Is `(s, label, t)` an edge of the version `overlay` describes?
    fn present(
        &self,
        overlay: &Overlay,
        s: u64,
        label: u32,
        t: u64,
    ) -> Result<bool, GrepairError> {
        if overlay.removed.contains(&(s, label, t)) {
            return Ok(false);
        }
        if overlay.contains_added(s, label, t) {
            return Ok(true);
        }
        if s < self.base.total_nodes() && t < self.base.total_nodes() {
            return Ok(self.base.out_edges(s)?.binary_search(&(label, t)).is_ok());
        }
        Ok(false)
    }
}

/// Decompress a store into the labeled graph it serves: every corrected
/// `(s, label, t)` triple, over the full node bound. This is the
/// recompression input (`store patch -o`, the bench's crossover
/// measurement) and the byte-identity oracle's ground truth: a version's
/// answers must match a from-scratch compression of this graph.
pub fn materialize(store: &GraphStore) -> Result<Hypergraph, GrepairError> {
    let n = store.total_nodes();
    if n > MAX_VERSIONED_NODES {
        return Err(GrepairError::Unsupported(format!(
            "materialize supports at most {MAX_VERSIONED_NODES} nodes, store has {n}"
        )));
    }
    let mut triples = Vec::new();
    for v in 0..n {
        for (label, t) in store.out_edges(v)? {
            triples.push((v as u32, label, t as u32));
        }
    }
    Ok(Hypergraph::from_simple_edges(n as usize, triples).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::codec_for;
    use grepair_hypergraph::Hypergraph;

    /// A two-label path store under `backend`: `0 -0-> 1 -1-> 2 -0-> 3 …`
    /// for k2/grepair, all label 0 for the unlabeled formats.
    fn base_store(backend: &str, n: u32) -> Arc<GraphStore> {
        let labeled = matches!(backend, "grepair" | "k2");
        let g = Hypergraph::from_simple_edges(
            n as usize,
            (0..n - 1).map(|i| (i, if labeled { i % 2 } else { 0 }, i + 1)),
        )
        .0;
        let file = codec_for(backend).unwrap().encode(&g).unwrap();
        Arc::new(GraphStore::from_bytes(&file).unwrap())
    }

    #[test]
    fn patch_lines_parse_and_render() {
        for (text, op) in [("ADD 3 1 9", PatchOp::Add), ("DEL 3 1 9", PatchOp::Del)] {
            let p = EdgePatch::parse(text).unwrap();
            assert_eq!(p, EdgePatch { op, s: 3, label: 1, t: 9 });
            assert_eq!(p.to_string(), text);
        }
        // Extra whitespace is tolerated; junk is not.
        assert!(EdgePatch::parse("  ADD  1  0  2  ").is_ok());
        for bad in [
            "", "ADD", "ADD 1 2", "ADD 1 2 3 4", "add 1 2 3", "PUT 1 2 3", "ADD x 0 2",
            "ADD 1 0 -2", "ADD 1 99999999999 2", "ADD 3 0 3",
        ] {
            assert!(EdgePatch::parse(bad).is_err(), "{bad:?}");
        }
        // Ids beyond the versioning bound are rejected at parse time.
        let huge = format!("ADD {} 0 1", MAX_VERSIONED_NODES);
        assert!(EdgePatch::parse(&huge).is_err());
    }

    #[test]
    fn patches_version_monotonically_and_retain_history() {
        // k2 base: labeled, no node renumbering.
        let base = base_store("k2", 5); // 0-0->1-1->2-0->3-1->4
        let log = VersionedStore::new(Arc::clone(&base)).unwrap();
        assert_eq!(log.head_version(), 0);
        assert!(Arc::ptr_eq(&log.head(), &base), "v0 serves the base directly");

        // v1: close the cycle 4 -> 0.
        let (v1, s1) = log.apply(EdgePatch::parse("ADD 4 0 0").unwrap()).unwrap();
        assert_eq!(v1, VersionSummary { version: 1, added: 1, removed: 0 });
        assert!(s1.reachable(3, 1).unwrap());
        // v2: cut the middle.
        let (v2, s2) = log.apply(EdgePatch::parse("DEL 2 0 3").unwrap()).unwrap();
        assert_eq!(v2, VersionSummary { version: 2, added: 1, removed: 1 });
        assert!(!s2.reachable(1, 3).unwrap());
        assert!(s2.reachable(4, 1).unwrap(), "the added edge survives");

        // Time travel: every retained version still answers its own state.
        assert!(!log.at(0).unwrap().reachable(3, 1).unwrap());
        assert!(log.at(1).unwrap().reachable(1, 3).unwrap());
        assert!(Arc::ptr_eq(&log.at(2).unwrap(), &log.head()));
        let err = log.at(9).unwrap_err().to_string();
        assert!(err.contains("unknown version v9") && err.contains("head is v2"), "{err}");

        assert_eq!(
            log.summaries(),
            vec![
                VersionSummary { version: 0, added: 0, removed: 0 },
                VersionSummary { version: 1, added: 1, removed: 0 },
                VersionSummary { version: 2, added: 1, removed: 1 },
            ]
        );
        assert_eq!(log.summaries()[2].to_string(), "v2=+1-1");
    }

    #[test]
    fn duplicate_adds_and_missing_dels_error() {
        let log = VersionedStore::new(base_store("k2", 4)).unwrap();
        // Base edge 0-0->1 exists.
        let dup = log.apply(EdgePatch::parse("ADD 0 0 1").unwrap()).unwrap_err();
        assert!(dup.to_string().contains("already present at v0"), "{dup}");
        let gone = log.apply(EdgePatch::parse("DEL 0 1 1").unwrap()).unwrap_err();
        assert!(gone.to_string().contains("no such edge at v0"), "{gone}");
        // Failed applies create no version.
        assert_eq!(log.head_version(), 0);
        // Add then delete the same overlay edge: the overlay returns to
        // empty rather than carrying both records.
        log.apply(EdgePatch::parse("ADD 3 5 0").unwrap()).unwrap();
        log.apply(EdgePatch::parse("DEL 3 5 0").unwrap()).unwrap();
        assert_eq!(
            log.summaries().last().copied(),
            Some(VersionSummary { version: 2, added: 0, removed: 0 })
        );
        // Delete a base edge, then re-add it: removed set returns to empty.
        log.apply(EdgePatch::parse("DEL 0 0 1").unwrap()).unwrap();
        log.apply(EdgePatch::parse("ADD 0 0 1").unwrap()).unwrap();
        assert_eq!(
            log.summaries().last().copied(),
            Some(VersionSummary { version: 4, added: 0, removed: 0 })
        );
    }

    #[test]
    fn patches_grow_the_node_bound() {
        let log = VersionedStore::new(base_store("lm", 3)).unwrap();
        let (_, s) = log.apply(EdgePatch::parse("ADD 2 0 7").unwrap()).unwrap();
        assert_eq!(s.total_nodes(), 8);
        assert_eq!(s.out_neighbors(2).unwrap(), vec![7]);
        assert_eq!(s.in_neighbors(7).unwrap(), vec![2]);
        assert_eq!(s.out_neighbors(5).unwrap(), Vec::<u64>::new(), "fresh nodes are isolated");
        assert!(s.reachable(0, 7).unwrap());
        // v0 keeps the old bound: the new id is out of range there.
        assert!(log.at(0).unwrap().out_neighbors(7).is_err());
        // Components: 3 base nodes chained + 5 new nodes, one edge into 7.
        assert_eq!(s.components(), 5);
        assert_eq!(s.degree_extrema(), Some((0, 2)));
    }

    #[test]
    fn overlay_answers_match_recompressed_materialization() {
        // The oracle in miniature (the proptest in tests/versioning.rs
        // drives it across backends and random patch sequences): a patched
        // store answers exactly like a from-scratch compression of its
        // materialized graph.
        let log = VersionedStore::new(base_store("k2", 6)).unwrap();
        for line in ["DEL 1 1 2", "ADD 0 1 3", "ADD 5 0 1", "DEL 3 1 4", "ADD 2 2 0"] {
            log.apply(EdgePatch::parse(line).unwrap()).unwrap();
        }
        let head = log.head();
        let fresh_file = codec_for("k2").unwrap().encode(&materialize(&head).unwrap()).unwrap();
        let fresh = GraphStore::from_bytes(&fresh_file).unwrap();
        assert_eq!(fresh.total_nodes(), head.total_nodes());
        for v in 0..head.total_nodes() {
            assert_eq!(head.out_neighbors(v).unwrap(), fresh.out_neighbors(v).unwrap(), "{v}");
            assert_eq!(head.in_neighbors(v).unwrap(), fresh.in_neighbors(v).unwrap(), "{v}");
            assert_eq!(head.out_edges(v).unwrap(), fresh.out_edges(v).unwrap(), "{v}");
        }
        for (s, t) in [(0, 5), (5, 0), (2, 2), (0, 3), (3, 0)] {
            assert_eq!(head.reachable(s, t).unwrap(), fresh.reachable(s, t).unwrap(), "{s}->{t}");
            assert_eq!(
                head.rpq("0* 1?", s, t).unwrap(),
                fresh.rpq("0* 1?", s, t).unwrap(),
                "{s}->{t}"
            );
        }
        assert_eq!(head.components(), fresh.components());
        assert_eq!(head.degree_extrema(), fresh.degree_extrema());
    }

    #[test]
    fn self_loop_patches_are_rejected() {
        // The graph model drops self-loops at ingestion, so the overlay
        // refuses to introduce what recompression could not round-trip.
        let log = VersionedStore::new(base_store("hn", 2)).unwrap();
        let err =
            log.apply(EdgePatch { op: PatchOp::Add, s: 1, label: 0, t: 1 }).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
        assert!(EdgePatch::parse("ADD 1 0 1").is_err());
        assert_eq!(log.head_version(), 0);
    }

    #[test]
    fn versioning_refuses_oversized_bases() {
        // A fake engine reporting a huge node count must be refused — the
        // whole-graph scans would otherwise allocate per node.
        #[derive(Debug)]
        struct Huge;
        impl QueryEngine for Huge {
            fn backend(&self) -> &'static str {
                "k2"
            }
            fn total_nodes(&self) -> u64 {
                MAX_VERSIONED_NODES + 1
            }
            fn out_neighbors(&self, _: u64) -> Result<Vec<u64>, GrepairError> {
                Ok(Vec::new())
            }
            fn in_neighbors(&self, _: u64) -> Result<Vec<u64>, GrepairError> {
                Ok(Vec::new())
            }
            fn out_edges(&self, _: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
                Ok(Vec::new())
            }
            fn in_edges(&self, _: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
                Ok(Vec::new())
            }
            fn reachable(&self, _: u64, _: u64) -> Result<bool, GrepairError> {
                Ok(false)
            }
            fn rpq(&self, _: &str, _: u64, _: u64) -> Result<bool, GrepairError> {
                Ok(false)
            }
            fn components(&self) -> u64 {
                0
            }
            fn degree_extrema(&self) -> Option<(u64, u64)> {
                None
            }
        }
        let store = Arc::new(GraphStore::from_engine(Box::new(Huge)));
        let err = VersionedStore::new(store).unwrap_err().to_string();
        assert!(err.contains("at most"), "{err}");
    }
}
