//! A sharded, read-mostly concurrent map — the store's cache substrate.
//!
//! The serving hot path is read-dominated: after a short warm-up almost
//! every rule-expansion and RPQ-plan lookup is a hit. A single
//! `Mutex<HashMap>` serializes those reads across every worker thread; this
//! map instead splits the key space over [`SHARDS`] independent
//! `RwLock<FxHashMap>` shards selected by key hash, so concurrent readers
//! of *different* keys never contend and readers of the *same* key share a
//! read lock. See `DESIGN.md §5` for the shard-count choice.
//!
//! Values are required to be cheap to clone — in practice `Arc<T>` or small
//! `Result`s wrapping `Arc`s — so a hit hands the caller a shared handle
//! without copying the cached data (the clone-free hit path).

use std::hash::{BuildHasher, Hash};

use grepair_util::sync::RwLock;
use grepair_util::{FxBuildHasher, FxHashMap};

/// Number of shards. A small power of two: enough that a handful of worker
/// threads rarely collide (P(two of 8 threads hash to one of 16 shards) is
/// modest, and collisions only contend on a read lock), small enough that
/// iterating all shards for `len` stays trivial.
pub(crate) const SHARDS: usize = 16;

/// A concurrent map sharded by key hash, `RwLock` per shard.
#[derive(Debug)]
pub(crate) struct ShardedMap<K, V> {
    shards: [RwLock<FxHashMap<K, V>>; SHARDS],
    hasher: FxBuildHasher,
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            hasher: FxBuildHasher::default(),
        }
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    fn shard<Q: Hash + ?Sized>(&self, key: &Q) -> &RwLock<FxHashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        // High bits: FxHash mixes with a multiply, so the low bits of small
        // integer keys are the least mixed.
        // audited: the mask keeps the index < SHARDS == shards.len()
        &self.shards[(h >> (usize::BITS - 4)) & (SHARDS - 1)]
    }

    /// Clone of the cached value for `key`, if present (read lock only).
    /// Accepts any borrowed form of the key (`&str` for `String` keys), same
    /// as `HashMap::get`.
    pub(crate) fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard(key).read().get(key).cloned()
    }

    /// Insert `value` unless `key` is already present; either way return the
    /// value that ended up in the map. Losing a compute race is benign: both
    /// threads computed equal values and everyone converges on the winner's.
    pub(crate) fn insert_if_absent(&self, key: K, value: V) -> V {
        self.shard(&key).write().entry(key).or_insert(value).clone()
    }

    /// Total entries across all shards (test/diagnostic use).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_and_insert_round_trip() {
        let m: ShardedMap<u64, Arc<Vec<u64>>> = ShardedMap::default();
        assert!(m.get(&7).is_none());
        let v = m.insert_if_absent(7, Arc::new(vec![1, 2, 3]));
        assert_eq!(*v, vec![1, 2, 3]);
        let hit = m.get(&7).unwrap();
        // A hit is the same allocation, not a copy.
        assert!(Arc::ptr_eq(&hit, &v));
    }

    #[test]
    fn first_insert_wins_races() {
        let m: ShardedMap<u32, Arc<u32>> = ShardedMap::default();
        let a = m.insert_if_absent(1, Arc::new(10));
        let b = m.insert_if_absent(1, Arc::new(20));
        assert_eq!((*a, *b), (10, 10), "second insert observes the first");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn keys_spread_across_shards() {
        let m: ShardedMap<u64, u64> = ShardedMap::default();
        for k in 0..4096u64 {
            m.insert_if_absent(k, k);
        }
        assert_eq!(m.len(), 4096);
        let occupied = m.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert_eq!(occupied, SHARDS, "sequential integer keys must not pile up");
    }

    #[test]
    fn concurrent_mixed_access_is_consistent() {
        let m: Arc<ShardedMap<u64, Arc<u64>>> = Arc::new(ShardedMap::default());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let k = i % 64;
                        let v = m.insert_if_absent(k, Arc::new(k * 2));
                        assert_eq!(*v, k * 2, "thread {t}");
                        assert_eq!(*m.get(&k).unwrap(), k * 2);
                    }
                });
            }
        });
        assert_eq!(m.len(), 64);
    }
}
