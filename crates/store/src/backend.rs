//! Pluggable compression backends: one codec/engine API from container
//! bytes to query answers (DESIGN.md §7).
//!
//! The paper's evaluation is comparative — gRePair against k²-trees and
//! list-based compressors — and its framing treats every compressor as an
//! interchangeable *representation* that must still answer neighborhood and
//! reachability queries. This module is that interface:
//!
//! * [`GraphCodec`] — a named compressor: encode a [`Hypergraph`] into a
//!   self-describing container image, load the container payload into a
//!   live engine, decode it back to a graph.
//! * [`QueryEngine`] — the serving surface every backend answers: the same
//!   fallible `neighbors`/`reach`/`rpq`/`components`/`degrees` queries
//!   [`crate::GraphStore`] has always served for the grammar.
//!
//! Containers are self-describing. A pre-redesign `.g2g` (magic `G2G1`)
//! is detected as the legacy gRePair container and keeps loading — and the
//! gRePair codec still *writes* that format, so its bytes are unchanged.
//! Every other backend writes the tagged layout:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "G2GC"
//! 4       1     container version (2)
//! 5       1     backend tag length L (1..=16)
//! 6       L     backend name, lower-case ASCII
//! 6+L     8     payload bit length, u64 LE
//! 14+L    ...   payload
//! ```
//!
//! [`crate::GraphStore::from_bytes`] dispatches on the tag, so the CLI,
//! the TCP server, hot `RELOAD`, and the batch machinery all serve any
//! registered backend without knowing which one they got.

use std::collections::VecDeque;

use grepair_baselines::{hn, k2 as k2base, lm};
use grepair_hypergraph::{EdgeLabel, Hypergraph, NodeId};
use grepair_k2tree::K2Tree;
use grepair_queries::{Nfa, QueryError};
use grepair_util::FxHashSet;

use crate::query::compile_pattern;
use crate::store::{parse_container, write_container};
use crate::GrepairError;

/// Magic of the tagged (multi-backend) container layout.
pub const TAGGED_MAGIC: &[u8; 4] = b"G2GC";
/// Tagged container format version.
pub const TAGGED_VERSION: u8 = 2;

/// Backend name: the gRePair grammar (the paper's compressor).
pub const GREPAIR: &str = "grepair";
/// Backend name: one k²-tree per edge label (Brisaboa et al. \[21\] /
/// Álvarez-García et al. \[8\]).
pub const K2: &str = "k2";
/// Backend name: list-merging (Grabowski & Bieniecki \[20\]).
pub const LM: &str = "lm";
/// Backend name: virtual-node mining over a k²-tree (Buehrer &
/// Chellapilla \[23\] / Hernández & Navarro \[22\]).
pub const HN: &str = "hn";

/// A live, loaded compressed representation answering queries.
///
/// This is the exact query surface [`crate::GraphStore`] serves — every
/// method fallible, every id checked, no panic on any input (the §2
/// zero-panic policy extends to every backend). Node ids are the dense ids
/// of the graph the container was encoded from; whole-graph aggregates
/// (`components`, `degree_extrema`) are uncached here — the store memoizes
/// them once per loaded container.
pub trait QueryEngine: Send + Sync + std::fmt::Debug {
    /// The backend's registered name (matches its [`GraphCodec::name`]).
    fn backend(&self) -> &'static str;

    /// Number of nodes; valid query ids are `0..total_nodes()`.
    fn total_nodes(&self) -> u64;

    /// Out-neighbors of `v`, sorted ascending, deduplicated.
    fn out_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError>;

    /// In-neighbors of `v`, sorted ascending, deduplicated.
    fn in_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError>;

    /// Labeled out-edges of `v` as `(label, target)` pairs, sorted
    /// ascending, deduplicated. This is the primitive the version overlay
    /// corrects (DESIGN.md §12): an overlay must know *which* labeled edge
    /// a patch removed, so plain neighbor sets are not enough. Backends
    /// whose container drops labels (`lm`, `hn`) report everything as
    /// label `0`, matching their RPQ semantics.
    fn out_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError>;

    /// Labeled in-edges of `v` as `(label, source)` pairs, sorted
    /// ascending, deduplicated.
    fn in_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError>;

    /// Union of both directions, sorted and deduplicated.
    fn neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let mut out = self.out_neighbors(v)?;
        out.extend(self.in_neighbors(v)?);
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Is `t` reachable from `s` along directed edges (reflexively)?
    fn reachable(&self, s: u64, t: u64) -> Result<bool, GrepairError>;

    /// Does some `s → t` path spell a word of the pattern's language?
    fn rpq(&self, pattern: &str, s: u64, t: u64) -> Result<bool, GrepairError>;

    /// Number of connected components (undirected view; isolated nodes
    /// count).
    fn components(&self) -> u64;

    /// `(min, max)` undirected degree, `None` for the empty graph.
    fn degree_extrema(&self) -> Option<(u64, u64)>;
}

/// A named compression backend: [`Hypergraph`] → container bytes → live
/// [`QueryEngine`] (or back to a graph).
///
/// `encode` returns a complete container *file image* (header included),
/// so `GraphStore::from_bytes(codec.encode(&g)?)` round-trips for every
/// registered codec. `load`/`decode` receive the already-split payload —
/// header parsing and backend dispatch are the container layer's job, not
/// the codec's.
pub trait GraphCodec: Sync {
    /// Registered backend name — the container tag, the `--backend` value,
    /// and what `INFO`/`STATS` report.
    fn name(&self) -> &'static str;

    /// Compress `g` into a self-describing container image.
    ///
    /// Errors (rather than panicking) when the graph is outside the
    /// backend's model — hyperedges for any baseline, labeled edges for
    /// the unlabeled-only `lm`/`hn` formats.
    fn encode(&self, g: &Hypergraph) -> Result<Vec<u8>, GrepairError>;

    /// Build a query engine from a container payload.
    fn load(&self, payload: &[u8], bit_len: u64) -> Result<Box<dyn QueryEngine>, GrepairError>;

    /// Decode a container payload back into a graph (the `decompress`
    /// path). Lossy exactly where the format is: the baselines deduplicate
    /// parallel edges, `lm`/`hn` keep only the unlabeled out-structure.
    fn decode(&self, payload: &[u8], bit_len: u64) -> Result<Hypergraph, GrepairError>;
}

/// Every registered backend, in registry order (`grepair` first — it is
/// the default everywhere a backend is not named).
pub fn codecs() -> &'static [&'static dyn GraphCodec] {
    static CODECS: [&'static dyn GraphCodec; 4] = [&GrepairCodec, &K2Codec, &LmCodec, &HnCodec];
    &CODECS
}

/// Registered backend names, in registry order.
pub fn backend_names() -> Vec<&'static str> {
    codecs().iter().map(|c| c.name()).collect()
}

/// Look a codec up by name.
pub fn codec_for(name: &str) -> Option<&'static dyn GraphCodec> {
    codecs().iter().copied().find(|c| c.name() == name)
}

/// The error text for an unregistered backend name — the one message both
/// container dispatch and the CLI's `--backend` flag print, so the two
/// never drift.
pub fn unknown_backend_error(name: &str) -> String {
    format!(
        "unknown backend {name:?} (registered: {})",
        backend_names().join(", ")
    )
}

/// Look a codec up by name, with an error naming every registered backend.
pub fn resolve_codec(name: &str) -> Result<&'static dyn GraphCodec, GrepairError> {
    codec_for(name).ok_or_else(|| GrepairError::Container(unknown_backend_error(name)))
}

/// Wrap a backend payload in the tagged container layout.
///
/// # Panics
/// If `backend` is not 1..=16 bytes of lower-case ASCII — backend names are
/// compile-time constants, so this is a programming error, not input.
pub fn write_tagged_container(backend: &str, bytes: &[u8], bit_len: u64) -> Vec<u8> {
    assert!(
        !backend.is_empty()
            && backend.len() <= 16
            && backend.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()),
        "invalid backend tag {backend:?}"
    );
    let mut file = Vec::with_capacity(bytes.len() + 14 + backend.len());
    file.extend_from_slice(TAGGED_MAGIC);
    file.push(TAGGED_VERSION);
    file.push(backend.len() as u8);
    file.extend_from_slice(backend.as_bytes());
    file.extend_from_slice(&bit_len.to_le_bytes());
    file.extend_from_slice(bytes);
    file
}

/// Split any container image — legacy `.g2g` or tagged — into its backend
/// tag, claimed payload bit length, and payload.
///
/// The legacy-detection rule: a file starting with the old `G2G1` magic is
/// the pre-redesign gRePair container (12-byte header, no tag) and reports
/// backend [`GREPAIR`]; the tag of a tagged file is returned verbatim —
/// callers resolve it via [`resolve_codec`], so an unregistered tag names
/// every registered backend in its error.
pub fn split_any_container(file: &[u8]) -> Result<(&str, u64, &[u8]), GrepairError> {
    if file.starts_with(crate::store::MAGIC) {
        let (bit_len, payload) = parse_container(file)?;
        return Ok((GREPAIR, bit_len, payload));
    }
    if !file.starts_with(TAGGED_MAGIC) {
        // Exactly the legacy errors: too short to say, or a foreign magic.
        return match parse_container(file) {
            Err(e) => Err(e),
            // audited: parse_container rejects any file without the legacy magic, checked just above
            Ok(_) => unreachable!("legacy parse accepted bytes without the legacy magic"),
        };
    }
    let header = |what: &str| GrepairError::Container(format!("tagged container: {what}"));
    if file.len() < 6 {
        return Err(header("truncated header"));
    }
    // audited: file.len() >= 6 was checked just above
    if file[4] != TAGGED_VERSION {
        // audited: file.len() >= 6 was checked just above
        return Err(header(&format!("unsupported version {}", file[4])));
    }
    // audited: file.len() >= 6 was checked just above
    let tag_len = file[5] as usize;
    if !(1..=16).contains(&tag_len) {
        return Err(header(&format!("backend tag length {tag_len} out of range")));
    }
    let end = 6 + tag_len + 8;
    if file.len() < end {
        return Err(header("truncated header"));
    }
    // audited: file.len() >= end == 6 + tag_len + 8 was checked just above
    let tag = std::str::from_utf8(&file[6..6 + tag_len])
        .map_err(|_| header("backend tag is not UTF-8"))?;
    // audited: the slice is exactly end - (6 + tag_len) == 8 bytes, inside the checked end
    let bit_len = u64::from_le_bytes(file[6 + tag_len..end].try_into().expect("8 bytes"));
    // audited: end <= file.len() was checked above
    Ok((tag, bit_len, &file[end..]))
}

// ---------------------------------------------------------------------
// Shared engine plumbing
// ---------------------------------------------------------------------

pub(crate) fn check_id(v: u64, total: u64) -> Result<u32, GrepairError> {
    if v >= total {
        return Err(QueryError::NodeOutOfRange { id: v, total }.into());
    }
    Ok(v as u32)
}

/// Sorted-`u32` rows widened to the `u64` answer shape.
pub(crate) fn widen(mut rows: Vec<NodeId>) -> Vec<u64> {
    rows.sort_unstable();
    rows.dedup();
    rows.into_iter().map(u64::from).collect()
}

/// Directed BFS `s → t` over a neighbor primitive.
pub(crate) fn bfs_reachable(
    n: usize,
    s: u32,
    t: u32,
    mut outs: impl FnMut(u32, &mut Vec<NodeId>),
) -> bool {
    if s == t {
        return true;
    }
    let mut visited = vec![false; n];
    // audited: callers pass s < n (check_id)
    visited[s as usize] = true;
    let mut queue = VecDeque::from([s]);
    let mut buf = Vec::new();
    while let Some(v) = queue.pop_front() {
        buf.clear();
        outs(v, &mut buf);
        for &w in &buf {
            if w == t {
                return true;
            }
            // audited: engine adjacency entries are validated < n at decode time
            if !visited[w as usize] {
                // audited: engine adjacency entries are validated < n at decode time
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    false
}

/// Product-automaton BFS for RPQs over a labeled neighbor primitive:
/// states are `(node, nfa state)`, accepting when the target is reached in
/// an accepting state. Handles the empty word (`s == t` with an accepting
/// start state) for free, matching the grammar engine's semantics.
pub(crate) fn product_rpq(
    nfa: &Nfa,
    s: u32,
    t: u32,
    labels: &[u32],
    mut outs: impl FnMut(u32, u32, &mut Vec<NodeId>),
) -> bool {
    let mut visited: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
    for &q in nfa.start_states() {
        if visited.insert((s, q)) {
            queue.push_back((s, q));
        }
    }
    let mut buf = Vec::new();
    while let Some((v, q)) = queue.pop_front() {
        if v == t && nfa.is_accepting(q) {
            return true;
        }
        for &label in labels {
            let next: Vec<u32> = nfa.step(q, label).collect();
            if next.is_empty() {
                continue;
            }
            buf.clear();
            outs(v, label, &mut buf);
            for &w in &buf {
                for &q2 in &next {
                    if visited.insert((w, q2)) {
                        queue.push_back((w, q2));
                    }
                }
            }
        }
    }
    false
}

/// Component count over an edge iterator (undirected view; isolated nodes
/// count — the same semantics as the grammar's one-pass evaluation).
pub(crate) fn count_components(n: usize, edges: impl Iterator<Item = (u32, u32)>) -> u64 {
    let mut uf = grepair_hypergraph::traverse::UnionFind::new(n);
    for (a, b) in edges {
        uf.union(a, b);
    }
    uf.component_count() as u64
}

/// Degree extrema over an edge iterator (each edge adds one incidence per
/// endpoint, so a self-loop counts twice — matching `val(G)` semantics).
pub(crate) fn degree_extrema_of(
    n: usize,
    edges: impl Iterator<Item = (u32, u32)>,
) -> Option<(u64, u64)> {
    if n == 0 {
        return None;
    }
    let mut deg = vec![0u64; n];
    for (a, b) in edges {
        // audited: engine edge endpoints are validated < n at decode time
        deg[a as usize] += 1;
        // audited: engine edge endpoints are validated < n at decode time
        deg[b as usize] += 1;
    }
    // audited: deg is non-empty: n == 0 returned None above
    let lo = *deg.iter().min().expect("n > 0");
    // audited: deg is non-empty: n == 0 returned None above
    let hi = *deg.iter().max().expect("n > 0");
    Some((lo, hi))
}

/// `(label, node)` pairs sorted ascending and deduplicated — the answer
/// shape of [`QueryEngine::out_edges`]/[`QueryEngine::in_edges`].
pub(crate) fn sort_edge_pairs(mut pairs: Vec<(u32, u64)>) -> Vec<(u32, u64)> {
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

// ---------------------------------------------------------------------
// k² engine: per-label adjacency-matrix trees, queried in place
// ---------------------------------------------------------------------

/// The k²-tree backend's engine: one tree per edge label, neighborhoods
/// answered by row/column walks, reachability and RPQs by BFS over that
/// primitive. Nothing is materialized per node — the trees themselves are
/// the resident representation, exactly as in \[21\].
#[derive(Debug)]
pub struct K2Engine {
    n: u32,
    trees: Vec<(u32, K2Tree)>,
}

impl K2Engine {
    fn out_row(&self, v: u32, buf: &mut Vec<NodeId>) {
        for (_, tree) in &self.trees {
            buf.extend(tree.row(v));
        }
    }

    fn all_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.trees.iter().flat_map(|(_, tree)| tree.iter_ones())
    }
}

impl QueryEngine for K2Engine {
    fn backend(&self) -> &'static str {
        K2
    }

    fn total_nodes(&self) -> u64 {
        self.n as u64
    }

    fn out_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let v = check_id(v, self.total_nodes())?;
        let mut rows = Vec::new();
        self.out_row(v, &mut rows);
        Ok(widen(rows))
    }

    fn in_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let v = check_id(v, self.total_nodes())?;
        let mut cols = Vec::new();
        for (_, tree) in &self.trees {
            cols.extend(tree.col(v));
        }
        Ok(widen(cols))
    }

    fn out_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        let v = check_id(v, self.total_nodes())?;
        let mut pairs = Vec::new();
        for &(label, ref tree) in &self.trees {
            pairs.extend(tree.row(v).into_iter().map(|w| (label, w as u64)));
        }
        Ok(sort_edge_pairs(pairs))
    }

    fn in_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        let v = check_id(v, self.total_nodes())?;
        let mut pairs = Vec::new();
        for &(label, ref tree) in &self.trees {
            pairs.extend(tree.col(v).into_iter().map(|w| (label, w as u64)));
        }
        Ok(sort_edge_pairs(pairs))
    }

    fn reachable(&self, s: u64, t: u64) -> Result<bool, GrepairError> {
        let s = check_id(s, self.total_nodes())?;
        let t = check_id(t, self.total_nodes())?;
        Ok(bfs_reachable(self.n as usize, s, t, |v, buf| self.out_row(v, buf)))
    }

    fn rpq(&self, pattern: &str, s: u64, t: u64) -> Result<bool, GrepairError> {
        let s = check_id(s, self.total_nodes())?;
        let t = check_id(t, self.total_nodes())?;
        let nfa = compile_pattern(pattern)?;
        let labels: Vec<u32> = self.trees.iter().map(|&(l, _)| l).collect();
        Ok(product_rpq(&nfa, s, t, &labels, |v, label, buf| {
            if let Some((_, tree)) = self.trees.iter().find(|&&(l, _)| l == label) {
                buf.extend(tree.row(v));
            }
        }))
    }

    fn components(&self) -> u64 {
        count_components(self.n as usize, self.all_edges())
    }

    fn degree_extrema(&self) -> Option<(u64, u64)> {
        degree_extrema_of(self.n as usize, self.all_edges())
    }
}

// ---------------------------------------------------------------------
// Adjacency engine: decoded out-lists (the lm and hn backends)
// ---------------------------------------------------------------------

/// The engine behind the list-shaped backends (`lm`, `hn`): decoded,
/// unlabeled out-adjacency plus its in-inversion, built once at load.
/// These formats store single-label rank-2 structure only, so every edge
/// is label `0` for RPG purposes.
#[derive(Debug)]
pub struct AdjEngine {
    backend: &'static str,
    out: Vec<Vec<NodeId>>,
    ins: Vec<Vec<NodeId>>,
}

impl AdjEngine {
    /// Build from sorted, deduplicated out-lists.
    fn from_out(backend: &'static str, out: Vec<Vec<NodeId>>) -> Self {
        let mut ins: Vec<Vec<NodeId>> = vec![Vec::new(); out.len()];
        for (v, outs) in out.iter().enumerate() {
            for &w in outs {
                // audited: out-list entries are validated < out.len() == ins.len() at decode time
                ins[w as usize].push(v as NodeId);
            }
        }
        // Ascending v pushes keep every in-list sorted; out-lists arrive
        // sorted+deduplicated from the decoders.
        Self { backend, out, ins }
    }

    fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(v, outs)| outs.iter().map(move |&w| (v as u32, w)))
    }
}

impl QueryEngine for AdjEngine {
    fn backend(&self) -> &'static str {
        self.backend
    }

    fn total_nodes(&self) -> u64 {
        self.out.len() as u64
    }

    fn out_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let v = check_id(v, self.total_nodes())?;
        // audited: check_id just bounded v by total_nodes == out.len()
        Ok(self.out[v as usize].iter().map(|&w| w as u64).collect())
    }

    fn in_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let v = check_id(v, self.total_nodes())?;
        // audited: check_id just bounded v by total_nodes == ins.len()
        Ok(self.ins[v as usize].iter().map(|&w| w as u64).collect())
    }

    fn out_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        // These formats are unlabeled: every edge carries label 0, and the
        // out-lists are already sorted + deduplicated.
        Ok(self.out_neighbors(v)?.into_iter().map(|w| (0, w)).collect())
    }

    fn in_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        Ok(self.in_neighbors(v)?.into_iter().map(|w| (0, w)).collect())
    }

    fn reachable(&self, s: u64, t: u64) -> Result<bool, GrepairError> {
        let s = check_id(s, self.total_nodes())?;
        let t = check_id(t, self.total_nodes())?;
        Ok(bfs_reachable(self.out.len(), s, t, |v, buf| {
            // audited: bfs visits only check_id-validated ids and decoder-validated neighbors
            buf.extend_from_slice(&self.out[v as usize])
        }))
    }

    fn rpq(&self, pattern: &str, s: u64, t: u64) -> Result<bool, GrepairError> {
        let s = check_id(s, self.total_nodes())?;
        let t = check_id(t, self.total_nodes())?;
        let nfa = compile_pattern(pattern)?;
        Ok(product_rpq(&nfa, s, t, &[0], |v, _, buf| {
            // audited: product_rpq visits only check_id-validated ids and decoder-validated neighbors
            buf.extend_from_slice(&self.out[v as usize])
        }))
    }

    fn components(&self) -> u64 {
        count_components(self.out.len(), self.edges())
    }

    fn degree_extrema(&self) -> Option<(u64, u64)> {
        degree_extrema_of(self.out.len(), self.edges())
    }
}

// ---------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------

fn require_simple(g: &Hypergraph, backend: &str) -> Result<(), GrepairError> {
    for e in g.edges() {
        if !matches!(e.label, EdgeLabel::Terminal(_)) || e.att.len() != 2 {
            return Err(GrepairError::Unsupported(format!(
                "the {backend} backend encodes terminal rank-2 edges only"
            )));
        }
    }
    Ok(())
}

fn require_unlabeled(g: &Hypergraph, backend: &str) -> Result<(), GrepairError> {
    for e in g.edges() {
        if e.label != EdgeLabel::Terminal(0) || e.att.len() != 2 {
            return Err(GrepairError::Unsupported(format!(
                "the {backend} backend encodes unlabeled rank-2 edges only"
            )));
        }
    }
    Ok(())
}

fn adjacency_graph(out: &[Vec<NodeId>]) -> Hypergraph {
    let mut g = Hypergraph::with_nodes(out.len());
    for (v, outs) in out.iter().enumerate() {
        for &w in outs {
            g.add_edge(EdgeLabel::Terminal(0), &[v as NodeId, w]);
        }
    }
    g
}

/// The gRePair grammar backend. Writes the *legacy* `.g2g` container —
/// byte-identical to every pre-redesign file — and is recognized by magic
/// rather than tag.
pub struct GrepairCodec;

impl GraphCodec for GrepairCodec {
    fn name(&self) -> &'static str {
        GREPAIR
    }

    fn encode(&self, g: &Hypergraph) -> Result<Vec<u8>, GrepairError> {
        let out = grepair_core::compress(g, &grepair_core::GRePairConfig::default());
        let enc = grepair_codec::encode(&out.grammar);
        Ok(write_container(&enc.bytes, enc.bit_len))
    }

    fn load(&self, payload: &[u8], bit_len: u64) -> Result<Box<dyn QueryEngine>, GrepairError> {
        let grammar = decode_validated_grammar(payload, bit_len)?;
        Ok(Box::new(crate::engine::GrammarEngine::new(std::sync::Arc::new(grammar))))
    }

    fn decode(&self, payload: &[u8], bit_len: u64) -> Result<Hypergraph, GrepairError> {
        Ok(decode_validated_grammar(payload, bit_len)?.derive())
    }
}

/// Decode + revalidate a grammar payload: derivation and index building
/// must never run on structurally invalid rules (the §2 zero-panic policy).
pub(crate) fn decode_validated_grammar(
    payload: &[u8],
    bit_len: u64,
) -> Result<grepair_grammar::Grammar, GrepairError> {
    let grammar = grepair_codec::decode(payload, bit_len)?;
    grammar
        .validate()
        .map_err(|e| GrepairError::Codec(grepair_codec::CodecError::Malformed(e)))?;
    Ok(grammar)
}

/// The plain k²-tree backend (one tree per label).
pub struct K2Codec;

impl GraphCodec for K2Codec {
    fn name(&self) -> &'static str {
        K2
    }

    fn encode(&self, g: &Hypergraph) -> Result<Vec<u8>, GrepairError> {
        require_simple(g, K2)?;
        let enc = k2base::encode(g);
        Ok(write_tagged_container(K2, &enc.bytes, enc.bit_len))
    }

    fn load(&self, payload: &[u8], bit_len: u64) -> Result<Box<dyn QueryEngine>, GrepairError> {
        let (n, trees) = k2base::decode_trees(payload, bit_len)?;
        Ok(Box::new(K2Engine { n, trees }))
    }

    fn decode(&self, payload: &[u8], bit_len: u64) -> Result<Hypergraph, GrepairError> {
        Ok(k2base::decode(payload, bit_len)?)
    }
}

/// The list-merging backend.
pub struct LmCodec;

impl LmCodec {
    fn decode_adj(payload: &[u8], bit_len: u64) -> Result<Vec<Vec<NodeId>>, GrepairError> {
        let encoded = lm::LmEncoded { bytes: payload.to_vec(), bit_len };
        Ok(lm::decode(&encoded)?)
    }
}

impl GraphCodec for LmCodec {
    fn name(&self) -> &'static str {
        LM
    }

    fn encode(&self, g: &Hypergraph) -> Result<Vec<u8>, GrepairError> {
        require_unlabeled(g, LM)?;
        let enc = lm::encode(g);
        Ok(write_tagged_container(LM, &enc.bytes, enc.bit_len))
    }

    fn load(&self, payload: &[u8], bit_len: u64) -> Result<Box<dyn QueryEngine>, GrepairError> {
        Ok(Box::new(AdjEngine::from_out(LM, Self::decode_adj(payload, bit_len)?)))
    }

    fn decode(&self, payload: &[u8], bit_len: u64) -> Result<Hypergraph, GrepairError> {
        Ok(adjacency_graph(&Self::decode_adj(payload, bit_len)?))
    }
}

/// The virtual-node mining backend.
pub struct HnCodec;

impl HnCodec {
    fn decode_adj(payload: &[u8], bit_len: u64) -> Result<Vec<Vec<NodeId>>, GrepairError> {
        let rewired = hn::decode(payload, bit_len)?;
        // Budgeted expansion: hostile virtual-reference chains can make the
        // intermediate memo quadratically larger than the container.
        Ok(hn::try_expand(&rewired, hn::EXPAND_BUDGET)?)
    }
}

impl GraphCodec for HnCodec {
    fn name(&self) -> &'static str {
        HN
    }

    fn encode(&self, g: &Hypergraph) -> Result<Vec<u8>, GrepairError> {
        require_unlabeled(g, HN)?;
        let enc = hn::encode(g, &hn::HnParams::default());
        Ok(write_tagged_container(HN, &enc.bytes, enc.bit_len))
    }

    fn load(&self, payload: &[u8], bit_len: u64) -> Result<Box<dyn QueryEngine>, GrepairError> {
        Ok(Box::new(AdjEngine::from_out(HN, Self::decode_adj(payload, bit_len)?)))
    }

    fn decode(&self, payload: &[u8], bit_len: u64) -> Result<Hypergraph, GrepairError> {
        Ok(adjacency_graph(&Self::decode_adj(payload, bit_len)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> Hypergraph {
        Hypergraph::from_simple_edges(n as usize, (0..n - 1).map(|i| (i, 0u32, i + 1))).0
    }

    #[test]
    fn registry_is_complete_and_ordered() {
        assert_eq!(backend_names(), vec![GREPAIR, K2, LM, HN]);
        for c in codecs() {
            assert!(codec_for(c.name()).is_some());
        }
        assert!(codec_for("zpaq").is_none());
        let Err(err) = resolve_codec("zpaq").map(|c| c.name()) else {
            panic!("unknown backend must not resolve")
        };
        let err = err.to_string();
        assert!(err.contains("zpaq") && err.contains("grepair, k2, lm, hn"), "{err}");
    }

    #[test]
    fn tagged_container_round_trips() {
        for name in [K2, LM, HN] {
            let file = write_tagged_container(name, b"payload", 56);
            let (tag, bit_len, payload) = split_any_container(&file).unwrap();
            assert_eq!(tag, name);
            assert_eq!(bit_len, 56);
            assert_eq!(payload, b"payload");
        }
    }

    #[test]
    fn legacy_magic_is_detected_as_grepair() {
        let file = write_container(b"xyz", 24);
        let (tag, bit_len, payload) = split_any_container(&file).unwrap();
        assert_eq!(tag, GREPAIR);
        assert_eq!(bit_len, 24);
        assert_eq!(payload, b"xyz");
    }

    #[test]
    fn hostile_headers_error_cleanly() {
        for junk in [
            &b""[..],
            b"G2",
            b"G2GC",
            b"G2GC\x02",
            b"G2GC\x03\x02k2aaaaaaaa",   // wrong version
            b"G2GC\x02\x00aaaaaaaa",     // zero tag length
            b"G2GC\x02\x7faaaaaaaa",     // absurd tag length
            b"G2GC\x02\x02k2",           // truncated before bit length
            b"not a container at all..",
        ] {
            assert!(split_any_container(junk).is_err(), "{junk:?}");
        }
        // Non-UTF-8 tag.
        let mut file = write_tagged_container(K2, b"", 0);
        file[6] = 0xFF;
        assert!(split_any_container(&file).is_err());
    }

    #[test]
    fn every_codec_round_trips_a_path_graph() {
        let g = path_graph(30);
        for codec in codecs() {
            let file = codec.encode(&g).unwrap();
            let (tag, bit_len, payload) = split_any_container(&file).unwrap();
            assert_eq!(tag, codec.name());
            let engine = codec.load(payload, bit_len).unwrap();
            assert_eq!(engine.backend(), codec.name());
            assert_eq!(engine.total_nodes(), 30, "{}", codec.name());
            // The grammar backend renumbers nodes (FP order), so locate the
            // path's endpoints structurally instead of by input id.
            let head = (0..30)
                .find(|&v| engine.in_neighbors(v).unwrap().is_empty())
                .expect("path head");
            let tail = (0..30)
                .find(|&v| engine.out_neighbors(v).unwrap().is_empty())
                .expect("path tail");
            assert_ne!(head, tail);
            assert_eq!(engine.out_neighbors(head).unwrap().len(), 1, "{}", codec.name());
            assert_eq!(engine.in_neighbors(tail).unwrap().len(), 1, "{}", codec.name());
            let mid = engine.out_neighbors(head).unwrap()[0];
            assert_eq!(engine.neighbors(mid).unwrap().len(), 2, "{}", codec.name());
            assert!(engine.reachable(head, tail).unwrap(), "{}", codec.name());
            assert!(!engine.reachable(tail, head).unwrap(), "{}", codec.name());
            // The labeled edge primitive agrees with the neighbor views
            // (the whole path is label 0 for every backend).
            assert_eq!(engine.out_edges(head).unwrap(), vec![(0, mid)], "{}", codec.name());
            assert_eq!(engine.in_edges(mid).unwrap(), vec![(0, head)], "{}", codec.name());
            assert!(engine.out_edges(30).is_err(), "{}", codec.name());
            assert!(engine.in_edges(1 << 40).is_err(), "{}", codec.name());
            let two_away = engine.out_neighbors(mid).unwrap()[0];
            assert!(engine.rpq("0 0", head, two_away).unwrap(), "{}", codec.name());
            assert!(engine.rpq("0*", 5, 5).unwrap(), "{}", codec.name());
            assert!(!engine.rpq("0", head, two_away).unwrap(), "{}", codec.name());
            assert_eq!(engine.components(), 1, "{}", codec.name());
            assert_eq!(engine.degree_extrema(), Some((1, 2)), "{}", codec.name());
            // Out-of-range ids are clean errors naming the range.
            let err = engine.out_neighbors(30).unwrap_err().to_string();
            assert!(err.contains("out of range") && err.contains("0..30"), "{err}");
            assert!(engine.reachable(1 << 40, 0).is_err(), "{}", codec.name());
            assert!(engine.rpq("0", 0, u64::MAX).is_err(), "{}", codec.name());
            // And the decode path reproduces the edge set.
            let back = codec.decode(payload, bit_len).unwrap();
            assert_eq!(back.num_edges(), 29, "{}", codec.name());
        }
    }

    #[test]
    fn labeled_graphs_are_rejected_by_unlabeled_backends() {
        let g = Hypergraph::from_simple_edges(4, [(0u32, 1u32, 1u32), (1, 0, 2)]).0;
        for name in [LM, HN] {
            let err = codec_for(name).unwrap().encode(&g).unwrap_err();
            assert!(matches!(err, GrepairError::Unsupported(_)), "{name}: {err}");
        }
        // k2 accepts labels, grepair accepts anything.
        assert!(codec_for(K2).unwrap().encode(&g).is_ok());
        assert!(codec_for(GREPAIR).unwrap().encode(&g).is_ok());
    }

    #[test]
    fn k2_engine_answers_labeled_rpqs() {
        // 0 -a-> 1 -b-> 2, labels a=0, b=1.
        let g = Hypergraph::from_simple_edges(3, [(0u32, 0u32, 1u32), (1, 1, 2)]).0;
        let codec = codec_for(K2).unwrap();
        let file = codec.encode(&g).unwrap();
        let (_, bit_len, payload) = split_any_container(&file).unwrap();
        let engine = codec.load(payload, bit_len).unwrap();
        assert!(engine.rpq("0 1", 0, 2).unwrap());
        assert!(!engine.rpq("1 0", 0, 2).unwrap());
        assert!(engine.rpq("0 1?", 0, 1).unwrap());
        assert!(!engine.rpq("2", 0, 1).unwrap());
        // The labeled edge primitive keeps the per-label structure.
        assert_eq!(engine.out_edges(1).unwrap(), vec![(1, 2)]);
        assert_eq!(engine.in_edges(1).unwrap(), vec![(0, 0)]);
        assert_eq!(engine.out_edges(2).unwrap(), vec![]);
    }
}
