//! The workspace-wide error type for everything between a `.g2g` byte
//! stream and a query answer.
//!
//! Every layer below keeps its own precise error — [`BitError`] for the bit
//! stream, [`CodecError`] for the grammar format, [`QueryError`] for query
//! evaluation — and all of them convert into [`GrepairError`], so a serving
//! path can be written end-to-end with `?` and *no* failure mode left as a
//! panic.

use grepair_baselines::BaselineError;
use grepair_bits::BitError;
use grepair_codec::CodecError;
use grepair_queries::QueryError;

/// Any failure on the load → index → query pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrepairError {
    /// Filesystem-level failure (the path and the OS error text).
    Io {
        /// The file involved.
        path: String,
        /// The underlying error, rendered.
        error: String,
    },
    /// The `.g2g` container is not recognizable (bad magic, short header).
    Container(String),
    /// Bit-stream level decode failure.
    Bits(BitError),
    /// Grammar-format decode failure.
    Codec(CodecError),
    /// A baseline-format decode failure (`k2`/`lm`/`hn` container
    /// payloads).
    Baseline(BaselineError),
    /// A structurally invalid query (out-of-range node, bad path).
    Query(QueryError),
    /// A request that could not be understood (unparsable query line,
    /// malformed RPQ pattern).
    BadRequest(String),
    /// The operation is outside the chosen backend's model (hyperedges for
    /// a matrix format, labels for an unlabeled-only format).
    Unsupported(String),
    /// The target is temporarily refusing work — a namespace whose
    /// circuit breaker is open after repeated open failures
    /// (DESIGN.md §10). Unlike [`GrepairError::Io`] this is a *fast*
    /// failure: nothing was attempted, the caller should retry later.
    Unavailable(String),
}

impl std::fmt::Display for GrepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrepairError::Io { path, error } => write!(f, "{path}: {error}"),
            GrepairError::Container(what) => write!(f, "not a g2g container: {what}"),
            GrepairError::Bits(e) => write!(f, "bit stream: {e}"),
            GrepairError::Codec(e) => write!(f, "{e}"),
            GrepairError::Baseline(e) => write!(f, "baseline stream: {e}"),
            GrepairError::Query(e) => write!(f, "{e}"),
            GrepairError::BadRequest(what) => write!(f, "bad request: {what}"),
            GrepairError::Unsupported(what) => write!(f, "unsupported: {what}"),
            GrepairError::Unavailable(what) => write!(f, "unavailable: {what}"),
        }
    }
}

impl std::error::Error for GrepairError {}

impl From<BitError> for GrepairError {
    fn from(e: BitError) -> Self {
        GrepairError::Bits(e)
    }
}

impl From<CodecError> for GrepairError {
    fn from(e: CodecError) -> Self {
        GrepairError::Codec(e)
    }
}

impl From<QueryError> for GrepairError {
    fn from(e: QueryError) -> Self {
        GrepairError::Query(e)
    }
}

impl From<BaselineError> for GrepairError {
    fn from(e: BaselineError) -> Self {
        GrepairError::Baseline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_the_inner_error() {
        let e: GrepairError = BitError::UnexpectedEnd.into();
        assert_eq!(e, GrepairError::Bits(BitError::UnexpectedEnd));
        let e: GrepairError = CodecError::Malformed("x".into()).into();
        assert!(matches!(e, GrepairError::Codec(_)));
        let e: GrepairError = QueryError::NodeOutOfRange { id: 9, total: 3 }.into();
        assert!(e.to_string().contains("out of range"), "{e}");
        assert!(e.to_string().contains("0..3"), "{e}");
        let e: GrepairError = BaselineError::format("truncated bitmask").into();
        assert!(matches!(e, GrepairError::Baseline(_)));
        assert!(e.to_string().contains("truncated bitmask"), "{e}");
    }
}
