//! Hot store reload: a registry that swaps a freshly loaded [`GraphStore`]
//! in under live traffic.
//!
//! The serving topology (DESIGN.md §6) keeps exactly one mutable cell per
//! process: `RwLock<Arc<GraphStore>>`. Every request path grabs the current
//! `Arc` (a read lock held for one pointer clone — the `ArcSwap` pattern
//! with `std` parts), answers against that snapshot, and drops it when
//! done. A reload builds the *new* store entirely outside the lock, then
//! takes the write lock for one pointer swap, so:
//!
//! * in-flight queries finish on the old store's `Arc` — nothing is
//!   dropped or torn mid-answer; the old store is freed when its last
//!   in-flight holder finishes,
//! * a failed reload (missing file, hostile bytes) leaves the registry
//!   untouched — the old generation keeps serving,
//! * the generation counter is monotonic, and each store is stamped with
//!   its generation ([`StoreStats::generation`]) so `STATS`/`INFO` admin
//!   replies let clients observe the swap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::{GraphStore, GrepairError, StoreStats};

/// A shared, hot-reloadable slot holding the currently serving
/// [`GraphStore`].
///
/// ```
/// use grepair_store::{GraphStore, StoreRegistry};
/// # use grepair_core::{compress, GRePairConfig};
/// # use grepair_store::write_container;
/// # fn store() -> GraphStore {
/// #     let (g, _) = grepair_hypergraph::Hypergraph::from_simple_edges(
/// #         5, (0..4u32).map(|i| (i, 0u32, i + 1)));
/// #     let out = compress(&g, &GRePairConfig::default());
/// #     let enc = grepair_codec::encode(&out.grammar);
/// #     GraphStore::from_bytes(&write_container(&enc.bytes, enc.bit_len)).unwrap()
/// # }
/// let registry = StoreRegistry::new(store());
/// let before = registry.current();          // a long-lived query holds this
/// assert_eq!(registry.generation(), 1);
///
/// registry.swap(store());                   // hot reload
/// assert_eq!(registry.generation(), 2);
/// assert_eq!(before.generation(), 1);       // the old snapshot still answers
/// assert!(before.reachable(0, 4).unwrap());
/// ```
#[derive(Debug)]
pub struct StoreRegistry {
    current: RwLock<Arc<GraphStore>>,
    /// Generation of the store in `current`. Monotonic; only `swap` bumps
    /// it, under the write lock, so it never disagrees with the slot.
    generation: AtomicU64,
}

impl StoreRegistry {
    /// Register the first store as generation 1.
    pub fn new(store: GraphStore) -> Self {
        store.set_generation(1);
        Self {
            current: RwLock::new(Arc::new(store)),
            generation: AtomicU64::new(1),
        }
    }

    /// Load the first store from a `.g2g` file.
    pub fn open(path: &str) -> Result<Self, GrepairError> {
        Ok(Self::new(GraphStore::open(path)?))
    }

    /// The currently serving store. Callers keep the returned `Arc` for the
    /// duration of one request/batch: a concurrent [`StoreRegistry::swap`]
    /// never invalidates it, it only stops *new* calls from seeing it.
    pub fn current(&self) -> Arc<GraphStore> {
        self.current.read().expect("store registry poisoned").clone()
    }

    /// Generation of the currently serving store (starts at 1, bumped by
    /// every successful swap/reload).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Statistics of the currently serving store (includes its generation).
    pub fn stats(&self) -> StoreStats {
        self.current().stats()
    }

    /// Swap `store` in as the new serving store and return its generation.
    /// The old store keeps serving whoever already holds its `Arc`.
    pub fn swap(&self, store: GraphStore) -> u64 {
        self.swap_arc(store).generation()
    }

    /// [`StoreRegistry::swap`], handing back the swapped-in `Arc` — callers
    /// reporting on the reload must read generation *and* node count from
    /// this snapshot, not from [`StoreRegistry::current`], or a concurrent
    /// swap can pair one generation with another generation's data.
    fn swap_arc(&self, store: GraphStore) -> Arc<GraphStore> {
        let mut slot = self.current.write().expect("store registry poisoned");
        // Bump under the write lock: concurrent swaps serialize here, so
        // each store gets a distinct, strictly increasing generation.
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        store.set_generation(generation);
        let store = Arc::new(store);
        *slot = Arc::clone(&store);
        self.generation.store(generation, Ordering::Relaxed);
        store
    }

    /// Load a fresh `.g2g` and swap it in: the `RELOAD` admin command and
    /// the `SIGHUP` path. The decode and index build run *before* the write
    /// lock is taken, so serving never stalls on a reload, and any error
    /// (missing file, hostile bytes) leaves the current store untouched.
    /// Returns the swapped-in store (its [`GraphStore::generation`] is the
    /// new registry generation).
    pub fn reload_from(&self, path: &str) -> Result<Arc<GraphStore>, GrepairError> {
        let store = GraphStore::open(path)?;
        Ok(self.swap_arc(store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_container, Query};
    use grepair_core::{compress, GRePairConfig};
    use grepair_hypergraph::Hypergraph;

    fn g2g(reps: u32) -> Vec<u8> {
        let (g, _) = Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        );
        let out = compress(&g, &GRePairConfig::default());
        let enc = grepair_codec::encode(&out.grammar);
        write_container(&enc.bytes, enc.bit_len)
    }

    fn store(reps: u32) -> GraphStore {
        GraphStore::from_bytes(&g2g(reps)).unwrap()
    }

    #[test]
    fn swap_bumps_generation_and_keeps_old_snapshots_alive() {
        let registry = StoreRegistry::new(store(8));
        assert_eq!(registry.generation(), 1);
        assert_eq!(registry.stats().generation, 1);
        let old = registry.current();
        assert_eq!(old.total_nodes(), 17);

        assert_eq!(registry.swap(store(16)), 2);
        assert_eq!(registry.generation(), 2);
        let new = registry.current();
        assert_eq!(new.total_nodes(), 33);
        assert_eq!(new.generation(), 2);

        // The pre-swap snapshot is unaffected: still generation 1, still
        // answering, with its own counters.
        assert_eq!(old.generation(), 1);
        assert!(old.query(&Query::OutNeighbors(0)).is_ok());
        assert_eq!(old.stats().generation, 1);
    }

    #[test]
    fn failed_reload_leaves_the_current_store_serving() {
        let registry = StoreRegistry::new(store(4));
        let before = registry.generation();
        assert!(registry.reload_from("/nonexistent/grepair.g2g").is_err());
        assert_eq!(registry.generation(), before);
        assert!(registry.current().reachable(0, 8).unwrap());
    }

    #[test]
    fn reload_from_a_real_file_swaps() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("grepair_registry_{}.g2g", std::process::id()));
        std::fs::write(&path, g2g(12)).unwrap();
        let registry = StoreRegistry::new(store(4));
        let reloaded = registry.reload_from(path.to_str().unwrap()).unwrap();
        assert_eq!(reloaded.generation(), 2);
        assert_eq!(reloaded.total_nodes(), 25);
        assert!(Arc::ptr_eq(&reloaded, &registry.current()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_readers_survive_swaps() {
        let registry = StoreRegistry::new(store(8));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let registry = &registry;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let snapshot = registry.current();
                        // Node 0 exists in every generation served here.
                        let answer = snapshot.query(&Query::OutNeighbors(i % 17));
                        assert!(answer.is_ok(), "{answer:?}");
                    }
                });
            }
            let registry = &registry;
            scope.spawn(move || {
                for _ in 0..20 {
                    registry.swap(store(8));
                }
            });
        });
        assert_eq!(registry.generation(), 21);
        assert_eq!(registry.current().generation(), 21);
    }
}
