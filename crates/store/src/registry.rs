//! Multi-tenant store hosting: a namespace-addressed registry that serves
//! many compressed graphs from one process, under a memory budget.
//!
//! The paper's grammar containers are small (hundreds of bytes for graphs
//! whose k²-tree images are kilobytes — `BENCH_store.json`), so the serving
//! topology (DESIGN.md §8) holds a *map* of namespaces, each one mutable
//! slot: `RwLock<Option<Arc<GraphStore>>>`. Every request path resolves its
//! namespace, grabs the current `Arc` (a read lock held for one pointer
//! clone), answers against that snapshot, and drops it when done. The
//! single-store registry of earlier revisions is the degenerate case: one
//! namespace, [`DEFAULT_NAMESPACE`], which the back-compat methods
//! ([`StoreRegistry::current`], [`StoreRegistry::swap`], …) address.
//!
//! Three properties carry over from the single-slot design, now per
//! namespace:
//!
//! * in-flight queries finish on the old store's `Arc` — a reload (or an
//!   eviction) never tears an answer mid-flight,
//! * a failed reload/attach (missing file, hostile bytes) leaves every
//!   registered namespace untouched — no partial registration,
//! * each namespace's generation counter is strictly monotonic, and each
//!   resident store is stamped with it ([`StoreStats::generation`]) so
//!   `STATS`/`INFO` admin replies let clients observe a swap.
//!
//! Two properties are new:
//!
//! * **lazy open** — a namespace may be registered *cold* (path only, no
//!   decode); the first query against it pays the open, every later one
//!   rides the resident `Arc`,
//! * **LRU eviction** — with a byte budget configured
//!   ([`StoreRegistry::set_budget`], the server's `--memory-budget` flag),
//!   loading a store evicts the least-recently-hit resident containers
//!   until the total resident container bytes fit again. An evicted
//!   namespace stays registered; its next hit reopens it transparently
//!   (counted in [`RegistryStats::cold_opens`]) with its generation
//!   *unchanged* — eviction is a cache decision, not a data change, so an
//!   evicted-then-reopened store answers byte-identically to a twin that
//!   was never evicted.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use grepair_util::sync::{Mutex, RwLock};

use crate::version::{EdgePatch, VersionSummary, VersionedStore};
use crate::{GraphStore, GrepairError, StoreStats};

/// Open attempts one cold resolution makes before giving up: the initial
/// try plus retries with exponential backoff ([`retry_backoff`]). Only
/// I/O-shaped failures are retried — a container that *decodes* wrong is
/// deterministically bad and fails fast (DESIGN.md §10).
pub const COLD_OPEN_ATTEMPTS: u32 = 3;

/// Consecutive failed cold opens after which a namespace's circuit
/// breaker trips: further resolutions answer a fast
/// [`GrepairError::Unavailable`] instead of hammering the disk.
pub const BREAKER_THRESHOLD: u64 = 3;

/// How long an open breaker refuses before letting one half-open probe
/// attempt a real open again. A failed probe re-arms the cooldown; a
/// successful one closes the breaker.
pub const BREAKER_COOLDOWN: Duration = Duration::from_millis(250);

/// Backoff slept before cold-open retry `retry` (1-based): exponential
/// from 1 ms, capped at 50 ms — bounded so a failing tenant delays its own
/// requests by at most ~100 ms total, never a healthy tenant's.
pub fn retry_backoff(retry: u32) -> Duration {
    let ms = 1u64 << retry.saturating_sub(1).min(10);
    Duration::from_millis(ms.min(50))
}

/// The namespace addressed by the back-compat single-store methods and by
/// wire-protocol sessions that never issued `USE` (DESIGN.md §8).
pub const DEFAULT_NAMESPACE: &str = "default";

/// Longest accepted namespace name, in bytes.
pub const MAX_NAMESPACE_LEN: usize = 64;

/// Is `name` a syntactically valid namespace name? Accepted: 1 to
/// [`MAX_NAMESPACE_LEN`] ASCII characters from `[A-Za-z0-9._-]`. The
/// session layer uses the same predicate to decide whether the text before
/// a `:` in a query line is a namespace prefix (DESIGN.md §8).
pub fn valid_namespace(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAMESPACE_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

fn bad_name(name: &str) -> GrepairError {
    GrepairError::BadRequest(format!(
        "invalid namespace {name:?} (want 1..={MAX_NAMESPACE_LEN} chars of [A-Za-z0-9._-])"
    ))
}

fn unknown(name: &str) -> GrepairError {
    GrepairError::BadRequest(format!("unknown namespace {name:?}"))
}

/// One registered tenant: a name bound to a container path and a slot that
/// is either resident (`Some(store)`) or cold (`None` — never opened, or
/// evicted). In-memory tenants (registered from a built [`GraphStore`],
/// no path) can never be cold: there is nothing to reopen them from, so
/// they are exempt from eviction — and they report 0 resident bytes anyway.
#[derive(Debug)]
struct Namespace {
    /// Where to (re)open this tenant from. `None` for in-memory tenants.
    path: Mutex<Option<String>>,
    /// The serving store, if resident.
    slot: RwLock<Option<Arc<GraphStore>>>,
    /// Strictly monotonic per namespace: `0` until the first open, `1`
    /// after it, `+1` per reload. Evict/reopen does *not* bump it.
    generation: AtomicU64,
    /// Registry clock value of the most recent hit — the LRU key.
    last_hit: AtomicU64,
    /// The patch log, once the namespace has been `PATCH`ed (DESIGN.md
    /// §12). `None` until the first patch; a reload or explicit swap
    /// rebases the namespace and drops the log.
    versions: Mutex<Option<Arc<VersionedStore>>>,
    /// Operational health: failure counters and the circuit breaker.
    health: Health,
}

/// Per-namespace failure bookkeeping (DESIGN.md §10). All fields are
/// updated under the namespace's slot write lock (opens) or without any
/// lock (reload failure counts), and read lock-free by `STATS`/`INFO`.
#[derive(Debug, Default)]
struct Health {
    /// Consecutive failed open attempts — the breaker input; reset to 0
    /// by any successful open.
    consecutive_open_failures: AtomicU64,
    /// Monotonic count of failed cold opens (retries exhausted).
    open_failures: AtomicU64,
    /// Monotonic count of failed reloads.
    reload_failures: AtomicU64,
    /// Millis on the registry clock before which the breaker refuses.
    open_until_ms: AtomicU64,
    /// Monotonic count of breaker trips (including failed half-open
    /// probes re-arming the cooldown).
    trips: AtomicU64,
    /// The most recent open/reload failure, rendered.
    last_error: Mutex<Option<String>>,
}

/// One namespace's operational health, as surfaced by `STATS <name>` and
/// [`StoreRegistry::health_of`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceHealth {
    /// Failed cold opens (monotonic; retries already exhausted).
    pub open_failures: u64,
    /// Failed reloads (monotonic) — a wedged `RELOAD`/`SIGHUP` shows here.
    pub reload_failures: u64,
    /// Is the circuit breaker currently refusing resolutions?
    pub breaker_open: bool,
    /// Breaker trips so far (monotonic).
    pub breaker_trips: u64,
    /// The most recent open/reload failure, rendered; `None` if the
    /// namespace never failed.
    pub last_error: Option<String>,
}

impl Namespace {
    fn resident(&self) -> Option<Arc<GraphStore>> {
        self.slot.read().clone()
    }

    /// Record a failed open/reload and trip the breaker once the
    /// consecutive-failure threshold is reached (or re-arm it on a failed
    /// half-open probe). Returns the new consecutive count.
    fn note_failure(&self, now_ms: u64, reload: bool, error: &GrepairError) -> u64 {
        let counter =
            if reload { &self.health.reload_failures } else { &self.health.open_failures };
        counter.fetch_add(1, Ordering::Relaxed);
        *self.health.last_error.lock() = Some(error.to_string());
        let consecutive =
            self.health.consecutive_open_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if consecutive >= BREAKER_THRESHOLD {
            self.health.trips.fetch_add(1, Ordering::Relaxed);
            self.health
                .open_until_ms
                .store(now_ms + BREAKER_COOLDOWN.as_millis() as u64, Ordering::Relaxed);
        }
        consecutive
    }

    /// A successful open closes the breaker and clears the streak (the
    /// monotonic counters and last error stay, for operators).
    fn note_success(&self) {
        self.health.consecutive_open_failures.store(0, Ordering::Relaxed);
        self.health.open_until_ms.store(0, Ordering::Relaxed);
    }

    /// Is the breaker refusing at `now_ms`? Once the cooldown elapses the
    /// breaker is half-open: this returns `false` and the caller's next
    /// real open attempt is the probe.
    fn breaker_refuses(&self, now_ms: u64) -> bool {
        self.health.consecutive_open_failures.load(Ordering::Relaxed) >= BREAKER_THRESHOLD
            && now_ms < self.health.open_until_ms.load(Ordering::Relaxed)
    }

    fn health(&self, now_ms: u64) -> NamespaceHealth {
        NamespaceHealth {
            open_failures: self.health.open_failures.load(Ordering::Relaxed),
            reload_failures: self.health.reload_failures.load(Ordering::Relaxed),
            breaker_open: self.breaker_refuses(now_ms),
            breaker_trips: self.health.trips.load(Ordering::Relaxed),
            last_error: self.health.last_error.lock().clone(),
        }
    }
}

/// Aggregate registry statistics — the wire protocol's bare `STATS` reply
/// (per-namespace stats are `STATS <name>`; DESIGN.md §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Registered namespaces (resident + cold).
    pub namespaces: u64,
    /// Namespaces currently holding a store.
    pub resident: u64,
    /// Total container bytes held resident.
    pub resident_bytes: u64,
    /// The configured eviction budget, if any.
    pub budget: Option<u64>,
    /// Stores evicted to fit the budget, ever.
    pub evictions: u64,
    /// Stores opened lazily — a cold-registered namespace's first query,
    /// or an evicted namespace reopening on a hit.
    pub cold_opens: u64,
    /// Queries served, summed over resident stores plus every store this
    /// registry retired (evicted, detached, or replaced by a reload).
    pub queries: u64,
    /// Query errors, summed the same way.
    pub errors: u64,
    /// Circuit-breaker trips across every namespace, detached ones
    /// included (DESIGN.md §10).
    pub breaker_trips: u64,
}

impl std::fmt::Display for RegistryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "namespaces={} resident={} resident_bytes={} budget={} evictions={} cold_opens={} queries={} errors={} breaker_trips={}",
            self.namespaces,
            self.resident,
            self.resident_bytes,
            match self.budget {
                Some(b) => b.to_string(),
                None => "none".into(),
            },
            self.evictions,
            self.cold_opens,
            self.queries,
            self.errors,
            self.breaker_trips,
        )
    }
}

/// Sentinel for "no budget configured" in the atomic budget cell.
const NO_BUDGET: u64 = u64::MAX;

/// A shared, hot-reloadable map of named [`GraphStore`]s with lazy open
/// and LRU eviction under a byte budget.
///
/// ```
/// use grepair_store::{GraphStore, StoreRegistry};
/// # use grepair_core::{compress, GRePairConfig};
/// # use grepair_store::write_container;
/// # fn store() -> GraphStore {
/// #     let (g, _) = grepair_hypergraph::Hypergraph::from_simple_edges(
/// #         5, (0..4u32).map(|i| (i, 0u32, i + 1)));
/// #     let out = compress(&g, &GRePairConfig::default());
/// #     let enc = grepair_codec::encode(&out.grammar);
/// #     GraphStore::from_bytes(&write_container(&enc.bytes, enc.bit_len)).unwrap()
/// # }
/// let registry = StoreRegistry::new(store());   // the "default" namespace
/// let before = registry.current();              // a long-lived query holds this
/// assert_eq!(registry.generation(), 1);
///
/// registry.swap(store());                       // hot reload
/// assert_eq!(registry.generation(), 2);
/// assert_eq!(before.generation(), 1);           // the old snapshot still answers
/// assert!(before.reachable(0, 4).unwrap());
///
/// // More tenants ride the same registry under their own names.
/// registry.attach_store("tenant-b", store());
/// assert_eq!(registry.list().len(), 2);
/// assert!(registry.store("tenant-b").unwrap().reachable(0, 4).unwrap());
/// ```
#[derive(Debug)]
pub struct StoreRegistry {
    namespaces: RwLock<BTreeMap<String, Arc<Namespace>>>,
    /// Budget in container bytes; [`NO_BUDGET`] = unlimited.
    budget: AtomicU64,
    /// Logical LRU clock: every namespace hit takes the next tick.
    clock: AtomicU64,
    /// Serializes budget enforcement so two concurrent loads cannot each
    /// decide the *other* one's eviction is unnecessary.
    budget_lock: Mutex<()>,
    evictions: AtomicU64,
    cold_opens: AtomicU64,
    /// Counters folded in from retired stores (evicted / detached /
    /// replaced), so the aggregate stays monotonic across their lifetimes.
    retired_queries: AtomicU64,
    retired_errors: AtomicU64,
    /// Breaker trips folded in from detached namespaces, so the aggregate
    /// stays monotonic across their lifetimes.
    retired_trips: AtomicU64,
    /// Epoch for the breaker's millisecond clock ([`Self::now_ms`]).
    started: Instant,
}

impl StoreRegistry {
    fn empty() -> Self {
        Self {
            namespaces: RwLock::new(BTreeMap::new()),
            budget: AtomicU64::new(NO_BUDGET),
            clock: AtomicU64::new(0),
            budget_lock: Mutex::new(()),
            evictions: AtomicU64::new(0),
            cold_opens: AtomicU64::new(0),
            retired_queries: AtomicU64::new(0),
            retired_errors: AtomicU64::new(0),
            retired_trips: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Milliseconds since this registry was created — the breaker's clock.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Register `store` as the [`DEFAULT_NAMESPACE`], generation 1. The
    /// store is in-memory (no path recorded): bare `RELOAD` needs an
    /// explicit path and the namespace is exempt from eviction.
    pub fn new(store: GraphStore) -> Self {
        let registry = Self::empty();
        registry
            .attach_store(DEFAULT_NAMESPACE, store)
            // audited: a fresh empty registry cannot refuse its first namespace
            .expect("empty registry accepts the default namespace");
        registry
    }

    /// Load the first store from a container file into the
    /// [`DEFAULT_NAMESPACE`]. The path is recorded, so the namespace is
    /// evictable (it can be reopened) and bare `RELOAD` re-reads it.
    pub fn open(path: &str) -> Result<Self, GrepairError> {
        let registry = Self::empty();
        registry.attach(DEFAULT_NAMESPACE, path)?;
        Ok(registry)
    }

    // ------------------------------------------------------------------
    // Namespace management
    // ------------------------------------------------------------------

    fn lookup(&self, name: &str) -> Option<Arc<Namespace>> {
        self.namespaces
            .read()
            .get(name)
            .cloned()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Fold a retiring store's counters into the registry aggregate.
    fn retire(&self, store: &GraphStore) {
        let stats = store.stats();
        self.retired_queries.fetch_add(stats.queries_served, Ordering::Relaxed);
        self.retired_errors.fetch_add(stats.errors, Ordering::Relaxed);
    }

    /// Insert a fresh namespace, failing (with nothing registered) if the
    /// name is taken or invalid.
    fn register(
        &self,
        name: &str,
        path: Option<String>,
        store: Option<Arc<GraphStore>>,
    ) -> Result<(), GrepairError> {
        if !valid_namespace(name) {
            return Err(bad_name(name));
        }
        let generation = store.is_some() as u64;
        let ns = Arc::new(Namespace {
            path: Mutex::new(path),
            slot: RwLock::new(store),
            generation: AtomicU64::new(generation),
            last_hit: AtomicU64::new(self.tick()),
            versions: Mutex::new(None),
            health: Health::default(),
        });
        let mut map = self.namespaces.write();
        if map.contains_key(name) {
            return Err(GrepairError::BadRequest(format!(
                "namespace {name:?} already attached"
            )));
        }
        map.insert(name.to_string(), ns);
        Ok(())
    }

    /// Attach a container file under `name`, opening it eagerly — the wire
    /// protocol's `ATTACH` (DESIGN.md §8). The open runs *before* anything
    /// is registered, so a hostile or missing container leaves the registry
    /// exactly as it was: no partial registration, every existing namespace
    /// keeps serving. The new store is generation 1 for its namespace.
    pub fn attach(&self, name: &str, path: &str) -> Result<Arc<GraphStore>, GrepairError> {
        if !valid_namespace(name) {
            return Err(bad_name(name));
        }
        let store = GraphStore::open(path)?;
        store.set_generation(1);
        let store = Arc::new(store);
        self.register(name, Some(path.to_string()), Some(Arc::clone(&store)))?;
        self.enforce_budget(name);
        Ok(store)
    }

    /// Attach a container file under `name` *cold*: the path is recorded
    /// but nothing is read or decoded until the first query resolves the
    /// namespace (the server's `--attach NAME=PATH` flag). The namespace
    /// reports generation 0 until that first open.
    pub fn attach_cold(&self, name: &str, path: &str) -> Result<(), GrepairError> {
        self.register(name, Some(path.to_string()), None)
    }

    /// Register an already-built store under `name` (generation 1). No
    /// path is recorded: the namespace cannot be evicted or bare-`RELOAD`ed.
    pub fn attach_store(&self, name: &str, store: GraphStore) -> Result<Arc<GraphStore>, GrepairError> {
        store.set_generation(1);
        let store = Arc::new(store);
        self.register(name, None, Some(Arc::clone(&store)))?;
        Ok(store)
    }

    /// Remove `name` from the registry. In-flight queries holding the
    /// store's `Arc` finish normally; new resolutions error.
    pub fn detach(&self, name: &str) -> Result<(), GrepairError> {
        let removed = self
            .namespaces
            .write()
            .remove(name)
            .ok_or_else(|| unknown(name))?;
        if let Some(store) = removed.resident() {
            self.retire(&store);
        }
        self.retired_trips
            .fetch_add(removed.health.trips.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(())
    }

    /// Is `name` registered?
    pub fn contains(&self, name: &str) -> bool {
        self.namespaces
            .read()
            .contains_key(name)
    }

    /// Registered namespaces in sorted order: `(name, resident, generation)`.
    pub fn list(&self) -> Vec<(String, bool, u64)> {
        self.namespaces
            .read()
            .iter()
            .map(|(name, ns)| {
                (
                    name.clone(),
                    ns.resident().is_some(),
                    ns.generation.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Resolution (the per-request hot path)
    // ------------------------------------------------------------------

    /// Resolve `name` to its serving store, opening it if cold (first
    /// query after a cold attach, or after an eviction — both counted in
    /// [`RegistryStats::cold_opens`]). Callers keep the returned `Arc` for
    /// one request/batch: a concurrent reload, eviction, or detach never
    /// invalidates it, it only stops *new* resolutions from seeing it.
    pub fn store(&self, name: &str) -> Result<Arc<GraphStore>, GrepairError> {
        let ns = self.lookup(name).ok_or_else(|| unknown(name))?;
        ns.last_hit.store(self.tick(), Ordering::Relaxed);
        if let Some(store) = ns.resident() {
            return Ok(store);
        }
        // Cold: open under the slot's write lock so concurrent hits pay
        // one decode between them, not one each.
        let mut slot = ns.slot.write();
        if let Some(store) = slot.clone() {
            return Ok(store);
        }
        let path = ns
            .path
            .lock()
            .clone()
            .ok_or_else(|| {
                // Unreachable by construction (pathless tenants are
                // registered resident and never evicted) — but the serving
                // path must degrade to an error line, never a panic.
                GrepairError::BadRequest(format!("namespace {name:?} has no container path"))
            })?;
        // Circuit breaker (DESIGN.md §10): a namespace whose container
        // keeps failing answers fast instead of hammering the disk on
        // every request. Once the cooldown elapses, the breaker is
        // half-open and this request becomes the probe. Checked under the
        // slot write lock, so a concurrent successful probe is never
        // overruled.
        if ns.breaker_refuses(self.now_ms()) {
            let health = ns.health(self.now_ms());
            return Err(GrepairError::Unavailable(format!(
                "namespace {name:?} circuit open after {} failed opens (last: {})",
                health.open_failures,
                health.last_error.as_deref().unwrap_or("unknown"),
            )));
        }
        let store = match self.open_with_retry(&path) {
            Ok(store) => store,
            Err(e) => {
                ns.note_failure(self.now_ms(), false, &e);
                return Err(e);
            }
        };
        ns.note_success();
        // First-ever open moves the namespace to generation 1; a reopen
        // after eviction re-stamps the *unchanged* generation, so clients
        // cannot tell an evicted store from one that stayed resident.
        let generation = match ns.generation.load(Ordering::Relaxed) {
            0 => {
                ns.generation.store(1, Ordering::Relaxed);
                1
            }
            g => g,
        };
        store.set_generation(generation);
        let store = Arc::new(store);
        *slot = Some(Arc::clone(&store));
        drop(slot);
        self.cold_opens.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget(name);
        Ok(store)
    }

    /// Open `path` with up to [`COLD_OPEN_ATTEMPTS`] tries, sleeping
    /// [`retry_backoff`] between them. Only I/O failures retry — a
    /// container that decodes wrong fails the same way every time. The
    /// `registry.cold_open` failpoint fires per attempt, so `first(N):err`
    /// exercises the retry path end to end (DESIGN.md §10).
    fn open_with_retry(&self, path: &str) -> Result<GraphStore, GrepairError> {
        let mut retry = 0u32;
        loop {
            let attempt = grepair_util::fail::point("registry.cold_open")
                .map_err(|error| GrepairError::Io { path: path.into(), error })
                .and_then(|()| GraphStore::open(path));
            match attempt {
                Ok(store) => return Ok(store),
                Err(GrepairError::Io { .. }) if retry + 1 < COLD_OPEN_ATTEMPTS => {
                    retry += 1;
                    std::thread::sleep(retry_backoff(retry));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One namespace's failure counters and breaker state.
    pub fn health_of(&self, name: &str) -> Result<NamespaceHealth, GrepairError> {
        let ns = self.lookup(name).ok_or_else(|| unknown(name))?;
        Ok(ns.health(self.now_ms()))
    }

    // ------------------------------------------------------------------
    // Reload
    // ------------------------------------------------------------------

    /// Swap `store` in under `name` and hand back the swapped-in `Arc` —
    /// callers reporting on the reload must read generation *and* node
    /// count from this snapshot, not from a fresh resolution, or a
    /// concurrent swap can pair one generation with another generation's
    /// data. The old store keeps serving whoever already holds its `Arc`.
    fn swap_in(&self, name: &str, store: GraphStore) -> Result<Arc<GraphStore>, GrepairError> {
        let ns = self.lookup(name).ok_or_else(|| unknown(name))?;
        // Swapping in fresh container data rebases the namespace: retained
        // versions described deltas over the *old* base, so the patch log
        // is dropped and the namespace starts over at v0 (DESIGN.md §12).
        *ns.versions.lock() = None;
        Ok(self.swap_in_arc(name, &ns, Arc::new(store)))
    }

    /// The swap itself, shared by reloads (via [`Self::swap_in`], which
    /// rebases first) and patch application (which must *keep* its log).
    fn swap_in_arc(&self, name: &str, ns: &Namespace, store: Arc<GraphStore>) -> Arc<GraphStore> {
        ns.last_hit.store(self.tick(), Ordering::Relaxed);
        let mut slot = ns.slot.write();
        // Bump under the write lock: concurrent swaps serialize here, so
        // each store gets a distinct, strictly increasing generation.
        let generation = ns.generation.fetch_add(1, Ordering::Relaxed) + 1;
        store.set_generation(generation);
        if let Some(old) = slot.replace(Arc::clone(&store)) {
            self.retire(&old);
        }
        drop(slot);
        self.enforce_budget(name);
        store
    }

    /// Load a fresh container and swap it in under `name`: the `RELOAD`
    /// admin command and the `SIGHUP` path. With `path` = `None` the
    /// namespace's recorded path is re-read; with an explicit path the
    /// recorded path is updated too, so later evict/reopen cycles follow
    /// the reload. The decode and index build run *before* any lock is
    /// taken, so serving never stalls on a reload, and any error (missing
    /// file, hostile bytes) leaves the current store untouched.
    pub fn reload(&self, name: &str, path: Option<&str>) -> Result<Arc<GraphStore>, GrepairError> {
        let ns = self.lookup(name).ok_or_else(|| unknown(name))?;
        let target = match path {
            Some(p) => p.to_string(),
            None => ns
                .path
                .lock()
                .clone()
                .ok_or_else(|| {
                    GrepairError::BadRequest(format!(
                        "namespace {name:?} has no container path to reload from"
                    ))
                })?,
        };
        // Failpoint `reload.swap` injects a failure between the successful
        // decode and the swap — the window a real deploy can die in. A
        // failed reload (either way) leaves the old store serving and is
        // recorded per namespace, so `STATS <name>`/`INFO` surface a
        // wedged reload instead of it only reaching stderr.
        let opened = GraphStore::open(&target).and_then(|store| {
            grepair_util::fail::point("reload.swap")
                .map_err(|error| GrepairError::Io { path: target.clone(), error })
                .map(|()| store)
        });
        let store = match opened {
            Ok(store) => store,
            Err(e) => {
                ns.note_failure(self.now_ms(), true, &e);
                return Err(e);
            }
        };
        ns.note_success();
        if path.is_some() {
            *ns.path.lock() = Some(target);
        }
        self.swap_in(name, store)
    }

    // ------------------------------------------------------------------
    // Versioning (DESIGN.md §12)
    // ------------------------------------------------------------------

    /// Apply one edge patch to `name`, creating a new retained version and
    /// swapping its store in as the namespace's head — the wire protocol's
    /// `PATCH ADD|DEL`. The first patch opens the namespace's patch log
    /// with the currently resolved store as `v0`. Returns the new version's
    /// summary and the swapped-in head, whose generation the caller must
    /// report from (not from a fresh resolution — same rule as reloads).
    ///
    /// Patch application reuses the reload machinery: the head swaps in
    /// under the slot write lock with a generation bump, in-flight queries
    /// finish on the old head's `Arc`, and a failed patch (validation, the
    /// `patch.apply` failpoint) changes nothing — no version is created,
    /// no generation is consumed.
    pub fn patch(
        &self,
        name: &str,
        patch: EdgePatch,
    ) -> Result<(VersionSummary, Arc<GraphStore>), GrepairError> {
        // Resolve first: a cold namespace opens here, and that resident
        // store becomes the log's base.
        let base = self.store(name)?;
        let ns = self.lookup(name).ok_or_else(|| unknown(name))?;
        // Hold the log lock across apply + swap so concurrent patches
        // serialize and the slot's head can never lag the log's head.
        // (Lock order is versions → slot, same as `swap_in`; eviction
        // takes only slot locks, and a patched head reports 0 resident
        // bytes so budget enforcement never turns back on this namespace.)
        let mut log_slot = ns.versions.lock();
        let log = match &*log_slot {
            Some(log) => Arc::clone(log),
            None => {
                let log = Arc::new(VersionedStore::new(base)?);
                *log_slot = Some(Arc::clone(&log));
                log
            }
        };
        let (summary, store) = log.apply(patch)?;
        let swapped = self.swap_in_arc(name, &ns, store);
        drop(log_slot);
        Ok((summary, swapped))
    }

    /// Resolve `name` pinned to retained version `version` — the wire
    /// protocol's `@vN` addressing. Version 0 of a never-patched namespace
    /// is the namespace's store itself; any other version exists only in
    /// the patch log.
    pub fn store_at(&self, name: &str, version: u64) -> Result<Arc<GraphStore>, GrepairError> {
        let ns = self.lookup(name).ok_or_else(|| unknown(name))?;
        let log = ns.versions.lock().clone();
        match log {
            Some(log) => {
                ns.last_hit.store(self.tick(), Ordering::Relaxed);
                log.at(version)
            }
            None if version == 0 => self.store(name),
            None => Err(GrepairError::BadRequest(format!(
                "unknown version v{version} (head is v0)"
            ))),
        }
    }

    /// Every retained version of `name` — the `VERSIONS` admin reply. A
    /// never-patched namespace reports the single version `v0=+0-0`.
    pub fn versions_of(&self, name: &str) -> Result<Vec<VersionSummary>, GrepairError> {
        let ns = self.lookup(name).ok_or_else(|| unknown(name))?;
        let log = ns.versions.lock().clone();
        Ok(match log {
            Some(log) => log.summaries(),
            None => vec![VersionSummary { version: 0, added: 0, removed: 0 }],
        })
    }

    // ------------------------------------------------------------------
    // Budget and eviction
    // ------------------------------------------------------------------

    /// Configure the eviction budget (container bytes; `None` = unlimited)
    /// and immediately enforce it.
    pub fn set_budget(&self, budget: Option<u64>) {
        self.budget.store(budget.unwrap_or(NO_BUDGET), Ordering::Relaxed);
        self.enforce_budget("");
    }

    /// The configured eviction budget, if any.
    pub fn budget(&self) -> Option<u64> {
        match self.budget.load(Ordering::Relaxed) {
            NO_BUDGET => None,
            b => Some(b),
        }
    }

    /// Total container bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.namespaces
            .read()
            .values()
            .filter_map(|ns| ns.resident())
            .map(|s| s.resident_bytes())
            .sum()
    }

    /// Number of namespaces currently holding a store.
    pub fn resident_count(&self) -> usize {
        self.namespaces
            .read()
            .values()
            .filter(|ns| ns.resident().is_some())
            .count()
    }

    /// Evict least-recently-hit resident stores until the resident
    /// container bytes fit the budget again. `keep` (the namespace whose
    /// load triggered enforcement) is evicted only as the last resort —
    /// when it alone exceeds the budget, it stays resident anyway, because
    /// evicting the store a request is about to use would just force an
    /// immediate reopen. Pathless (in-memory) tenants are never evicted;
    /// they report 0 bytes and cannot be reopened. The same 0-byte rule
    /// protects patched heads (overlay stores, DESIGN.md §12): reopening
    /// from the container path would silently rewind the namespace to its
    /// base, and evicting a 0-byte resident frees nothing anyway.
    fn enforce_budget(&self, keep: &str) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == NO_BUDGET {
            return;
        }
        let _serialize = self.budget_lock.lock();
        loop {
            // Snapshot resident sizes and LRU ranks outside any slot lock.
            let map = self.namespaces.read();
            let mut total = 0u64;
            let mut victim: Option<(u64, Arc<Namespace>)> = None;
            for (name, ns) in map.iter() {
                let Some(store) = ns.resident() else { continue };
                total += store.resident_bytes();
                let evictable =
                    name != keep && ns.path.lock().is_some() && store.resident_bytes() > 0;
                if evictable {
                    let hit = ns.last_hit.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|(best, _)| hit < *best) {
                        victim = Some((hit, Arc::clone(ns)));
                    }
                }
            }
            drop(map);
            if total <= budget {
                return;
            }
            let Some((_, ns)) = victim else { return };
            // Failpoint `registry.evict` widens the eviction-vs-cold-open
            // race window deterministically (delay); an `err` spec skips
            // this round — eviction itself cannot fail.
            if grepair_util::fail::point("registry.evict").is_err() {
                return;
            }
            let evicted = ns.slot.write().take();
            if let Some(store) = evicted {
                self.retire(&store);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Aggregate statistics across every namespace — the bare `STATS`
    /// reply. Query/error totals include retired stores (evicted,
    /// detached, or replaced by a reload), so they are monotonic.
    pub fn aggregate_stats(&self) -> RegistryStats {
        let map = self.namespaces.read();
        let mut resident = 0u64;
        let mut resident_bytes = 0u64;
        let mut queries = self.retired_queries.load(Ordering::Relaxed);
        let mut errors = self.retired_errors.load(Ordering::Relaxed);
        let mut breaker_trips = self.retired_trips.load(Ordering::Relaxed);
        let namespaces = map.len() as u64;
        for ns in map.values() {
            breaker_trips += ns.health.trips.load(Ordering::Relaxed);
            if let Some(store) = ns.resident() {
                let stats = store.stats();
                resident += 1;
                resident_bytes += stats.resident_bytes;
                queries += stats.queries_served;
                errors += stats.errors;
            }
        }
        RegistryStats {
            namespaces,
            resident,
            resident_bytes,
            budget: self.budget(),
            evictions: self.evictions.load(Ordering::Relaxed),
            cold_opens: self.cold_opens.load(Ordering::Relaxed),
            queries,
            errors,
            breaker_trips,
        }
    }

    /// Statistics of one namespace's serving store (resolving it if cold).
    pub fn stats_for(&self, name: &str) -> Result<StoreStats, GrepairError> {
        Ok(self.store(name)?.stats())
    }

    /// Generation of `name`: 0 for a cold-attached namespace that was
    /// never opened, 1 from the first open, `+1` per reload.
    pub fn generation_of(&self, name: &str) -> Result<u64, GrepairError> {
        let ns = self.lookup(name).ok_or_else(|| unknown(name))?;
        Ok(ns.generation.load(Ordering::Relaxed))
    }

    // ------------------------------------------------------------------
    // Back-compat single-store surface (the default namespace)
    // ------------------------------------------------------------------

    /// The [`DEFAULT_NAMESPACE`]'s serving store. Panics if that namespace
    /// was detached — embedders using the single-store surface never do.
    pub fn current(&self) -> Arc<GraphStore> {
        self.store(DEFAULT_NAMESPACE)
            // audited: documented single-store-surface contract: the default namespace stays attached
            .expect("default namespace must be resident for the single-store surface")
    }

    /// Generation of the [`DEFAULT_NAMESPACE`] (starts at 1, bumped by
    /// every successful swap/reload).
    pub fn generation(&self) -> u64 {
        self.generation_of(DEFAULT_NAMESPACE).unwrap_or(0)
    }

    /// Statistics of the [`DEFAULT_NAMESPACE`]'s serving store (includes
    /// its generation).
    pub fn stats(&self) -> StoreStats {
        self.current().stats()
    }

    /// Swap `store` in as the [`DEFAULT_NAMESPACE`]'s new serving store
    /// and return its generation. The old store keeps serving whoever
    /// already holds its `Arc`.
    pub fn swap(&self, store: GraphStore) -> u64 {
        self.swap_in(DEFAULT_NAMESPACE, store)
            // audited: documented single-store-surface contract: the default namespace stays attached
            .expect("default namespace must exist for the single-store surface")
            .generation()
    }

    /// Load a fresh container and swap it into the [`DEFAULT_NAMESPACE`]:
    /// [`StoreRegistry::reload`] for the single-store surface.
    pub fn reload_from(&self, path: &str) -> Result<Arc<GraphStore>, GrepairError> {
        self.reload(DEFAULT_NAMESPACE, Some(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_container, Query};
    use grepair_core::{compress, GRePairConfig};
    use grepair_hypergraph::Hypergraph;

    fn g2g(reps: u32) -> Vec<u8> {
        let (g, _) = Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        );
        let out = compress(&g, &GRePairConfig::default());
        let enc = grepair_codec::encode(&out.grammar);
        write_container(&enc.bytes, enc.bit_len)
    }

    fn store(reps: u32) -> GraphStore {
        GraphStore::from_bytes(&g2g(reps)).unwrap()
    }

    /// Write `reps` containers to temp files and return their paths.
    fn g2g_files(tag: &str, sizes: &[u32]) -> Vec<String> {
        let dir = std::env::temp_dir();
        sizes
            .iter()
            .enumerate()
            .map(|(i, &reps)| {
                let path = dir.join(format!(
                    "grepair_registry_{tag}_{}_{i}.g2g",
                    std::process::id()
                ));
                std::fs::write(&path, g2g(reps)).unwrap();
                path.to_string_lossy().into_owned()
            })
            .collect()
    }

    fn cleanup(paths: &[String]) {
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn swap_bumps_generation_and_keeps_old_snapshots_alive() {
        let registry = StoreRegistry::new(store(8));
        assert_eq!(registry.generation(), 1);
        assert_eq!(registry.stats().generation, 1);
        let old = registry.current();
        assert_eq!(old.total_nodes(), 17);

        assert_eq!(registry.swap(store(16)), 2);
        assert_eq!(registry.generation(), 2);
        let new = registry.current();
        assert_eq!(new.total_nodes(), 33);
        assert_eq!(new.generation(), 2);

        // The pre-swap snapshot is unaffected: still generation 1, still
        // answering, with its own counters.
        assert_eq!(old.generation(), 1);
        assert!(old.query(&Query::OutNeighbors(0)).is_ok());
        assert_eq!(old.stats().generation, 1);
    }

    #[test]
    fn failed_reload_leaves_the_current_store_serving() {
        let registry = StoreRegistry::new(store(4));
        let before = registry.generation();
        assert!(registry.reload_from("/nonexistent/grepair.g2g").is_err());
        assert_eq!(registry.generation(), before);
        assert!(registry.current().reachable(0, 8).unwrap());
    }

    #[test]
    fn reload_from_a_real_file_swaps() {
        let paths = g2g_files("reload", &[12]);
        let registry = StoreRegistry::new(store(4));
        let reloaded = registry.reload_from(&paths[0]).unwrap();
        assert_eq!(reloaded.generation(), 2);
        assert_eq!(reloaded.total_nodes(), 25);
        assert!(Arc::ptr_eq(&reloaded, &registry.current()));
        cleanup(&paths);
    }

    #[test]
    fn concurrent_readers_survive_swaps() {
        let registry = StoreRegistry::new(store(8));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let registry = &registry;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let snapshot = registry.current();
                        // Node 0 exists in every generation served here.
                        let answer = snapshot.query(&Query::OutNeighbors(i % 17));
                        assert!(answer.is_ok(), "{answer:?}");
                    }
                });
            }
            let registry = &registry;
            scope.spawn(move || {
                for _ in 0..20 {
                    registry.swap(store(8));
                }
            });
        });
        assert_eq!(registry.generation(), 21);
        assert_eq!(registry.current().generation(), 21);
    }

    // ------------------------------------------------------------------
    // Multi-tenant behavior
    // ------------------------------------------------------------------

    #[test]
    fn namespace_names_are_validated() {
        assert!(valid_namespace("default"));
        assert!(valid_namespace("tenant-1.prod_x"));
        assert!(!valid_namespace(""));
        assert!(!valid_namespace("has space"));
        assert!(!valid_namespace("colon:here"));
        assert!(!valid_namespace(&"x".repeat(MAX_NAMESPACE_LEN + 1)));
        let registry = StoreRegistry::new(store(4));
        assert!(registry.attach_cold("bad name", "/x").is_err());
        assert!(registry.attach_store("", store(4)).is_err());
    }

    #[test]
    fn attach_detach_and_list() {
        let paths = g2g_files("attach", &[4, 8]);
        let registry = StoreRegistry::new(store(2));
        let a = registry.attach("a", &paths[0]).unwrap();
        assert_eq!(a.generation(), 1);
        assert_eq!(a.total_nodes(), 9);
        registry.attach_cold("b", &paths[1]).unwrap();

        // Sorted, with residency and generation.
        assert_eq!(
            registry.list(),
            vec![
                ("a".into(), true, 1),
                ("b".into(), false, 0),
                ("default".into(), true, 1),
            ]
        );

        // Duplicate names are rejected, registry untouched.
        assert!(registry.attach("a", &paths[1]).is_err());
        assert_eq!(registry.store("a").unwrap().total_nodes(), 9);

        // Lazy open on first resolution: generation 0 → 1, cold open counted.
        assert_eq!(registry.store("b").unwrap().total_nodes(), 17);
        assert_eq!(registry.generation_of("b").unwrap(), 1);
        assert_eq!(registry.aggregate_stats().cold_opens, 1);

        registry.detach("a").unwrap();
        assert!(registry.store("a").is_err());
        assert!(registry.detach("a").is_err(), "double detach errors");
        assert_eq!(registry.list().len(), 2);
        cleanup(&paths);
    }

    #[test]
    fn failed_attach_registers_nothing() {
        let registry = StoreRegistry::new(store(4));
        assert!(registry.attach("bad", "/nonexistent/x.g2g").is_err());
        assert!(!registry.contains("bad"));
        // A hostile container likewise: error, no registration.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("grepair_registry_hostile_{}.g2g", std::process::id()));
        std::fs::write(&path, b"G2G1 definitely not a container").unwrap();
        assert!(registry.attach("bad", path.to_str().unwrap()).is_err());
        assert!(!registry.contains("bad"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reload_is_per_namespace() {
        let paths = g2g_files("perns", &[4, 8, 12]);
        let registry = StoreRegistry::new(store(2));
        registry.attach("a", &paths[0]).unwrap();
        registry.attach("b", &paths[1]).unwrap();

        let reloaded = registry.reload("a", Some(&paths[2])).unwrap();
        assert_eq!(reloaded.generation(), 2);
        assert_eq!(reloaded.total_nodes(), 25);
        // The sibling namespace's generation is untouched.
        assert_eq!(registry.generation_of("b").unwrap(), 1);
        assert_eq!(registry.generation(), 1);

        // Bare reload re-reads the recorded path — which the explicit
        // reload above updated.
        let again = registry.reload("a", None).unwrap();
        assert_eq!(again.generation(), 3);
        assert_eq!(again.total_nodes(), 25);
        cleanup(&paths);
    }

    #[test]
    fn eviction_respects_budget_and_reopens_transparently() {
        let sizes = [8u32, 10, 12];
        let paths = g2g_files("evict", &sizes);
        let registry = StoreRegistry::new(store(2)); // in-memory, 0 bytes
        for (i, p) in paths.iter().enumerate() {
            registry.attach(&format!("t{i}"), p).unwrap();
        }
        let total = registry.resident_bytes();
        assert!(total > 0);
        let one = registry.store("t0").unwrap().resident_bytes();

        // Budget below the combined size: the registry must shed stores.
        let budget = total - 1;
        registry.set_budget(Some(budget));
        assert!(registry.resident_bytes() <= budget);
        let evicted_so_far = registry.aggregate_stats().evictions;
        assert!(evicted_so_far >= 1);

        // An evicted namespace is still registered and reopens on hit with
        // its generation unchanged — byte-identical to a never-evicted twin.
        let cold: Vec<String> = registry
            .list()
            .into_iter()
            .filter(|(_, resident, _)| !resident)
            .map(|(name, _, _)| name)
            .collect();
        assert!(!cold.is_empty());
        for name in &cold {
            let reopened = registry.store(name).unwrap();
            assert_eq!(reopened.generation(), 1, "evict/reopen must not bump");
            let twin = GraphStore::from_bytes(&std::fs::read(
                paths[name[1..].parse::<usize>().unwrap()].as_str(),
            ).unwrap())
            .unwrap();
            for v in 0..reopened.total_nodes() {
                assert_eq!(
                    reopened.query(&Query::OutNeighbors(v)),
                    twin.query(&Query::OutNeighbors(v)),
                );
            }
            // The reopen itself may have evicted someone else, but the
            // budget invariant holds after every operation.
            assert!(registry.resident_bytes() <= budget);
        }

        // A budget smaller than any single store: everything evictable is
        // shed except the store a request just touched.
        registry.set_budget(Some(one / 2));
        let touched = registry.store("t2").unwrap();
        assert_eq!(touched.total_nodes(), 25);
        let resident_evictable = registry
            .list()
            .into_iter()
            .filter(|(name, resident, _)| *resident && name != "default")
            .count();
        assert_eq!(resident_evictable, 1, "only the just-touched store stays");
        cleanup(&paths);
    }

    #[test]
    fn pathless_tenants_are_never_evicted() {
        let registry = StoreRegistry::new(store(8));
        registry.attach_store("mem", store(4)).unwrap();
        registry.set_budget(Some(0));
        // Nothing to evict: both tenants are in-memory (0 resident bytes).
        assert_eq!(registry.resident_count(), 2);
        assert_eq!(registry.aggregate_stats().evictions, 0);
        assert!(registry.store("mem").is_ok());
    }

    #[test]
    fn aggregate_stats_fold_in_retired_stores() {
        let paths = g2g_files("fold", &[4]);
        let registry = StoreRegistry::new(store(4));
        registry.attach("a", &paths[0]).unwrap();
        let a = registry.store("a").unwrap();
        let _ = a.query(&Query::OutNeighbors(0));
        let _ = a.query(&Query::OutNeighbors(1 << 40)); // error
        drop(a);
        registry.detach("a").unwrap();
        let stats = registry.aggregate_stats();
        assert_eq!(stats.queries, 2, "{stats}");
        assert_eq!(stats.errors, 1, "{stats}");
        let rendered = stats.to_string();
        assert!(rendered.starts_with("namespaces=1 resident=1 "), "{rendered}");
        assert!(rendered.contains("budget=none"), "{rendered}");
        cleanup(&paths);
    }

    #[test]
    fn concurrent_tenants_survive_reloads_and_evictions() {
        let paths = g2g_files("conc", &[8, 8, 8]);
        let registry = StoreRegistry::new(store(8));
        for (i, p) in paths.iter().enumerate() {
            registry.attach(&format!("t{i}"), p).unwrap();
        }
        let one = registry.store("t0").unwrap().resident_bytes();
        registry.set_budget(Some(2 * one));
        std::thread::scope(|scope| {
            for t in 0..3usize {
                let registry = &registry;
                scope.spawn(move || {
                    let name = format!("t{t}");
                    for i in 0..200u64 {
                        let snapshot = registry.store(&name).unwrap();
                        assert!(snapshot.query(&Query::OutNeighbors(i % 17)).is_ok());
                    }
                });
            }
            let registry = &registry;
            scope.spawn(move || {
                for i in 0..20u64 {
                    let _ = registry.reload(&format!("t{}", i % 3), None);
                }
            });
        });
        // Budget holds at rest; every tenant still answers.
        assert!(registry.resident_bytes() <= 2 * one);
        for t in 0..3 {
            assert!(registry.store(&format!("t{t}")).is_ok());
        }
        cleanup(&paths);
    }

    // ------------------------------------------------------------------
    // Versioning (DESIGN.md §12)
    // ------------------------------------------------------------------

    /// A k2-backed path store (no node renumbering, unlike the grammar
    /// codec): `0 -0-> 1 -0-> … -0-> n-1`.
    fn k2_store(n: u32) -> GraphStore {
        let g = Hypergraph::from_simple_edges(n as usize, (0..n - 1).map(|i| (i, 0u32, i + 1))).0;
        let file = crate::backend::codec_for("k2").unwrap().encode(&g).unwrap();
        GraphStore::from_bytes(&file).unwrap()
    }

    #[test]
    fn patches_bump_generation_and_retain_versions() {
        let registry = StoreRegistry::new(store(2));
        registry.attach_store("g", k2_store(4)).unwrap();
        assert_eq!(
            registry.versions_of("g").unwrap(),
            vec![VersionSummary { version: 0, added: 0, removed: 0 }]
        );
        // @v0 of a never-patched namespace is the store itself; any other
        // version is unknown.
        assert!(Arc::ptr_eq(
            &registry.store_at("g", 0).unwrap(),
            &registry.store("g").unwrap()
        ));
        assert!(registry.store_at("g", 1).unwrap_err().to_string().contains("unknown version"));

        let (v1, head) = registry.patch("g", EdgePatch::parse("ADD 3 0 0").unwrap()).unwrap();
        assert_eq!(v1, VersionSummary { version: 1, added: 1, removed: 0 });
        assert_eq!(head.generation(), 2, "patch rides the reload generation machinery");
        assert!(Arc::ptr_eq(&head, &registry.store("g").unwrap()), "bare queries track the head");
        assert!(head.reachable(3, 2).unwrap());
        // Time travel: v0 still answers its own state.
        assert!(!registry.store_at("g", 0).unwrap().reachable(3, 2).unwrap());

        let (v2, head2) = registry.patch("g", EdgePatch::parse("DEL 1 0 2").unwrap()).unwrap();
        assert_eq!((v2.version, head2.generation()), (2, 3));
        assert_eq!(
            registry.versions_of("g").unwrap(),
            vec![
                VersionSummary { version: 0, added: 0, removed: 0 },
                VersionSummary { version: 1, added: 1, removed: 0 },
                VersionSummary { version: 2, added: 1, removed: 1 },
            ]
        );
        // A failed patch consumes nothing: no version, no generation.
        assert!(registry.patch("g", EdgePatch::parse("DEL 1 0 2").unwrap()).is_err());
        assert_eq!(registry.store("g").unwrap().generation(), 3);
        assert_eq!(registry.versions_of("g").unwrap().len(), 3);
        // Unknown namespaces error across the whole versioning surface.
        assert!(registry.patch("nope", EdgePatch::parse("ADD 0 0 1").unwrap()).is_err());
        assert!(registry.store_at("nope", 0).is_err());
        assert!(registry.versions_of("nope").is_err());
    }

    #[test]
    fn reload_and_swap_rebase_the_patch_log() {
        let paths = g2g_files("rebase", &[4]);
        let registry = StoreRegistry::new(store(2));
        registry.attach("a", &paths[0]).unwrap();
        registry.patch("a", EdgePatch::parse("ADD 0 7 1").unwrap()).unwrap();
        assert_eq!(registry.versions_of("a").unwrap().len(), 2);

        // Reloading fresh container data drops the log: the retained
        // versions described deltas over the old base.
        registry.reload("a", None).unwrap();
        assert_eq!(
            registry.versions_of("a").unwrap(),
            vec![VersionSummary { version: 0, added: 0, removed: 0 }]
        );
        assert!(registry.store_at("a", 1).is_err());

        // The default-namespace swap surface rebases too.
        registry.patch(DEFAULT_NAMESPACE, EdgePatch::parse("ADD 0 7 1").unwrap()).unwrap();
        assert_eq!(registry.versions_of(DEFAULT_NAMESPACE).unwrap().len(), 2);
        registry.swap(store(2));
        assert_eq!(registry.versions_of(DEFAULT_NAMESPACE).unwrap().len(), 1);
        cleanup(&paths);
    }

    #[test]
    fn patched_heads_survive_budget_pressure() {
        let paths = g2g_files("verprot", &[8, 8]);
        let registry = StoreRegistry::new(store(2));
        registry.attach("a", &paths[0]).unwrap();
        registry.attach("b", &paths[1]).unwrap();
        registry.patch("a", EdgePatch::parse("ADD 0 9 1").unwrap()).unwrap();
        // A zero budget sheds every evictable container — but "a"'s head
        // is an overlay (0 resident bytes) whose eviction would silently
        // rewind the namespace to its base.
        registry.set_budget(Some(0));
        let list = registry.list();
        let resident = |name: &str| list.iter().any(|(n, r, _)| n == name && *r);
        assert!(resident("a"), "{list:?}");
        assert!(!resident("b"), "{list:?}");
        assert!(registry.store("a").unwrap().rpq("9", 0, 1).unwrap());
        cleanup(&paths);
    }
}
