//! The long-lived query-serving store.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use grepair_grammar::Grammar;
use grepair_hypergraph::{EdgeId, EdgeLabel, NodeId};
use grepair_queries::neighbors::Direction;
use grepair_queries::reach::SourceClosure;
use grepair_queries::{
    speedup, GRepr, GrammarIndex, QueryError, ReachIndex, RpqIndex, RpqSourceClosure,
};
use grepair_util::{FxHashMap, FxHashSet};

use crate::cache::ShardedMap;
use crate::query::{compile_pattern, Query, QueryAnswer};
use crate::GrepairError;

/// Container magic for `.g2g` files (shared with the CLI writer).
pub const MAGIC: &[u8; 4] = b"G2G1";
/// Container header size: magic + little-endian `u64` bit length.
pub const HEADER_LEN: usize = 12;

/// Split a `.g2g` container into its claimed bit length and payload.
///
/// Only the *container* is judged here; whether the payload actually holds
/// `bit_len` coherent bits is the codec's job.
pub fn parse_container(file: &[u8]) -> Result<(u64, &[u8]), GrepairError> {
    if file.len() < HEADER_LEN {
        return Err(GrepairError::Container(format!(
            "{} bytes is shorter than the {HEADER_LEN}-byte header",
            file.len()
        )));
    }
    if &file[..4] != MAGIC {
        return Err(GrepairError::Container("bad magic".into()));
    }
    let bit_len = u64::from_le_bytes(file[4..HEADER_LEN].try_into().expect("4..12 is 8 bytes"));
    Ok((bit_len, &file[HEADER_LEN..]))
}

/// Wrap an encoded grammar in the `.g2g` container format.
pub fn write_container(bytes: &[u8], bit_len: u64) -> Vec<u8> {
    let mut file = Vec::with_capacity(bytes.len() + HEADER_LEN);
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&bit_len.to_le_bytes());
    file.extend_from_slice(bytes);
    file
}

/// One memoized rule expansion: the neighbors one `(nt, ext position,
/// direction)` combination contributes, as rule-relative `(path, node)`
/// pairs (see [`GrammarIndex::rule_expansion`]).
type Expansion = Arc<Vec<(Vec<EdgeId>, NodeId)>>;
/// Cache key: `(nonterminal, external position, direction)`.
type ExpansionKey = (u32, u32, Direction);
/// What every query entry point returns: a shared handle to the answer, so
/// cache and memo hits are `Arc` clones, never `Vec` copies.
type AnswerResult = Result<Arc<QueryAnswer>, GrepairError>;

/// Something that can run a set of borrowed jobs to completion — the seam
/// between the store's batch partitioning and whoever owns the threads.
///
/// [`GraphStore::query_batch_parallel`] plugs in a spawn-per-batch
/// implementation (scoped `std::thread`s); a long-lived server plugs in a
/// reusable worker pool (`grepair-server`'s `WorkerPool`), so small batches
/// stop paying the per-batch spawn cost.
///
/// # Contract
///
/// `scope` must run (or at worst drop) every job before returning — the
/// jobs borrow the caller's stack. Safe implementations can only uphold
/// this (a borrowed job cannot be smuggled past `scope`'s return without
/// `unsafe`); implementations using `unsafe` to ship jobs to long-lived
/// threads must block until all jobs are done.
pub trait BatchExecutor {
    /// How many jobs one batch should be split into at most (usually the
    /// number of worker threads).
    fn max_workers(&self) -> usize;

    /// Run every job to completion before returning.
    fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>);
}

/// The executor behind [`GraphStore::query_batch_parallel`]: fresh scoped
/// threads per batch. Spawn cost is amortized over large batches (the
/// intended usage — ~tens of microseconds per call); serving stacks that
/// answer many small batches should pass a pooled [`BatchExecutor`] to
/// [`GraphStore::query_batch_on`] instead.
struct ScopedSpawner(usize);

impl BatchExecutor for ScopedSpawner {
    fn max_workers(&self) -> usize {
        self.0
    }

    fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        // `thread::scope` joins every worker before returning and propagates
        // any panic, which satisfies the run-to-completion contract.
        std::thread::scope(|scope| {
            for job in jobs {
                scope.spawn(job);
            }
        });
    }
}

/// Monotonic serving counters. Every counter is an [`AtomicU64`] bumped with
/// `Relaxed` ordering — correct under the concurrent batch paths (each
/// increment lands exactly once) and free of any lock.
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    batches: AtomicU64,
    parallel_batches: AtomicU64,
    errors: AtomicU64,
    expansion_hits: AtomicU64,
    expansion_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

/// A point-in-time snapshot of a store's serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Which generation of a [`crate::StoreRegistry`] this store is: `1`
    /// for a store that was never registered or registered first, and a
    /// strictly larger number for every store a reload swapped in (the
    /// registry's monotonic counter). Echoed by the wire protocol's
    /// `STATS`/`INFO` admin replies (DESIGN.md §6) so clients can observe
    /// a hot reload taking effect.
    pub generation: u64,
    /// Decode + index-build operations performed for this store (always 1:
    /// a reload builds a *new* store — see [`crate::StoreRegistry`]).
    pub loads: u64,
    /// Queries answered (each element of a batch counts once).
    pub queries_served: u64,
    /// `query_batch` + `query_batch_parallel` invocations.
    pub batches: u64,
    /// [`GraphStore::query_batch_parallel`] invocations that actually fanned
    /// out to worker threads (also counted in `batches`).
    pub parallel_batches: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Memoized rule-expansion lookups that hit.
    pub expansion_cache_hits: u64,
    /// Memoized rule-expansion lookups that missed (and computed).
    pub expansion_cache_misses: u64,
    /// RPQ plan-cache hits (pattern already compiled against this grammar).
    pub rpq_plan_hits: u64,
    /// RPQ plan-cache misses.
    pub rpq_plan_misses: u64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "generation={} loads={} queries={} batches={} (parallel={}) errors={} expansion_cache={}/{} rpq_plans={}/{}",
            self.generation,
            self.loads,
            self.queries_served,
            self.batches,
            self.parallel_batches,
            self.errors,
            self.expansion_cache_hits,
            self.expansion_cache_hits + self.expansion_cache_misses,
            self.rpq_plan_hits,
            self.rpq_plan_hits + self.rpq_plan_misses,
        )
    }
}

/// What one pre-scan over the batch says is worth sharing. Amortization is
/// only free when something repeats: memoizing a query nobody asks twice,
/// or caching a source closure nobody reuses, is pure overhead (hash,
/// clone, lock) on the hot path. The plan is built once per batch in O(n)
/// and consulted read-only by every worker thread, lock-free.
struct BatchPlan<'q> {
    /// Queries occurring ≥ 2 times — the only ones the memo admits.
    duplicates: FxHashSet<&'q Query>,
    /// Sources of ≥ 2 (non-trivial) `reach` queries.
    shared_reach: FxHashSet<u64>,
    /// (pattern, source) pairs of ≥ 2 `rpq` queries.
    shared_rpq: FxHashSet<(&'q str, u64)>,
    /// Nodes named by ≥ 2 neighbor queries (`out`/`in`/`neighbors` mix).
    shared_nodes: FxHashSet<u64>,
}

impl<'q> BatchPlan<'q> {
    /// One hash set probe per query tells the hot path whether to bother —
    /// empty sets short-circuit before hashing.
    fn has_duplicates(&self) -> bool {
        !self.duplicates.is_empty()
    }

    fn new(queries: &'q [Query]) -> Self {
        let cap = queries.len();
        let mut query_count: FxHashMap<&Query, u32> =
            FxHashMap::with_capacity_and_hasher(cap, Default::default());
        let mut reach_count: FxHashMap<u64, u32> =
            FxHashMap::with_capacity_and_hasher(cap / 4, Default::default());
        let mut rpq_count: FxHashMap<(&str, u64), u32> =
            FxHashMap::with_capacity_and_hasher(cap / 4, Default::default());
        let mut node_count: FxHashMap<u64, u32> =
            FxHashMap::with_capacity_and_hasher(cap / 4, Default::default());
        for q in queries {
            *query_count.entry(q).or_default() += 1;
            match q {
                Query::Reach { s, t } if s != t => *reach_count.entry(*s).or_default() += 1,
                Query::Rpq { s, pattern, .. } => {
                    *rpq_count.entry((pattern.as_str(), *s)).or_default() += 1
                }
                Query::OutNeighbors(v) | Query::InNeighbors(v) | Query::Neighbors(v) => {
                    *node_count.entry(*v).or_default() += 1
                }
                _ => {}
            }
        }
        let repeated = |m: FxHashMap<u64, u32>| {
            m.into_iter().filter(|&(_, c)| c >= 2).map(|(k, _)| k).collect()
        };
        Self {
            duplicates: query_count
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                .map(|(q, _)| q)
                .collect(),
            shared_reach: repeated(reach_count),
            shared_rpq: rpq_count
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                .map(|(k, _)| k)
                .collect(),
            shared_nodes: repeated(node_count),
        }
    }
}

/// Per-batch shared state: everything that lets one request's work pay for
/// the next request's. Internally sharded ([`ShardedMap`]) and keyed by
/// references into the batch slice (no `Query`/pattern clones), so the same
/// context is shared *across worker threads* by
/// [`GraphStore::query_batch_parallel`] without a global lock.
struct BatchContext<'q> {
    /// Which keys are worth admitting into the maps below.
    plan: BatchPlan<'q>,
    /// Duplicate queries collapse to one computation; hits are `Arc` clones.
    memo: ShardedMap<&'q Query, AnswerResult>,
    /// `reach` queries sharing a source reuse one forward closure.
    reach_sources: ShardedMap<u64, Result<Arc<SourceClosure>, QueryError>>,
    /// `rpq` queries sharing (pattern, source) reuse one product closure.
    rpq_sources: ShardedMap<(&'q str, u64), Result<Arc<RpqSourceClosure>, QueryError>>,
    /// Neighbor queries against the same node (`out v` / `in v` /
    /// `neighbors v`) share one `locate` descent; distinct nodes under the
    /// same rule subtree additionally share the store-wide expansions.
    locates: ShardedMap<u64, Result<Arc<GRepr>, QueryError>>,
}

impl<'q> BatchContext<'q> {
    fn new(queries: &'q [Query]) -> Self {
        Self {
            plan: BatchPlan::new(queries),
            memo: ShardedMap::default(),
            reach_sources: ShardedMap::default(),
            rpq_sources: ShardedMap::default(),
            locates: ShardedMap::default(),
        }
    }
}

/// Per-worker scratch buffers, reused across the queries one worker
/// answers so the neighbor hot path does not reallocate its derivation-path
/// buffer per query. Never shared between threads.
#[derive(Default)]
struct Scratch {
    /// Absolute derivation path assembled while expanding nonterminal edges.
    full: Vec<EdgeId>,
}

/// A loaded compressed graph, indexed once, serving forever.
///
/// `GraphStore` is the serving-grade counterpart of the one-shot CLI path:
/// it decodes a `.g2g` through a fully fallible pipeline (no panic on any
/// byte sequence), eagerly builds the navigation and reachability indexes,
/// and then answers any number of [`Query`]s — individually via
/// [`GraphStore::query`], amortized via [`GraphStore::query_batch`], or
/// across worker threads via [`GraphStore::query_batch_parallel`].
///
/// All interior mutability is synchronized (sharded `RwLock` caches, atomic
/// counters), so one store can be shared across threads
/// (`&GraphStore: Send + Sync`) and the read-mostly hot path scales with
/// cores instead of serializing on a global lock. Answers come back as
/// `Arc<QueryAnswer>`: a memoized hit is a pointer clone, never a deep copy
/// of a neighbor list.
#[derive(Debug)]
pub struct GraphStore {
    grammar: Arc<Grammar>,
    /// G-representation navigation (Prop. 4), built eagerly.
    index: GrammarIndex<Arc<Grammar>>,
    /// Skeleton-based reachability (Thm. 6), built eagerly.
    reach: ReachIndex<Arc<Grammar>>,
    /// Memoized rule expansions — hot on hub nodes, whose incident
    /// nonterminal edges repeat few distinct labels.
    expansions: ShardedMap<ExpansionKey, Expansion>,
    /// Compiled RPQ plans per canonical pattern text.
    plans: ShardedMap<String, Arc<RpqIndex<Arc<Grammar>>>>,
    /// Whole-graph aggregates, computed at most once.
    components: OnceLock<u64>,
    degrees: OnceLock<Option<(u64, u64)>>,
    counters: Counters,
    loads: u64,
    /// Registry generation (see [`StoreStats::generation`]); `1` until a
    /// [`crate::StoreRegistry`] swap assigns a later one. Atomic because it
    /// is stamped through `&self` after the store is shared.
    generation: AtomicU64,
}

impl GraphStore {
    /// Build a store from an already-validated (or freshly compressed)
    /// grammar. Validation runs again here — the store's zero-panic
    /// guarantee must not depend on the caller's discipline.
    pub fn from_grammar(grammar: Grammar) -> Result<Self, GrepairError> {
        grammar
            .validate()
            .map_err(|e| GrepairError::Codec(grepair_codec::CodecError::Malformed(e)))?;
        let grammar = Arc::new(grammar);
        Ok(Self {
            index: GrammarIndex::new(grammar.clone()),
            reach: ReachIndex::new(grammar.clone()),
            grammar,
            expansions: ShardedMap::default(),
            plans: ShardedMap::default(),
            components: OnceLock::new(),
            degrees: OnceLock::new(),
            counters: Counters::default(),
            loads: 1,
            generation: AtomicU64::new(1),
        })
    }

    /// Decode a `.g2g` container image and build the store.
    pub fn from_bytes(file: &[u8]) -> Result<Self, GrepairError> {
        let (bit_len, payload) = parse_container(file)?;
        let grammar = grepair_codec::decode(payload, bit_len)?;
        Self::from_grammar(grammar)
    }

    /// Load a `.g2g` file and build the store.
    pub fn open(path: &str) -> Result<Self, GrepairError> {
        let file = std::fs::read(path)
            .map_err(|e| GrepairError::Io { path: path.into(), error: e.to_string() })?;
        Self::from_bytes(&file)
    }

    /// The grammar being served.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Number of nodes of `val(G)` — valid query ids are `0..total_nodes()`.
    pub fn total_nodes(&self) -> u64 {
        self.index.total_nodes
    }

    /// Which registry generation this store is (see
    /// [`StoreStats::generation`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Stamp the registry generation onto this store
    /// ([`crate::StoreRegistry::swap`] is the only caller).
    pub(crate) fn set_generation(&self, generation: u64) {
        self.generation.store(generation, Ordering::Relaxed);
    }

    /// Snapshot the serving statistics.
    pub fn stats(&self) -> StoreStats {
        let c = &self.counters;
        StoreStats {
            generation: self.generation(),
            loads: self.loads,
            queries_served: c.queries.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            parallel_batches: c.parallel_batches.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            expansion_cache_hits: c.expansion_hits.load(Ordering::Relaxed),
            expansion_cache_misses: c.expansion_misses.load(Ordering::Relaxed),
            rpq_plan_hits: c.plan_hits.load(Ordering::Relaxed),
            rpq_plan_misses: c.plan_misses.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Individual queries
    // ------------------------------------------------------------------

    /// Out-neighbors of `v`, sorted ascending.
    pub fn out_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let repr = self.index.try_locate(v)?;
        Ok(self.collect_neighbors(&repr, Direction::Out, &mut Scratch::default())?)
    }

    /// In-neighbors of `v`, sorted ascending.
    pub fn in_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let repr = self.index.try_locate(v)?;
        Ok(self.collect_neighbors(&repr, Direction::In, &mut Scratch::default())?)
    }

    /// Union of both directions, sorted and deduplicated (one `locate`
    /// serves both passes).
    pub fn neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let repr = self.index.try_locate(v)?;
        let mut scratch = Scratch::default();
        let mut out = self.collect_neighbors(&repr, Direction::Out, &mut scratch)?;
        out.extend(self.collect_neighbors(&repr, Direction::In, &mut scratch)?);
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Is `t` reachable from `s`?
    pub fn reachable(&self, s: u64, t: u64) -> Result<bool, GrepairError> {
        Ok(self.reach.try_reachable(s, t)?)
    }

    /// Does some `s → t` path spell a word of the pattern's language?
    pub fn rpq(&self, pattern: &str, s: u64, t: u64) -> Result<bool, GrepairError> {
        let plan = self.plan(pattern)?;
        Ok(plan.try_matches(s, t)?)
    }

    /// Number of connected components of `val(G)` (memoized).
    pub fn components(&self) -> u64 {
        *self
            .components
            .get_or_init(|| speedup::connected_components(&self.grammar))
    }

    /// `(min, max)` degree over `val(G)` (memoized; `None` when empty).
    pub fn degree_extrema(&self) -> Option<(u64, u64)> {
        *self
            .degrees
            .get_or_init(|| speedup::degree_extrema(&self.grammar))
    }

    /// Answer one query, updating the serving counters.
    pub fn query(&self, q: &Query) -> AnswerResult {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let result = self.answer(q, None, &mut Scratch::default());
        if result.is_err() {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    // ------------------------------------------------------------------
    // Batched queries
    // ------------------------------------------------------------------

    /// Answer many queries at once, amortizing shared work:
    ///
    /// * duplicate queries are answered once; repeats share the `Arc`,
    /// * `reach` queries sharing a source reuse one forward closure
    ///   ([`ReachIndex::try_source`]) instead of recomputing it per target,
    /// * `rpq` queries sharing a (pattern, source) pair reuse one product
    ///   closure ([`RpqIndex::try_source`]),
    /// * neighbor queries against the same node share one `locate` descent,
    /// * rule expansions and RPQ plans hit the store-wide sharded caches.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<AnswerResult> {
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let ctx = BatchContext::new(queries);
        let mut scratch = Scratch::default();
        self.answer_chunk(queries, &ctx, &mut scratch)
    }

    /// [`GraphStore::query_batch`], partitioned across `threads` worker
    /// threads sharing one batch context (per-source closures, duplicate
    /// memo, locate cache) through the sharded maps. Answers come back in
    /// input order, errors included, exactly as the sequential path would
    /// produce them.
    ///
    /// `threads` ≤ 1 or a batch smaller than two queries fall back to the
    /// sequential path; `threads` is capped at the batch length. Worker
    /// threads are spawned per call (scoped `std::thread`, no pool):
    /// amortizing spawn cost across a 10k-query batch is the intended
    /// usage, per-call overhead is ~tens of microseconds. Serving stacks
    /// that answer many *small* batches should reuse threads through
    /// [`GraphStore::query_batch_on`] with a pooled [`BatchExecutor`]
    /// instead.
    pub fn query_batch_parallel(&self, queries: &[Query], threads: usize) -> Vec<AnswerResult> {
        self.query_batch_on(queries, &ScopedSpawner(threads))
    }

    /// [`GraphStore::query_batch_parallel`] with caller-owned threads: the
    /// batch is partitioned into one job per executor worker, all jobs
    /// share one batch context (per-source closures, duplicate memo,
    /// locate cache) through the sharded maps, and `executor` runs them.
    /// Answers come back in input order, errors included, exactly as the
    /// sequential path would produce them.
    pub fn query_batch_on(
        &self,
        queries: &[Query],
        executor: &impl BatchExecutor,
    ) -> Vec<AnswerResult> {
        let threads = executor.max_workers().min(queries.len());
        if threads <= 1 {
            return self.query_batch(queries);
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters.parallel_batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let ctx = BatchContext::new(queries);
        let chunk_len = queries.len().div_ceil(threads);
        // One pre-sized slot per query: each job fills a disjoint chunk, so
        // answers land in input order without a post-hoc reorder.
        let mut slots: Vec<Option<AnswerResult>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        {
            let ctx = &ctx;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = queries
                .chunks(chunk_len)
                .zip(slots.chunks_mut(chunk_len))
                .map(|(chunk, out)| {
                    Box::new(move || {
                        let mut scratch = Scratch::default();
                        let answers = self.answer_chunk(chunk, ctx, &mut scratch);
                        for (slot, answer) in out.iter_mut().zip(answers) {
                            *slot = Some(answer);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            executor.scope(jobs);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("executor must run every job to completion"))
            .collect()
    }

    /// Answer a contiguous run of batch queries through the shared context.
    /// The memo only admits queries the batch plan saw twice — unique
    /// queries (the common case in realistic traffic) skip the memo's hash,
    /// clone, and lock entirely.
    fn answer_chunk<'q>(
        &self,
        queries: &'q [Query],
        ctx: &BatchContext<'q>,
        scratch: &mut Scratch,
    ) -> Vec<AnswerResult> {
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            let answer = if ctx.plan.has_duplicates() && ctx.plan.duplicates.contains(q) {
                match ctx.memo.get(&q) {
                    Some(hit) => hit,
                    None => {
                        let computed = self.answer(q, Some(ctx), scratch);
                        ctx.memo.insert_if_absent(q, computed)
                    }
                }
            } else {
                self.answer(q, Some(ctx), scratch)
            };
            if answer.is_err() {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            out.push(answer);
        }
        out
    }

    /// Shared worker for every query entry point. `ctx` carries the
    /// per-batch reuse (absent for single queries); `scratch` the per-worker
    /// buffers. Each sharing lever engages only for keys the batch plan
    /// marked as actually shared.
    fn answer<'q>(
        &self,
        q: &'q Query,
        ctx: Option<&BatchContext<'q>>,
        scratch: &mut Scratch,
    ) -> AnswerResult {
        Ok(Arc::new(match q {
            Query::OutNeighbors(v) => {
                let repr = self.locate_for(*v, ctx)?;
                QueryAnswer::Nodes(self.collect_neighbors(&repr, Direction::Out, scratch)?)
            }
            Query::InNeighbors(v) => {
                let repr = self.locate_for(*v, ctx)?;
                QueryAnswer::Nodes(self.collect_neighbors(&repr, Direction::In, scratch)?)
            }
            Query::Neighbors(v) => {
                let repr = self.locate_for(*v, ctx)?;
                let mut out = self.collect_neighbors(&repr, Direction::Out, scratch)?;
                out.extend(self.collect_neighbors(&repr, Direction::In, scratch)?);
                out.sort_unstable();
                out.dedup();
                QueryAnswer::Nodes(out)
            }
            Query::Reach { s, t } if s == t => {
                // Trivially true for valid ids — skip the forward closure.
                QueryAnswer::Bool(self.reach.try_reachable(*s, *t)?)
            }
            Query::Reach { s, t } => {
                let shared =
                    ctx.filter(|c| !c.plan.shared_reach.is_empty() && c.plan.shared_reach.contains(s));
                let Some(ctx) = shared else {
                    return Ok(Arc::new(QueryAnswer::Bool(self.reach.try_reachable(*s, *t)?)));
                };
                let src = match ctx.reach_sources.get(s) {
                    Some(hit) => hit,
                    None => ctx.reach_sources.insert_if_absent(
                        *s,
                        self.reach.try_source(*s).map(Arc::new),
                    ),
                };
                QueryAnswer::Bool(self.reach.try_reachable_from(&*src?, *t)?)
            }
            Query::Rpq { s, t, pattern } => {
                let plan = self.plan(pattern)?;
                let key = (pattern.as_str(), *s);
                let shared =
                    ctx.filter(|c| !c.plan.shared_rpq.is_empty() && c.plan.shared_rpq.contains(&key));
                let Some(ctx) = shared else {
                    return Ok(Arc::new(QueryAnswer::Bool(plan.try_matches(*s, *t)?)));
                };
                let src = match ctx.rpq_sources.get(&key) {
                    Some(hit) => hit,
                    None => ctx
                        .rpq_sources
                        .insert_if_absent(key, plan.try_source(*s).map(Arc::new)),
                };
                QueryAnswer::Bool(plan.try_matches_from(&*src?, *t)?)
            }
            Query::Components => QueryAnswer::Count(self.components()),
            Query::DegreeExtrema => QueryAnswer::Extrema(self.degree_extrema()),
        }))
    }

    /// Resolve the G-representation of `k`, through the per-batch locate
    /// cache when the plan says ≥ 2 neighbor queries name this node.
    fn locate_for(
        &self,
        k: u64,
        ctx: Option<&BatchContext<'_>>,
    ) -> Result<Arc<GRepr>, QueryError> {
        if let Some(ctx) =
            ctx.filter(|c| !c.plan.shared_nodes.is_empty() && c.plan.shared_nodes.contains(&k))
        {
            return match ctx.locates.get(&k) {
                Some(hit) => hit,
                None => ctx
                    .locates
                    .insert_if_absent(k, self.index.try_locate(k).map(Arc::new)),
            };
        }
        self.index.try_locate(k).map(Arc::new)
    }

    // ------------------------------------------------------------------
    // Caches
    // ------------------------------------------------------------------

    /// Neighbor collection with memoized nonterminal descent. The context
    /// scan mirrors `GrammarIndex::neighbors`; the descent into each
    /// nonterminal edge is replaced by a cache of rule-relative expansions
    /// (see [`GrammarIndex::rule_expansion`] for the uncached reference).
    /// The caller resolves `repr` (possibly through the per-batch locate
    /// cache — see [`GraphStore::locate_for`]); the derivation-path buffer
    /// comes from `scratch`.
    fn collect_neighbors(
        &self,
        repr: &GRepr,
        dir: Direction,
        scratch: &mut Scratch,
    ) -> Result<Vec<u64>, QueryError> {
        let ctx_graph = self.index.context(&repr.path);
        // Fast path: isolated (rank-0) nodes have no neighbors — return
        // before touching the expansion machinery.
        if ctx_graph.incident(repr.node).next().is_none() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let full: &mut Vec<EdgeId> = &mut scratch.full;
        full.clear();
        full.extend_from_slice(&repr.path);
        for e in ctx_graph.incident(repr.node) {
            let att = ctx_graph.att(e);
            match ctx_graph.label(e) {
                EdgeLabel::Terminal(_) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let neighbor = match dir {
                        Direction::Out if att[0] == repr.node => att[1],
                        Direction::In if att[1] == repr.node => att[0],
                        _ => continue,
                    };
                    out.push(self.index.global_id(&repr.path, neighbor));
                }
                EdgeLabel::Nonterminal(nt) => {
                    for (pos, &x) in att.iter().enumerate() {
                        if x != repr.node {
                            continue;
                        }
                        let exp = self.expansion(nt, pos as u32, dir);
                        for (rel, node) in exp.iter() {
                            full.truncate(repr.path.len());
                            full.push(e);
                            full.extend_from_slice(rel);
                            out.push(self.index.global_id(full, *node));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Memoized rule-relative expansion for `(nt, ext position, dir)` — a
    /// hit is an `Arc` clone out of the sharded cache (read lock, no copy).
    fn expansion(&self, nt: u32, pos: u32, dir: Direction) -> Expansion {
        let key: ExpansionKey = (nt, pos, dir);
        if let Some(hit) = self.expansions.get(&key) {
            self.counters.expansion_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // Compute outside any lock: the recursion below re-enters
        // `expansion` for nested nonterminals (sharing their entries too).
        self.counters.expansion_misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(self.compute_expansion(nt, pos, dir));
        self.expansions.insert_if_absent(key, computed)
    }

    /// Uncached expansion body; straight-line grammars make the recursion
    /// (over strictly smaller nonterminals) finite.
    fn compute_expansion(&self, nt: u32, pos: u32, dir: Direction) -> Vec<(Vec<EdgeId>, NodeId)> {
        let rhs = self.grammar.rule(nt);
        let Some(&v) = rhs.ext().get(pos as usize) else { return Vec::new() };
        let mut out = Vec::new();
        for e in rhs.incident(v) {
            let att = rhs.att(e);
            match rhs.label(e) {
                EdgeLabel::Terminal(_) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let neighbor = match dir {
                        Direction::Out if att[0] == v => att[1],
                        Direction::In if att[1] == v => att[0],
                        _ => continue,
                    };
                    out.push((Vec::new(), neighbor));
                }
                EdgeLabel::Nonterminal(sub) => {
                    for (p2, &x) in att.iter().enumerate() {
                        if x != v {
                            continue;
                        }
                        let nested = self.expansion(sub, p2 as u32, dir);
                        for (rel, node) in nested.iter() {
                            let mut path = Vec::with_capacity(rel.len() + 1);
                            path.push(e);
                            path.extend_from_slice(rel);
                            out.push((path, *node));
                        }
                    }
                }
            }
        }
        out
    }

    /// Compiled-plan lookup for an RPQ pattern — a hit is an `Arc` clone out
    /// of the sharded cache.
    fn plan(&self, pattern: &str) -> Result<Arc<RpqIndex<Arc<Grammar>>>, GrepairError> {
        if let Some(hit) = self.plans.get(pattern) {
            self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
        let nfa = compile_pattern(pattern)?;
        let plan = Arc::new(RpqIndex::new(self.grammar.clone(), nfa));
        Ok(self.plans.insert_if_absent(pattern.to_string(), plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_core::{compress, GRePairConfig};
    use grepair_hypergraph::Hypergraph;

    fn store_for(reps: u32) -> (GraphStore, Hypergraph) {
        let (g, _) = Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        );
        let out = compress(&g, &GRePairConfig::default());
        let encoded = grepair_codec::encode(&out.grammar);
        let file = write_container(&encoded.bytes, encoded.bit_len);
        (GraphStore::from_bytes(&file).unwrap(), g)
    }

    fn mixed_queries(n: u64, len: u64) -> Vec<Query> {
        (0..len)
            .map(|i| match i % 5 {
                0 => Query::OutNeighbors(i % n),
                1 => Query::InNeighbors((i * 7) % n),
                2 => Query::Reach { s: (i * 3) % n, t: (i * 11) % n },
                3 => Query::Rpq {
                    s: (i * 5) % n,
                    t: (i * 13) % n,
                    pattern: if i % 2 == 0 { "0 1".into() } else { "0* 1*".into() },
                },
                _ => Query::Neighbors((i * 17) % n),
            })
            .collect()
    }

    #[test]
    fn neighbors_match_uncached_index() {
        let (store, _) = store_for(32);
        let idx = GrammarIndex::new(store.grammar());
        for k in 0..store.total_nodes() {
            assert_eq!(store.out_neighbors(k).unwrap(), idx.out_neighbors(k), "out {k}");
            assert_eq!(store.in_neighbors(k).unwrap(), idx.in_neighbors(k), "in {k}");
        }
        let s = store.stats();
        assert!(s.expansion_cache_hits > 0, "repeated labels must hit: {s}");
    }

    #[test]
    fn cached_expansion_matches_reference() {
        let (store, _) = store_for(24);
        let idx = GrammarIndex::new(store.grammar());
        for nt in 0..store.grammar().num_nonterminals() as u32 {
            let rank = store.grammar().nt_rank(nt);
            for pos in 0..rank as u32 {
                for dir in [Direction::Out, Direction::In] {
                    assert_eq!(
                        *store.expansion(nt, pos, dir),
                        idx.rule_expansion(nt, pos as usize, dir),
                        "nt {nt} pos {pos} {dir:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_ids_error_cleanly() {
        let (store, _) = store_for(8);
        let n = store.total_nodes();
        for q in [
            Query::OutNeighbors(n),
            Query::InNeighbors(n + 100),
            Query::Neighbors(u64::MAX),
            Query::Reach { s: 0, t: n },
            Query::Reach { s: n, t: 0 },
            Query::Rpq { s: n, t: 0, pattern: "0".into() },
        ] {
            let err = store.query(&q).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("out of range"), "{q:?}: {msg}");
            assert!(msg.contains(&format!("0..{n}")), "{q:?}: {msg}");
        }
        assert_eq!(store.stats().errors, 6);
    }

    #[test]
    fn batch_answers_match_individual() {
        let (store, g) = store_for(16);
        let n = store.total_nodes();
        let mut queries = Vec::new();
        for i in 0..n {
            queries.push(Query::OutNeighbors(i));
            queries.push(Query::Reach { s: 0, t: i });
            queries.push(Query::Reach { s: i, t: n - 1 });
        }
        queries.push(Query::Components);
        queries.push(Query::DegreeExtrema);
        queries.push(Query::Rpq { s: 0, t: 2, pattern: "0 1".into() });
        let batch = store.query_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, a) in queries.iter().zip(&batch) {
            // Individual path must agree (fresh per-query source closures).
            assert_eq!(a, &store.query(q), "{q:?}");
        }
        // Cross-check a few against the derived graph.
        let derived = store.grammar().derive();
        assert_eq!(derived.num_nodes() as u64, n);
        assert_eq!(store.components(), 1);
        let _ = g;
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let (store, _) = store_for(24);
        let n = store.total_nodes();
        let mut queries = mixed_queries(n, 600);
        // Sprinkle in errors: order and Err values must survive the fan-out.
        for i in (0..queries.len()).step_by(37) {
            queries[i] = Query::OutNeighbors(n + i as u64);
        }
        let sequential = store.query_batch(&queries);
        for threads in [2, 3, 8] {
            let parallel = store.query_batch_parallel(&queries, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
                assert_eq!(p, s, "answer {i} with {threads} threads: {:?}", queries[i]);
            }
        }
        let stats = store.stats();
        assert_eq!(stats.parallel_batches, 3, "{stats}");
        assert_eq!(stats.batches, 4, "{stats}");
    }

    #[test]
    fn parallel_batch_degenerate_inputs() {
        let (store, _) = store_for(4);
        assert!(store.query_batch_parallel(&[], 8).is_empty());
        let one = store.query_batch_parallel(&[Query::Components], 8);
        assert_eq!(one.len(), 1);
        // threads = 0 falls back to the sequential path.
        let zero = store.query_batch_parallel(&[Query::Components], 0);
        assert_eq!(zero, one);
        assert_eq!(store.stats().parallel_batches, 0);
    }

    #[test]
    fn custom_executor_gets_input_ordered_answers() {
        // A deliberately perverse executor: runs jobs one at a time, in
        // reverse submission order. Answers must still come back in input
        // order — the slots, not the execution order, define it.
        struct Reversed(usize);
        impl BatchExecutor for Reversed {
            fn max_workers(&self) -> usize {
                self.0
            }
            fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
                for job in jobs.into_iter().rev() {
                    job();
                }
            }
        }
        let (store, _) = store_for(16);
        let n = store.total_nodes();
        let mut queries = mixed_queries(n, 200);
        queries[7] = Query::OutNeighbors(n + 7); // an error must survive too
        let expected = store.query_batch(&queries);
        for workers in [2, 3, 7] {
            assert_eq!(store.query_batch_on(&queries, &Reversed(workers)), expected);
        }
        // workers ≤ 1 falls back to the sequential path (not counted as a
        // parallel batch).
        assert_eq!(store.query_batch_on(&queries, &Reversed(1)), expected);
        let stats = store.stats();
        assert_eq!(stats.parallel_batches, 3, "{stats}");
    }

    #[test]
    fn fresh_stores_are_generation_one() {
        let (store, _) = store_for(4);
        assert_eq!(store.generation(), 1);
        assert_eq!(store.stats().generation, 1);
        let rendered = store.stats().to_string();
        assert!(rendered.starts_with("generation=1 "), "{rendered}");
    }

    #[test]
    fn memoized_hits_share_the_answer_allocation() {
        // The clone-free hit path: duplicate queries in one batch return the
        // same Arc, not a deep copy of the neighbor list.
        let (store, _) = store_for(16);
        let batch = [
            Query::OutNeighbors(3),
            Query::Neighbors(5),
            Query::OutNeighbors(3),
            Query::Neighbors(5),
        ];
        let answers = store.query_batch(&batch);
        let a = answers[0].as_ref().unwrap();
        let b = answers[2].as_ref().unwrap();
        assert!(Arc::ptr_eq(a, b), "duplicate answers must share one allocation");
        let c = answers[1].as_ref().unwrap();
        let d = answers[3].as_ref().unwrap();
        assert!(Arc::ptr_eq(c, d));
        // Exactly the two batch slots hold the allocation (the per-batch
        // memo is dropped when `query_batch` returns): the duplicate cost
        // one Arc clone, zero Vec clones.
        assert_eq!(Arc::strong_count(a), 2);
    }

    #[test]
    fn expansion_hits_are_arc_clones() {
        let (store, _) = store_for(16);
        // Warm the cache, then check a hit shares the allocation.
        let first = store.expansion(0, 0, Direction::Out);
        let count_before = Arc::strong_count(&first);
        let second = store.expansion(0, 0, Direction::Out);
        assert!(Arc::ptr_eq(&first, &second), "hit must be the cached allocation");
        assert_eq!(Arc::strong_count(&first), count_before + 1);
        let s = store.stats();
        assert!(s.expansion_cache_hits >= 1, "{s}");
    }

    #[test]
    fn batch_reuses_sources_and_plans() {
        let (store, _) = store_for(16);
        let n = store.total_nodes();
        let queries: Vec<Query> = (0..n)
            .flat_map(|t| {
                [
                    Query::Reach { s: 0, t },
                    Query::Rpq { s: 0, t, pattern: "0* 1*".into() },
                ]
            })
            .collect();
        let answers = store.query_batch(&queries);
        assert!(answers.iter().all(|a| a.is_ok()));
        let s = store.stats();
        // One plan compiled, reused for every rpq in the batch.
        assert_eq!(s.rpq_plan_misses, 1, "{s}");
        assert_eq!(s.rpq_plan_hits, n - 1, "{s}");
        assert_eq!(s.batches, 1);
        assert_eq!(s.queries_served, 2 * n);
    }

    #[test]
    fn concurrent_individual_queries_keep_counters_exact() {
        let (store, _) = store_for(16);
        let n = store.total_nodes();
        let per_thread = 500u64;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let q = match (t + i) % 3 {
                            0 => Query::OutNeighbors(i % n),
                            1 => Query::Reach { s: i % n, t: (i * 3) % n },
                            // Every thread's last id is out of range.
                            _ => Query::InNeighbors(n + i),
                        };
                        let _ = store.query(&q);
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.queries_served, 4 * per_thread);
        // Each thread hits the out-of-range arm ⌈500/3⌉ or ⌊500/3⌋ times
        // depending on its phase; the exact total is deterministic.
        let expected_errors: u64 = (0..4u64)
            .map(|t| (0..per_thread).filter(|i| (t + i) % 3 == 2).count() as u64)
            .sum();
        assert_eq!(stats.errors, expected_errors, "{stats}");
    }

    #[test]
    fn from_grammar_revalidates() {
        // A grammar with a dangling nonterminal reference must be rejected,
        // not served.
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(EdgeLabel::Nonterminal(0), &[0, 1]);
        let grammar = Grammar::new(start, 1);
        assert!(GraphStore::from_grammar(grammar).is_err());
    }
}
