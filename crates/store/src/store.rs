//! The long-lived query-serving store.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use grepair_grammar::Grammar;
use grepair_hypergraph::{EdgeId, EdgeLabel, NodeId};
use grepair_queries::neighbors::Direction;
use grepair_queries::reach::SourceClosure;
use grepair_queries::{speedup, GrammarIndex, QueryError, ReachIndex, RpqIndex};
use grepair_util::FxHashMap;

use crate::query::{compile_pattern, Query, QueryAnswer};
use crate::GrepairError;

/// Container magic for `.g2g` files (shared with the CLI writer).
pub const MAGIC: &[u8; 4] = b"G2G1";
/// Container header size: magic + little-endian `u64` bit length.
pub const HEADER_LEN: usize = 12;

/// Split a `.g2g` container into its claimed bit length and payload.
///
/// Only the *container* is judged here; whether the payload actually holds
/// `bit_len` coherent bits is the codec's job.
pub fn parse_container(file: &[u8]) -> Result<(u64, &[u8]), GrepairError> {
    if file.len() < HEADER_LEN {
        return Err(GrepairError::Container(format!(
            "{} bytes is shorter than the {HEADER_LEN}-byte header",
            file.len()
        )));
    }
    if &file[..4] != MAGIC {
        return Err(GrepairError::Container("bad magic".into()));
    }
    let bit_len = u64::from_le_bytes(file[4..HEADER_LEN].try_into().expect("4..12 is 8 bytes"));
    Ok((bit_len, &file[HEADER_LEN..]))
}

/// Wrap an encoded grammar in the `.g2g` container format.
pub fn write_container(bytes: &[u8], bit_len: u64) -> Vec<u8> {
    let mut file = Vec::with_capacity(bytes.len() + HEADER_LEN);
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&bit_len.to_le_bytes());
    file.extend_from_slice(bytes);
    file
}

/// One memoized rule expansion: the neighbors one `(nt, ext position,
/// direction)` combination contributes, as rule-relative `(path, node)`
/// pairs (see [`GrammarIndex::rule_expansion`]).
type Expansion = Arc<Vec<(Vec<EdgeId>, NodeId)>>;
/// Cache key: `(nonterminal, external position, direction)`.
type ExpansionKey = (u32, u32, Direction);

/// Monotonic serving counters (internal; snapshot via [`StoreStats`]).
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    batches: AtomicU64,
    errors: AtomicU64,
    expansion_hits: AtomicU64,
    expansion_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

/// A point-in-time snapshot of a store's serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Decode + index-build operations performed for this store (1 unless a
    /// future reload API grows it).
    pub loads: u64,
    /// Queries answered (each element of a batch counts once).
    pub queries_served: u64,
    /// `query_batch` invocations.
    pub batches: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Memoized rule-expansion lookups that hit.
    pub expansion_cache_hits: u64,
    /// Memoized rule-expansion lookups that missed (and computed).
    pub expansion_cache_misses: u64,
    /// RPQ plan-cache hits (pattern already compiled against this grammar).
    pub rpq_plan_hits: u64,
    /// RPQ plan-cache misses.
    pub rpq_plan_misses: u64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loads={} queries={} batches={} errors={} expansion_cache={}/{} rpq_plans={}/{}",
            self.loads,
            self.queries_served,
            self.batches,
            self.errors,
            self.expansion_cache_hits,
            self.expansion_cache_hits + self.expansion_cache_misses,
            self.rpq_plan_hits,
            self.rpq_plan_hits + self.rpq_plan_misses,
        )
    }
}

/// A loaded compressed graph, indexed once, serving forever.
///
/// `GraphStore` is the serving-grade counterpart of the one-shot CLI path:
/// it decodes a `.g2g` through a fully fallible pipeline (no panic on any
/// byte sequence), eagerly builds the navigation and reachability indexes,
/// and then answers any number of [`Query`]s — individually via
/// [`GraphStore::query`] or amortized via [`GraphStore::query_batch`].
///
/// All interior mutability is synchronized, so one store can be shared
/// across threads (`&GraphStore: Send + Sync`).
#[derive(Debug)]
pub struct GraphStore {
    grammar: Arc<Grammar>,
    /// G-representation navigation (Prop. 4), built eagerly.
    index: GrammarIndex<Arc<Grammar>>,
    /// Skeleton-based reachability (Thm. 6), built eagerly.
    reach: ReachIndex<Arc<Grammar>>,
    /// Memoized rule expansions — hot on hub nodes, whose incident
    /// nonterminal edges repeat few distinct labels.
    expansions: Mutex<FxHashMap<ExpansionKey, Expansion>>,
    /// Compiled RPQ plans per canonical pattern text.
    plans: Mutex<FxHashMap<String, Arc<RpqIndex<Arc<Grammar>>>>>,
    /// Whole-graph aggregates, computed at most once.
    components: OnceLock<u64>,
    degrees: OnceLock<Option<(u64, u64)>>,
    counters: Counters,
    loads: u64,
}

impl GraphStore {
    /// Build a store from an already-validated (or freshly compressed)
    /// grammar. Validation runs again here — the store's zero-panic
    /// guarantee must not depend on the caller's discipline.
    pub fn from_grammar(grammar: Grammar) -> Result<Self, GrepairError> {
        grammar
            .validate()
            .map_err(|e| GrepairError::Codec(grepair_codec::CodecError::Malformed(e)))?;
        let grammar = Arc::new(grammar);
        Ok(Self {
            index: GrammarIndex::new(grammar.clone()),
            reach: ReachIndex::new(grammar.clone()),
            grammar,
            expansions: Mutex::new(FxHashMap::default()),
            plans: Mutex::new(FxHashMap::default()),
            components: OnceLock::new(),
            degrees: OnceLock::new(),
            counters: Counters::default(),
            loads: 1,
        })
    }

    /// Decode a `.g2g` container image and build the store.
    pub fn from_bytes(file: &[u8]) -> Result<Self, GrepairError> {
        let (bit_len, payload) = parse_container(file)?;
        let grammar = grepair_codec::decode(payload, bit_len)?;
        Self::from_grammar(grammar)
    }

    /// Load a `.g2g` file and build the store.
    pub fn open(path: &str) -> Result<Self, GrepairError> {
        let file = std::fs::read(path)
            .map_err(|e| GrepairError::Io { path: path.into(), error: e.to_string() })?;
        Self::from_bytes(&file)
    }

    /// The grammar being served.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Number of nodes of `val(G)` — valid query ids are `0..total_nodes()`.
    pub fn total_nodes(&self) -> u64 {
        self.index.total_nodes
    }

    /// Snapshot the serving statistics.
    pub fn stats(&self) -> StoreStats {
        let c = &self.counters;
        StoreStats {
            loads: self.loads,
            queries_served: c.queries.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            expansion_cache_hits: c.expansion_hits.load(Ordering::Relaxed),
            expansion_cache_misses: c.expansion_misses.load(Ordering::Relaxed),
            rpq_plan_hits: c.plan_hits.load(Ordering::Relaxed),
            rpq_plan_misses: c.plan_misses.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Individual queries
    // ------------------------------------------------------------------

    /// Out-neighbors of `v`, sorted ascending.
    pub fn out_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        Ok(self.collect_neighbors(v, Direction::Out)?)
    }

    /// In-neighbors of `v`, sorted ascending.
    pub fn in_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        Ok(self.collect_neighbors(v, Direction::In)?)
    }

    /// Union of both directions, sorted and deduplicated.
    pub fn neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let mut out = self.collect_neighbors(v, Direction::Out)?;
        out.extend(self.collect_neighbors(v, Direction::In)?);
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Is `t` reachable from `s`?
    pub fn reachable(&self, s: u64, t: u64) -> Result<bool, GrepairError> {
        Ok(self.reach.try_reachable(s, t)?)
    }

    /// Does some `s → t` path spell a word of the pattern's language?
    pub fn rpq(&self, pattern: &str, s: u64, t: u64) -> Result<bool, GrepairError> {
        let plan = self.plan(pattern)?;
        Ok(plan.try_matches(s, t)?)
    }

    /// Number of connected components of `val(G)` (memoized).
    pub fn components(&self) -> u64 {
        *self
            .components
            .get_or_init(|| speedup::connected_components(&self.grammar))
    }

    /// `(min, max)` degree over `val(G)` (memoized; `None` when empty).
    pub fn degree_extrema(&self) -> Option<(u64, u64)> {
        *self
            .degrees
            .get_or_init(|| speedup::degree_extrema(&self.grammar))
    }

    /// Answer one query, updating the serving counters.
    pub fn query(&self, q: &Query) -> Result<QueryAnswer, GrepairError> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let result = self.answer(q, &mut FxHashMap::default());
        if result.is_err() {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    // ------------------------------------------------------------------
    // Batched queries
    // ------------------------------------------------------------------

    /// Answer many queries at once, amortizing shared work:
    ///
    /// * duplicate queries are answered once and the answer cloned,
    /// * `reach` queries sharing a source reuse one forward closure
    ///   ([`ReachIndex::try_source`]) instead of recomputing it per target,
    /// * rule expansions and RPQ plans hit the store-wide caches.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<QueryAnswer, GrepairError>> {
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let mut sources: FxHashMap<u64, Result<SourceClosure, QueryError>> = FxHashMap::default();
        let mut memo: FxHashMap<&Query, Result<QueryAnswer, GrepairError>> = FxHashMap::default();
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            let answer = match memo.get(q) {
                Some(hit) => hit.clone(),
                None => {
                    let computed = self.answer(q, &mut sources);
                    memo.insert(q, computed.clone());
                    computed
                }
            };
            if answer.is_err() {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            out.push(answer);
        }
        out
    }

    /// Shared worker for [`GraphStore::query`] / [`GraphStore::query_batch`]:
    /// `sources` carries the per-batch forward-closure reuse (empty and
    /// discarded for single queries).
    fn answer(
        &self,
        q: &Query,
        sources: &mut FxHashMap<u64, Result<SourceClosure, QueryError>>,
    ) -> Result<QueryAnswer, GrepairError> {
        Ok(match q {
            Query::OutNeighbors(v) => QueryAnswer::Nodes(self.out_neighbors(*v)?),
            Query::InNeighbors(v) => QueryAnswer::Nodes(self.in_neighbors(*v)?),
            Query::Neighbors(v) => QueryAnswer::Nodes(self.neighbors(*v)?),
            Query::Reach { s, t } if s == t => {
                // Trivially true for valid ids — skip the forward closure.
                QueryAnswer::Bool(self.reach.try_reachable(*s, *t)?)
            }
            Query::Reach { s, t } => {
                let src = sources
                    .entry(*s)
                    .or_insert_with(|| self.reach.try_source(*s));
                match src {
                    Ok(closure) => QueryAnswer::Bool(self.reach.try_reachable_from(closure, *t)?),
                    Err(e) => return Err(e.clone().into()),
                }
            }
            Query::Rpq { s, t, pattern } => QueryAnswer::Bool(self.rpq(pattern, *s, *t)?),
            Query::Components => QueryAnswer::Count(self.components()),
            Query::DegreeExtrema => QueryAnswer::Extrema(self.degree_extrema()),
        })
    }

    // ------------------------------------------------------------------
    // Caches
    // ------------------------------------------------------------------

    /// Neighbor collection with memoized nonterminal descent. The context
    /// scan mirrors `GrammarIndex::neighbors`; the descent into each
    /// nonterminal edge is replaced by a cache of rule-relative expansions
    /// (see [`GrammarIndex::rule_expansion`] for the uncached reference).
    fn collect_neighbors(&self, k: u64, dir: Direction) -> Result<Vec<u64>, QueryError> {
        let repr = self.index.try_locate(k)?;
        let ctx = self.index.context(&repr.path);
        let mut out = Vec::new();
        let mut full: Vec<EdgeId> = repr.path.clone();
        for e in ctx.incident(repr.node) {
            let att = ctx.att(e);
            match ctx.label(e) {
                EdgeLabel::Terminal(_) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let neighbor = match dir {
                        Direction::Out if att[0] == repr.node => att[1],
                        Direction::In if att[1] == repr.node => att[0],
                        _ => continue,
                    };
                    out.push(self.index.global_id(&repr.path, neighbor));
                }
                EdgeLabel::Nonterminal(nt) => {
                    for (pos, &x) in att.iter().enumerate() {
                        if x != repr.node {
                            continue;
                        }
                        let exp = self.expansion(nt, pos as u32, dir);
                        for (rel, node) in exp.iter() {
                            full.truncate(repr.path.len());
                            full.push(e);
                            full.extend_from_slice(rel);
                            out.push(self.index.global_id(&full, *node));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Memoized rule-relative expansion for `(nt, ext position, dir)`.
    fn expansion(&self, nt: u32, pos: u32, dir: Direction) -> Expansion {
        let key: ExpansionKey = (nt, pos, dir);
        {
            let map = self.expansions.lock().expect("expansion cache poisoned");
            if let Some(hit) = map.get(&key) {
                self.counters.expansion_hits.fetch_add(1, Ordering::Relaxed);
                return hit.clone();
            }
        }
        // Compute outside the lock: the recursion below re-enters
        // `expansion` for nested nonterminals (sharing their entries too).
        self.counters.expansion_misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(self.compute_expansion(nt, pos, dir));
        let mut map = self.expansions.lock().expect("expansion cache poisoned");
        map.entry(key).or_insert(computed).clone()
    }

    /// Uncached expansion body; straight-line grammars make the recursion
    /// (over strictly smaller nonterminals) finite.
    fn compute_expansion(&self, nt: u32, pos: u32, dir: Direction) -> Vec<(Vec<EdgeId>, NodeId)> {
        let rhs = self.grammar.rule(nt);
        let Some(&v) = rhs.ext().get(pos as usize) else { return Vec::new() };
        let mut out = Vec::new();
        for e in rhs.incident(v) {
            let att = rhs.att(e);
            match rhs.label(e) {
                EdgeLabel::Terminal(_) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let neighbor = match dir {
                        Direction::Out if att[0] == v => att[1],
                        Direction::In if att[1] == v => att[0],
                        _ => continue,
                    };
                    out.push((Vec::new(), neighbor));
                }
                EdgeLabel::Nonterminal(sub) => {
                    for (p2, &x) in att.iter().enumerate() {
                        if x != v {
                            continue;
                        }
                        let nested = self.expansion(sub, p2 as u32, dir);
                        for (rel, node) in nested.iter() {
                            let mut path = Vec::with_capacity(rel.len() + 1);
                            path.push(e);
                            path.extend_from_slice(rel);
                            out.push((path, *node));
                        }
                    }
                }
            }
        }
        out
    }

    /// Compiled-plan lookup for an RPQ pattern.
    fn plan(&self, pattern: &str) -> Result<Arc<RpqIndex<Arc<Grammar>>>, GrepairError> {
        {
            let map = self.plans.lock().expect("plan cache poisoned");
            if let Some(hit) = map.get(pattern) {
                self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit.clone());
            }
        }
        self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
        let nfa = compile_pattern(pattern)?;
        let plan = Arc::new(RpqIndex::new(self.grammar.clone(), nfa));
        let mut map = self.plans.lock().expect("plan cache poisoned");
        Ok(map.entry(pattern.to_string()).or_insert(plan).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_core::{compress, GRePairConfig};
    use grepair_hypergraph::Hypergraph;

    fn store_for(reps: u32) -> (GraphStore, Hypergraph) {
        let (g, _) = Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        );
        let out = compress(&g, &GRePairConfig::default());
        let encoded = grepair_codec::encode(&out.grammar);
        let file = write_container(&encoded.bytes, encoded.bit_len);
        (GraphStore::from_bytes(&file).unwrap(), g)
    }

    #[test]
    fn neighbors_match_uncached_index() {
        let (store, _) = store_for(32);
        let idx = GrammarIndex::new(store.grammar());
        for k in 0..store.total_nodes() {
            assert_eq!(store.out_neighbors(k).unwrap(), idx.out_neighbors(k), "out {k}");
            assert_eq!(store.in_neighbors(k).unwrap(), idx.in_neighbors(k), "in {k}");
        }
        let s = store.stats();
        assert!(s.expansion_cache_hits > 0, "repeated labels must hit: {s}");
    }

    #[test]
    fn cached_expansion_matches_reference() {
        let (store, _) = store_for(24);
        let idx = GrammarIndex::new(store.grammar());
        for nt in 0..store.grammar().num_nonterminals() as u32 {
            let rank = store.grammar().nt_rank(nt);
            for pos in 0..rank as u32 {
                for dir in [Direction::Out, Direction::In] {
                    assert_eq!(
                        *store.expansion(nt, pos, dir),
                        idx.rule_expansion(nt, pos as usize, dir),
                        "nt {nt} pos {pos} {dir:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_ids_error_cleanly() {
        let (store, _) = store_for(8);
        let n = store.total_nodes();
        for q in [
            Query::OutNeighbors(n),
            Query::InNeighbors(n + 100),
            Query::Neighbors(u64::MAX),
            Query::Reach { s: 0, t: n },
            Query::Reach { s: n, t: 0 },
            Query::Rpq { s: n, t: 0, pattern: "0".into() },
        ] {
            let err = store.query(&q).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("out of range"), "{q:?}: {msg}");
            assert!(msg.contains(&format!("0..{n}")), "{q:?}: {msg}");
        }
        assert_eq!(store.stats().errors, 6);
    }

    #[test]
    fn batch_answers_match_individual() {
        let (store, g) = store_for(16);
        let n = store.total_nodes();
        let mut queries = Vec::new();
        for i in 0..n {
            queries.push(Query::OutNeighbors(i));
            queries.push(Query::Reach { s: 0, t: i });
            queries.push(Query::Reach { s: i, t: n - 1 });
        }
        queries.push(Query::Components);
        queries.push(Query::DegreeExtrema);
        queries.push(Query::Rpq { s: 0, t: 2, pattern: "0 1".into() });
        let batch = store.query_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, a) in queries.iter().zip(&batch) {
            // Individual path must agree (fresh per-query source closures).
            assert_eq!(a, &store.query(q), "{q:?}");
        }
        // Cross-check a few against the derived graph.
        let derived = store.grammar().derive();
        assert_eq!(derived.num_nodes() as u64, n);
        assert_eq!(store.components(), 1);
        let _ = g;
    }

    #[test]
    fn batch_reuses_sources_and_plans() {
        let (store, _) = store_for(16);
        let n = store.total_nodes();
        let queries: Vec<Query> = (0..n)
            .flat_map(|t| {
                [
                    Query::Reach { s: 0, t },
                    Query::Rpq { s: 0, t, pattern: "0* 1*".into() },
                ]
            })
            .collect();
        let answers = store.query_batch(&queries);
        assert!(answers.iter().all(|a| a.is_ok()));
        let s = store.stats();
        // One plan compiled, reused for every rpq in the batch.
        assert_eq!(s.rpq_plan_misses, 1, "{s}");
        assert_eq!(s.rpq_plan_hits, n - 1, "{s}");
        assert_eq!(s.batches, 1);
        assert_eq!(s.queries_served, 2 * n);
    }

    #[test]
    fn from_grammar_revalidates() {
        // A grammar with a dangling nonterminal reference must be rejected,
        // not served.
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(EdgeLabel::Nonterminal(0), &[0, 1]);
        let grammar = Grammar::new(start, 1);
        assert!(GraphStore::from_grammar(grammar).is_err());
    }
}
