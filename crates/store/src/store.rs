//! The long-lived query-serving store.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use grepair_grammar::Grammar;
use grepair_queries::neighbors::Direction;
use grepair_queries::reach::SourceClosure;
use grepair_queries::{GRepr, QueryError, RpqSourceClosure};
use grepair_util::{FxHashMap, FxHashSet};

use crate::backend::{self, QueryEngine};
use crate::cache::ShardedMap;
use crate::engine::{GrammarEngine, Scratch};
use crate::query::{Query, QueryAnswer};
use crate::GrepairError;

/// Container magic for legacy `.g2g` files (shared with the CLI writer; the
/// gRePair backend still writes exactly this format — see
/// [`crate::backend::split_any_container`] for the multi-backend layout).
pub const MAGIC: &[u8; 4] = b"G2G1";
/// Legacy container header size: magic + little-endian `u64` bit length.
pub const HEADER_LEN: usize = 12;

/// Split a legacy `.g2g` container into its claimed bit length and payload.
///
/// Only the *container* is judged here; whether the payload actually holds
/// `bit_len` coherent bits is the codec's job. Tagged multi-backend
/// containers go through [`crate::backend::split_any_container`], which
/// calls this for files carrying the legacy magic.
pub fn parse_container(file: &[u8]) -> Result<(u64, &[u8]), GrepairError> {
    if file.len() < HEADER_LEN {
        return Err(GrepairError::Container(format!(
            "{} bytes is shorter than the {HEADER_LEN}-byte header",
            file.len()
        )));
    }
    // audited: file.len() >= HEADER_LEN >= 4 was checked just above
    if &file[..4] != MAGIC {
        return Err(GrepairError::Container("bad magic".into()));
    }
    // audited: 4..HEADER_LEN is exactly 8 bytes, inside the checked header
    let bit_len = u64::from_le_bytes(file[4..HEADER_LEN].try_into().expect("4..12 is 8 bytes"));
    // audited: file.len() >= HEADER_LEN was checked just above
    Ok((bit_len, &file[HEADER_LEN..]))
}

/// Wrap an encoded grammar in the legacy `.g2g` container format (the
/// gRePair backend's on-disk bytes, unchanged across the backend redesign).
pub fn write_container(bytes: &[u8], bit_len: u64) -> Vec<u8> {
    let mut file = Vec::with_capacity(bytes.len() + HEADER_LEN);
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&bit_len.to_le_bytes());
    file.extend_from_slice(bytes);
    file
}

/// What every query entry point returns: a shared handle to the answer, so
/// cache and memo hits are `Arc` clones, never `Vec` copies.
type AnswerResult = Result<Arc<QueryAnswer>, GrepairError>;

/// Something that can run a set of borrowed jobs to completion — the seam
/// between the store's batch partitioning and whoever owns the threads.
///
/// [`GraphStore::query_batch_parallel`] plugs in a spawn-per-batch
/// implementation (scoped `std::thread`s); a long-lived server plugs in a
/// reusable worker pool (`grepair-server`'s `WorkerPool`), so small batches
/// stop paying the per-batch spawn cost. The batch being fanned out may be
/// served by *any* registered backend — the jobs capture `&GraphStore`,
/// which dispatches to the engine behind it.
///
/// # Contract
///
/// `scope` must run (or at worst drop) every job before returning — the
/// jobs borrow the caller's stack. Safe implementations can only uphold
/// this (a borrowed job cannot be smuggled past `scope`'s return without
/// `unsafe`); implementations using `unsafe` to ship jobs to long-lived
/// threads must block until all jobs are done.
pub trait BatchExecutor {
    /// How many jobs one batch should be split into at most (usually the
    /// number of worker threads).
    fn max_workers(&self) -> usize;

    /// Run every job to completion before returning.
    fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>);
}

/// The executor behind [`GraphStore::query_batch_parallel`]: fresh scoped
/// threads per batch. Spawn cost is amortized over large batches (the
/// intended usage — ~tens of microseconds per call); serving stacks that
/// answer many small batches should pass a pooled [`BatchExecutor`] to
/// [`GraphStore::query_batch_on`] instead.
struct ScopedSpawner(usize);

impl BatchExecutor for ScopedSpawner {
    fn max_workers(&self) -> usize {
        self.0
    }

    fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        // `thread::scope` joins every worker before returning and propagates
        // any panic, which satisfies the run-to-completion contract.
        std::thread::scope(|scope| {
            for job in jobs {
                scope.spawn(job);
            }
        });
    }
}

/// Monotonic serving counters. Every counter is an [`AtomicU64`] bumped with
/// `Relaxed` ordering — correct under the concurrent batch paths (each
/// increment lands exactly once) and free of any lock. The grammar engine's
/// cache hit/miss counters live with the engine (`engine::CacheCounters`).
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    batches: AtomicU64,
    parallel_batches: AtomicU64,
    errors: AtomicU64,
}

/// A point-in-time snapshot of a store's serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Which generation of a [`crate::StoreRegistry`] this store is: `1`
    /// for a store that was never registered or registered first, and a
    /// strictly larger number for every store a reload swapped in (the
    /// registry's monotonic counter). Echoed by the wire protocol's
    /// `STATS`/`INFO` admin replies (DESIGN.md §6) so clients can observe
    /// a hot reload taking effect.
    pub generation: u64,
    /// Which compression backend is serving (`grepair`, `k2`, `lm`, `hn` —
    /// see DESIGN.md §7). Echoed by `STATS`/`INFO` so clients can observe
    /// a cross-backend reload.
    pub backend: &'static str,
    /// Decode + index-build operations performed for this store (always 1:
    /// a reload builds a *new* store — see [`crate::StoreRegistry`]).
    pub loads: u64,
    /// Queries answered (each element of a batch counts once).
    pub queries_served: u64,
    /// `query_batch` + `query_batch_parallel` invocations.
    pub batches: u64,
    /// [`GraphStore::query_batch_parallel`] invocations that actually fanned
    /// out to worker threads (also counted in `batches`).
    pub parallel_batches: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Size of the container image this store was decoded from, in bytes —
    /// the currency of the registry's `--memory-budget` (DESIGN.md §8).
    /// `0` for stores built in memory ([`GraphStore::from_grammar`] /
    /// [`GraphStore::from_engine`]), which are never evicted.
    pub resident_bytes: u64,
    /// Memoized rule-expansion lookups that hit (grammar backend; 0
    /// elsewhere).
    pub expansion_cache_hits: u64,
    /// Memoized rule-expansion lookups that missed (and computed).
    pub expansion_cache_misses: u64,
    /// RPQ plan-cache hits (pattern already compiled against this grammar;
    /// grammar backend only).
    pub rpq_plan_hits: u64,
    /// RPQ plan-cache misses.
    pub rpq_plan_misses: u64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "generation={} loads={} queries={} batches={} (parallel={}) errors={} expansion_cache={}/{} rpq_plans={}/{} resident_bytes={} backend={}",
            self.generation,
            self.loads,
            self.queries_served,
            self.batches,
            self.parallel_batches,
            self.errors,
            self.expansion_cache_hits,
            self.expansion_cache_hits + self.expansion_cache_misses,
            self.rpq_plan_hits,
            self.rpq_plan_hits + self.rpq_plan_misses,
            self.resident_bytes,
            self.backend,
        )
    }
}

/// What one pre-scan over the batch says is worth sharing. Amortization is
/// only free when something repeats: memoizing a query nobody asks twice,
/// or caching a source closure nobody reuses, is pure overhead (hash,
/// clone, lock) on the hot path. The plan is built once per batch in O(n)
/// and consulted read-only by every worker thread, lock-free.
struct BatchPlan<'q> {
    /// Queries occurring ≥ 2 times — the only ones the memo admits.
    duplicates: FxHashSet<&'q Query>,
    /// Sources of ≥ 2 (non-trivial) `reach` queries.
    shared_reach: FxHashSet<u64>,
    /// (pattern, source) pairs of ≥ 2 `rpq` queries.
    shared_rpq: FxHashSet<(&'q str, u64)>,
    /// Nodes named by ≥ 2 neighbor queries (`out`/`in`/`neighbors` mix).
    shared_nodes: FxHashSet<u64>,
}

impl<'q> BatchPlan<'q> {
    /// One hash set probe per query tells the hot path whether to bother —
    /// empty sets short-circuit before hashing.
    fn has_duplicates(&self) -> bool {
        !self.duplicates.is_empty()
    }

    fn new(queries: &'q [Query]) -> Self {
        let cap = queries.len();
        let mut query_count: FxHashMap<&Query, u32> =
            FxHashMap::with_capacity_and_hasher(cap, Default::default());
        let mut reach_count: FxHashMap<u64, u32> =
            FxHashMap::with_capacity_and_hasher(cap / 4, Default::default());
        let mut rpq_count: FxHashMap<(&str, u64), u32> =
            FxHashMap::with_capacity_and_hasher(cap / 4, Default::default());
        let mut node_count: FxHashMap<u64, u32> =
            FxHashMap::with_capacity_and_hasher(cap / 4, Default::default());
        for q in queries {
            *query_count.entry(q).or_default() += 1;
            match q {
                Query::Reach { s, t } if s != t => *reach_count.entry(*s).or_default() += 1,
                Query::Rpq { s, pattern, .. } => {
                    *rpq_count.entry((pattern.as_str(), *s)).or_default() += 1
                }
                Query::OutNeighbors(v) | Query::InNeighbors(v) | Query::Neighbors(v) => {
                    *node_count.entry(*v).or_default() += 1
                }
                _ => {}
            }
        }
        let repeated = |m: FxHashMap<u64, u32>| {
            m.into_iter().filter(|&(_, c)| c >= 2).map(|(k, _)| k).collect()
        };
        Self {
            duplicates: query_count
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                .map(|(q, _)| q)
                .collect(),
            shared_reach: repeated(reach_count),
            shared_rpq: rpq_count
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                .map(|(k, _)| k)
                .collect(),
            shared_nodes: repeated(node_count),
        }
    }
}

/// Per-batch shared state: everything that lets one request's work pay for
/// the next request's. Internally sharded ([`ShardedMap`]) and keyed by
/// references into the batch slice (no `Query`/pattern clones), so the same
/// context is shared *across worker threads* by
/// [`GraphStore::query_batch_parallel`] without a global lock.
///
/// The duplicate memo applies to every backend; the three closure/locate
/// maps are grammar-shaped levers and engage only when the grammar engine
/// is serving.
struct BatchContext<'q> {
    /// Which keys are worth admitting into the maps below.
    plan: BatchPlan<'q>,
    /// Duplicate queries collapse to one computation; hits are `Arc` clones.
    memo: ShardedMap<&'q Query, AnswerResult>,
    /// `reach` queries sharing a source reuse one forward closure.
    reach_sources: ShardedMap<u64, Result<Arc<SourceClosure>, QueryError>>,
    /// `rpq` queries sharing (pattern, source) reuse one product closure.
    rpq_sources: ShardedMap<(&'q str, u64), Result<Arc<RpqSourceClosure>, QueryError>>,
    /// Neighbor queries against the same node (`out v` / `in v` /
    /// `neighbors v`) share one `locate` descent; distinct nodes under the
    /// same rule subtree additionally share the store-wide expansions.
    locates: ShardedMap<u64, Result<Arc<GRepr>, QueryError>>,
}

impl<'q> BatchContext<'q> {
    fn new(queries: &'q [Query]) -> Self {
        Self {
            plan: BatchPlan::new(queries),
            memo: ShardedMap::default(),
            reach_sources: ShardedMap::default(),
            rpq_sources: ShardedMap::default(),
            locates: ShardedMap::default(),
        }
    }
}

/// The engine behind a store: the grammar engine is held unboxed because
/// the batch machinery reaches into its reach/RPQ/locate internals for the
/// per-batch sharing levers; every other backend is a [`QueryEngine`]
/// trait object served through the same dispatch.
#[derive(Debug)]
enum EngineSlot {
    Grammar(Box<GrammarEngine>),
    External(Box<dyn QueryEngine>),
}

/// A loaded compressed graph, indexed once, serving forever.
///
/// `GraphStore` is the serving-grade counterpart of the one-shot CLI path:
/// it loads a container through a fully fallible pipeline (no panic on any
/// byte sequence), dispatches to the backend the container's header names
/// (DESIGN.md §7 — legacy `.g2g` files are detected as the gRePair
/// grammar), eagerly builds that backend's indexes, and then answers any
/// number of [`Query`]s — individually via [`GraphStore::query`], amortized
/// via [`GraphStore::query_batch`], or across worker threads via
/// [`GraphStore::query_batch_parallel`].
///
/// All interior mutability is synchronized (sharded `RwLock` caches, atomic
/// counters), so one store can be shared across threads
/// (`&GraphStore: Send + Sync`) and the read-mostly hot path scales with
/// cores instead of serializing on a global lock. Answers come back as
/// `Arc<QueryAnswer>`: a memoized hit is a pointer clone, never a deep copy
/// of a neighbor list.
#[derive(Debug)]
pub struct GraphStore {
    engine: EngineSlot,
    /// Whole-graph aggregates, computed at most once per loaded store —
    /// for the grammar in one O(|G|) pass, for adjacency backends by a
    /// full scan.
    components: OnceLock<u64>,
    degrees: OnceLock<Option<(u64, u64)>>,
    counters: Counters,
    loads: u64,
    /// Container image size in bytes (see [`StoreStats::resident_bytes`]);
    /// `0` for stores that never came from a container.
    container_bytes: u64,
    /// Registry generation (see [`StoreStats::generation`]); `1` until a
    /// [`crate::StoreRegistry`] swap assigns a later one. Atomic because it
    /// is stamped through `&self` after the store is shared.
    generation: AtomicU64,
}

impl GraphStore {
    fn from_slot(engine: EngineSlot) -> Self {
        Self {
            engine,
            components: OnceLock::new(),
            degrees: OnceLock::new(),
            counters: Counters::default(),
            loads: 1,
            container_bytes: 0,
            generation: AtomicU64::new(1),
        }
    }

    /// Build a grammar-backed store from an already-validated (or freshly
    /// compressed) grammar. Validation runs again here — the store's
    /// zero-panic guarantee must not depend on the caller's discipline.
    pub fn from_grammar(grammar: Grammar) -> Result<Self, GrepairError> {
        grammar
            .validate()
            .map_err(|e| GrepairError::Codec(grepair_codec::CodecError::Malformed(e)))?;
        Ok(Self::from_slot(EngineSlot::Grammar(Box::new(GrammarEngine::new(Arc::new(grammar))))))
    }

    /// Build a store around any loaded [`QueryEngine`] — the seam the
    /// non-grammar backends (and embedders with custom representations)
    /// come through. The store supplies batching, parallel fan-out, the
    /// duplicate memo, aggregate memoization, counters, and hot-reload
    /// registration; the engine supplies the answers.
    pub fn from_engine(engine: Box<dyn QueryEngine>) -> Self {
        Self::from_slot(EngineSlot::External(engine))
    }

    /// Decode any container image — legacy `.g2g` or tagged — and build
    /// the store for whichever backend the header names.
    pub fn from_bytes(file: &[u8]) -> Result<Self, GrepairError> {
        let (tag, bit_len, payload) = backend::split_any_container(file)?;
        let codec = backend::resolve_codec(tag)?;
        let mut store = if codec.name() == backend::GREPAIR {
            // The grammar path stays unboxed so the batch machinery keeps
            // its grammar-shaped amortization levers.
            let grammar = backend::decode_validated_grammar(payload, bit_len)?;
            Self::from_slot(EngineSlot::Grammar(Box::new(GrammarEngine::new(Arc::new(grammar)))))
        } else {
            Self::from_engine(codec.load(payload, bit_len)?)
        };
        store.container_bytes = file.len() as u64;
        Ok(store)
    }

    /// Load a container file and build the store.
    pub fn open(path: &str) -> Result<Self, GrepairError> {
        // Failpoint `store.open.read` (DESIGN.md §10): injects an I/O
        // failure before the real read — a no-op unless the `fail`
        // feature armed it.
        grepair_util::fail::point("store.open.read")
            .map_err(|error| GrepairError::Io { path: path.into(), error })?;
        let file = std::fs::read(path)
            .map_err(|e| GrepairError::Io { path: path.into(), error: e.to_string() })?;
        Self::from_bytes(&file)
    }

    /// The engine as its backend-agnostic trait surface.
    fn engine_dyn(&self) -> &dyn QueryEngine {
        match &self.engine {
            EngineSlot::Grammar(ge) => &**ge,
            EngineSlot::External(e) => &**e,
        }
    }

    /// Name of the backend serving this store (`grepair`, `k2`, …).
    pub fn backend(&self) -> &'static str {
        self.engine_dyn().backend()
    }

    /// The grammar being served — `Some` only for the gRePair backend.
    pub fn grammar(&self) -> Option<&Grammar> {
        match &self.engine {
            EngineSlot::Grammar(ge) => Some(ge.grammar()),
            EngineSlot::External(_) => None,
        }
    }

    /// Number of nodes of the represented graph — valid query ids are
    /// `0..total_nodes()`.
    pub fn total_nodes(&self) -> u64 {
        self.engine_dyn().total_nodes()
    }

    /// Which registry generation this store is (see
    /// [`StoreStats::generation`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Stamp the registry generation onto this store (only
    /// [`crate::StoreRegistry`] calls this — on swap/reload, and when a
    /// transparent evict-then-reopen re-stamps the reopened store with the
    /// namespace's unchanged generation).
    pub(crate) fn set_generation(&self, generation: u64) {
        self.generation.store(generation, Ordering::Relaxed);
    }

    /// Size of the container image this store was decoded from — `0` for
    /// stores built in memory (see [`StoreStats::resident_bytes`]).
    pub fn resident_bytes(&self) -> u64 {
        self.container_bytes
    }

    /// Snapshot the serving statistics.
    pub fn stats(&self) -> StoreStats {
        let c = &self.counters;
        let (eh, em, ph, pm) = match &self.engine {
            EngineSlot::Grammar(ge) => {
                let cc = &ge.cache_counters;
                (
                    cc.expansion_hits.load(Ordering::Relaxed),
                    cc.expansion_misses.load(Ordering::Relaxed),
                    cc.plan_hits.load(Ordering::Relaxed),
                    cc.plan_misses.load(Ordering::Relaxed),
                )
            }
            EngineSlot::External(_) => (0, 0, 0, 0),
        };
        StoreStats {
            generation: self.generation(),
            backend: self.backend(),
            loads: self.loads,
            resident_bytes: self.container_bytes,
            queries_served: c.queries.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            parallel_batches: c.parallel_batches.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            expansion_cache_hits: eh,
            expansion_cache_misses: em,
            rpq_plan_hits: ph,
            rpq_plan_misses: pm,
        }
    }

    // ------------------------------------------------------------------
    // Individual queries
    // ------------------------------------------------------------------

    /// Out-neighbors of `v`, sorted ascending.
    pub fn out_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        self.engine_dyn().out_neighbors(v)
    }

    /// In-neighbors of `v`, sorted ascending.
    pub fn in_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        self.engine_dyn().in_neighbors(v)
    }

    /// Union of both directions, sorted and deduplicated.
    pub fn neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        self.engine_dyn().neighbors(v)
    }

    /// Labeled out-edges of `v` as sorted `(label, target)` pairs — the
    /// primitive the version overlay corrects (DESIGN.md §12).
    pub fn out_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        self.engine_dyn().out_edges(v)
    }

    /// Labeled in-edges of `v` as sorted `(label, source)` pairs.
    pub fn in_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        self.engine_dyn().in_edges(v)
    }

    /// Is `t` reachable from `s`?
    pub fn reachable(&self, s: u64, t: u64) -> Result<bool, GrepairError> {
        self.engine_dyn().reachable(s, t)
    }

    /// Does some `s → t` path spell a word of the pattern's language?
    pub fn rpq(&self, pattern: &str, s: u64, t: u64) -> Result<bool, GrepairError> {
        self.engine_dyn().rpq(pattern, s, t)
    }

    /// Number of connected components (memoized per loaded store).
    pub fn components(&self) -> u64 {
        *self.components.get_or_init(|| self.engine_dyn().components())
    }

    /// `(min, max)` degree (memoized; `None` when empty).
    pub fn degree_extrema(&self) -> Option<(u64, u64)> {
        *self.degrees.get_or_init(|| self.engine_dyn().degree_extrema())
    }

    /// Answer one query, updating the serving counters.
    pub fn query(&self, q: &Query) -> AnswerResult {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let result = self.answer(q, None, &mut Scratch::default());
        if result.is_err() {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    // ------------------------------------------------------------------
    // Batched queries
    // ------------------------------------------------------------------

    /// Answer many queries at once, amortizing shared work:
    ///
    /// * duplicate queries are answered once; repeats share the `Arc`
    ///   (every backend),
    /// * `reach` queries sharing a source reuse one forward closure
    ///   ([`grepair_queries::ReachIndex::try_source`]) instead of
    ///   recomputing it per target (grammar backend),
    /// * `rpq` queries sharing a (pattern, source) pair reuse one product
    ///   closure (grammar backend),
    /// * neighbor queries against the same node share one `locate` descent
    ///   (grammar backend),
    /// * rule expansions and RPQ plans hit the store-wide sharded caches.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<AnswerResult> {
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let ctx = BatchContext::new(queries);
        let mut scratch = Scratch::default();
        self.answer_chunk(queries, &ctx, &mut scratch)
    }

    /// [`GraphStore::query_batch`], partitioned across `threads` worker
    /// threads sharing one batch context (per-source closures, duplicate
    /// memo, locate cache) through the sharded maps. Answers come back in
    /// input order, errors included, exactly as the sequential path would
    /// produce them.
    ///
    /// `threads` ≤ 1 or a batch smaller than two queries fall back to the
    /// sequential path; `threads` is capped at the batch length. Worker
    /// threads are spawned per call (scoped `std::thread`, no pool):
    /// amortizing spawn cost across a 10k-query batch is the intended
    /// usage, per-call overhead is ~tens of microseconds. Serving stacks
    /// that answer many *small* batches should reuse threads through
    /// [`GraphStore::query_batch_on`] with a pooled [`BatchExecutor`]
    /// instead.
    pub fn query_batch_parallel(&self, queries: &[Query], threads: usize) -> Vec<AnswerResult> {
        self.query_batch_on(queries, &ScopedSpawner(threads))
    }

    /// [`GraphStore::query_batch_parallel`] with caller-owned threads: the
    /// batch is partitioned into one job per executor worker, all jobs
    /// share one batch context (per-source closures, duplicate memo,
    /// locate cache) through the sharded maps, and `executor` runs them.
    /// Answers come back in input order, errors included, exactly as the
    /// sequential path would produce them.
    pub fn query_batch_on(
        &self,
        queries: &[Query],
        executor: &impl BatchExecutor,
    ) -> Vec<AnswerResult> {
        let threads = executor.max_workers().min(queries.len());
        if threads <= 1 {
            return self.query_batch(queries);
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters.parallel_batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let ctx = BatchContext::new(queries);
        let chunk_len = queries.len().div_ceil(threads);
        // One pre-sized slot per query: each job fills a disjoint chunk, so
        // answers land in input order without a post-hoc reorder.
        let mut slots: Vec<Option<AnswerResult>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        {
            let ctx = &ctx;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = queries
                .chunks(chunk_len)
                .zip(slots.chunks_mut(chunk_len))
                .map(|(chunk, out)| {
                    Box::new(move || {
                        let mut scratch = Scratch::default();
                        let answers = self.answer_chunk(chunk, ctx, &mut scratch);
                        for (slot, answer) in out.iter_mut().zip(answers) {
                            *slot = Some(answer);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            executor.scope(jobs);
        }
        slots
            .into_iter()
            // audited: executor.scope runs every job before returning
            .map(|slot| slot.expect("executor must run every job to completion"))
            .collect()
    }

    /// Answer a contiguous run of batch queries through the shared context.
    /// The memo only admits queries the batch plan saw twice — unique
    /// queries (the common case in realistic traffic) skip the memo's hash,
    /// clone, and lock entirely.
    fn answer_chunk<'q>(
        &self,
        queries: &'q [Query],
        ctx: &BatchContext<'q>,
        scratch: &mut Scratch,
    ) -> Vec<AnswerResult> {
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            let answer = if ctx.plan.has_duplicates() && ctx.plan.duplicates.contains(q) {
                match ctx.memo.get(&q) {
                    Some(hit) => hit,
                    None => {
                        let computed = self.answer(q, Some(ctx), scratch);
                        ctx.memo.insert_if_absent(q, computed)
                    }
                }
            } else {
                self.answer(q, Some(ctx), scratch)
            };
            if answer.is_err() {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            out.push(answer);
        }
        out
    }

    /// Shared worker for every query entry point: dispatch to the engine.
    /// The grammar engine gets the full per-batch sharing treatment; other
    /// backends answer through the trait (still covered by the duplicate
    /// memo in [`GraphStore::answer_chunk`] and the aggregate memoization).
    fn answer<'q>(
        &self,
        q: &'q Query,
        ctx: Option<&BatchContext<'q>>,
        scratch: &mut Scratch,
    ) -> AnswerResult {
        match &self.engine {
            EngineSlot::Grammar(ge) => self.answer_grammar(ge, q, ctx, scratch),
            EngineSlot::External(e) => self.answer_external(&**e, q),
        }
    }

    /// Trait-dispatch evaluation for the non-grammar backends.
    fn answer_external(&self, e: &dyn QueryEngine, q: &Query) -> AnswerResult {
        Ok(Arc::new(match q {
            Query::OutNeighbors(v) => QueryAnswer::Nodes(e.out_neighbors(*v)?),
            Query::InNeighbors(v) => QueryAnswer::Nodes(e.in_neighbors(*v)?),
            Query::Neighbors(v) => QueryAnswer::Nodes(e.neighbors(*v)?),
            Query::Reach { s, t } => QueryAnswer::Bool(e.reachable(*s, *t)?),
            Query::Rpq { s, t, pattern } => QueryAnswer::Bool(e.rpq(pattern, *s, *t)?),
            Query::Components => QueryAnswer::Count(self.components()),
            Query::DegreeExtrema => QueryAnswer::Extrema(self.degree_extrema()),
        }))
    }

    /// Grammar-engine evaluation with the per-batch sharing levers. `ctx`
    /// carries the per-batch reuse (absent for single queries); `scratch`
    /// the per-worker buffers. Each sharing lever engages only for keys the
    /// batch plan marked as actually shared.
    fn answer_grammar<'q>(
        &self,
        ge: &GrammarEngine,
        q: &'q Query,
        ctx: Option<&BatchContext<'q>>,
        scratch: &mut Scratch,
    ) -> AnswerResult {
        Ok(Arc::new(match q {
            Query::OutNeighbors(v) => {
                let repr = Self::locate_for(ge, *v, ctx)?;
                QueryAnswer::Nodes(ge.collect_neighbors(&repr, Direction::Out, scratch)?)
            }
            Query::InNeighbors(v) => {
                let repr = Self::locate_for(ge, *v, ctx)?;
                QueryAnswer::Nodes(ge.collect_neighbors(&repr, Direction::In, scratch)?)
            }
            Query::Neighbors(v) => {
                let repr = Self::locate_for(ge, *v, ctx)?;
                let mut out = ge.collect_neighbors(&repr, Direction::Out, scratch)?;
                out.extend(ge.collect_neighbors(&repr, Direction::In, scratch)?);
                out.sort_unstable();
                out.dedup();
                QueryAnswer::Nodes(out)
            }
            Query::Reach { s, t } if s == t => {
                // Trivially true for valid ids — skip the forward closure.
                QueryAnswer::Bool(ge.reach.try_reachable(*s, *t)?)
            }
            Query::Reach { s, t } => {
                let shared = ctx
                    .filter(|c| !c.plan.shared_reach.is_empty() && c.plan.shared_reach.contains(s));
                let Some(ctx) = shared else {
                    return Ok(Arc::new(QueryAnswer::Bool(ge.reach.try_reachable(*s, *t)?)));
                };
                let src = match ctx.reach_sources.get(s) {
                    Some(hit) => hit,
                    None => ctx
                        .reach_sources
                        .insert_if_absent(*s, ge.reach.try_source(*s).map(Arc::new)),
                };
                QueryAnswer::Bool(ge.reach.try_reachable_from(&*src?, *t)?)
            }
            Query::Rpq { s, t, pattern } => {
                let plan = ge.plan(pattern)?;
                let key = (pattern.as_str(), *s);
                let shared = ctx
                    .filter(|c| !c.plan.shared_rpq.is_empty() && c.plan.shared_rpq.contains(&key));
                let Some(ctx) = shared else {
                    return Ok(Arc::new(QueryAnswer::Bool(plan.try_matches(*s, *t)?)));
                };
                let src = match ctx.rpq_sources.get(&key) {
                    Some(hit) => hit,
                    None => ctx
                        .rpq_sources
                        .insert_if_absent(key, plan.try_source(*s).map(Arc::new)),
                };
                QueryAnswer::Bool(plan.try_matches_from(&*src?, *t)?)
            }
            Query::Components => QueryAnswer::Count(self.components()),
            Query::DegreeExtrema => QueryAnswer::Extrema(self.degree_extrema()),
        }))
    }

    /// Resolve the G-representation of `k`, through the per-batch locate
    /// cache when the plan says ≥ 2 neighbor queries name this node.
    fn locate_for(
        ge: &GrammarEngine,
        k: u64,
        ctx: Option<&BatchContext<'_>>,
    ) -> Result<Arc<GRepr>, QueryError> {
        if let Some(ctx) =
            ctx.filter(|c| !c.plan.shared_nodes.is_empty() && c.plan.shared_nodes.contains(&k))
        {
            return match ctx.locates.get(&k) {
                Some(hit) => hit,
                None => ctx
                    .locates
                    .insert_if_absent(k, ge.index.try_locate(k).map(Arc::new)),
            };
        }
        ge.index.try_locate(k).map(Arc::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::codec_for;
    use grepair_core::{compress, GRePairConfig};
    use grepair_hypergraph::{EdgeLabel, Hypergraph};
    use grepair_queries::GrammarIndex;

    fn two_label_path(reps: u32) -> Hypergraph {
        Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        )
        .0
    }

    fn store_for(reps: u32) -> (GraphStore, Hypergraph) {
        let g = two_label_path(reps);
        let out = compress(&g, &GRePairConfig::default());
        let encoded = grepair_codec::encode(&out.grammar);
        let file = write_container(&encoded.bytes, encoded.bit_len);
        (GraphStore::from_bytes(&file).unwrap(), g)
    }

    /// The grammar engine behind a grammar-backed test store.
    fn grammar_engine(store: &GraphStore) -> &GrammarEngine {
        match &store.engine {
            EngineSlot::Grammar(ge) => ge,
            EngineSlot::External(_) => panic!("test store must be grammar-backed"),
        }
    }

    fn mixed_queries(n: u64, len: u64) -> Vec<Query> {
        (0..len)
            .map(|i| match i % 5 {
                0 => Query::OutNeighbors(i % n),
                1 => Query::InNeighbors((i * 7) % n),
                2 => Query::Reach { s: (i * 3) % n, t: (i * 11) % n },
                3 => Query::Rpq {
                    s: (i * 5) % n,
                    t: (i * 13) % n,
                    pattern: if i % 2 == 0 { "0 1".into() } else { "0* 1*".into() },
                },
                _ => Query::Neighbors((i * 17) % n),
            })
            .collect()
    }

    #[test]
    fn neighbors_match_uncached_index() {
        let (store, _) = store_for(32);
        let idx = GrammarIndex::new(store.grammar().unwrap());
        for k in 0..store.total_nodes() {
            assert_eq!(store.out_neighbors(k).unwrap(), idx.out_neighbors(k), "out {k}");
            assert_eq!(store.in_neighbors(k).unwrap(), idx.in_neighbors(k), "in {k}");
        }
        let s = store.stats();
        assert!(s.expansion_cache_hits > 0, "repeated labels must hit: {s}");
    }

    #[test]
    fn cached_expansion_matches_reference() {
        let (store, _) = store_for(24);
        let ge = grammar_engine(&store);
        let idx = GrammarIndex::new(store.grammar().unwrap());
        for nt in 0..store.grammar().unwrap().num_nonterminals() as u32 {
            let rank = store.grammar().unwrap().nt_rank(nt);
            for pos in 0..rank as u32 {
                for dir in [Direction::Out, Direction::In] {
                    assert_eq!(
                        *ge.expansion(nt, pos, dir),
                        idx.rule_expansion(nt, pos as usize, dir),
                        "nt {nt} pos {pos} {dir:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_ids_error_cleanly() {
        let (store, _) = store_for(8);
        let n = store.total_nodes();
        for q in [
            Query::OutNeighbors(n),
            Query::InNeighbors(n + 100),
            Query::Neighbors(u64::MAX),
            Query::Reach { s: 0, t: n },
            Query::Reach { s: n, t: 0 },
            Query::Rpq { s: n, t: 0, pattern: "0".into() },
        ] {
            let err = store.query(&q).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("out of range"), "{q:?}: {msg}");
            assert!(msg.contains(&format!("0..{n}")), "{q:?}: {msg}");
        }
        assert_eq!(store.stats().errors, 6);
    }

    #[test]
    fn batch_answers_match_individual() {
        let (store, g) = store_for(16);
        let n = store.total_nodes();
        let mut queries = Vec::new();
        for i in 0..n {
            queries.push(Query::OutNeighbors(i));
            queries.push(Query::Reach { s: 0, t: i });
            queries.push(Query::Reach { s: i, t: n - 1 });
        }
        queries.push(Query::Components);
        queries.push(Query::DegreeExtrema);
        queries.push(Query::Rpq { s: 0, t: 2, pattern: "0 1".into() });
        let batch = store.query_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, a) in queries.iter().zip(&batch) {
            // Individual path must agree (fresh per-query source closures).
            assert_eq!(a, &store.query(q), "{q:?}");
        }
        // Cross-check a few against the derived graph.
        let derived = store.grammar().unwrap().derive();
        assert_eq!(derived.num_nodes() as u64, n);
        assert_eq!(store.components(), 1);
        let _ = g;
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let (store, _) = store_for(24);
        let n = store.total_nodes();
        let mut queries = mixed_queries(n, 600);
        // Sprinkle in errors: order and Err values must survive the fan-out.
        for i in (0..queries.len()).step_by(37) {
            queries[i] = Query::OutNeighbors(n + i as u64);
        }
        let sequential = store.query_batch(&queries);
        for threads in [2, 3, 8] {
            let parallel = store.query_batch_parallel(&queries, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
                assert_eq!(p, s, "answer {i} with {threads} threads: {:?}", queries[i]);
            }
        }
        let stats = store.stats();
        assert_eq!(stats.parallel_batches, 3, "{stats}");
        assert_eq!(stats.batches, 4, "{stats}");
    }

    #[test]
    fn parallel_batch_degenerate_inputs() {
        let (store, _) = store_for(4);
        assert!(store.query_batch_parallel(&[], 8).is_empty());
        let one = store.query_batch_parallel(&[Query::Components], 8);
        assert_eq!(one.len(), 1);
        // threads = 0 falls back to the sequential path.
        let zero = store.query_batch_parallel(&[Query::Components], 0);
        assert_eq!(zero, one);
        assert_eq!(store.stats().parallel_batches, 0);
    }

    #[test]
    fn custom_executor_gets_input_ordered_answers() {
        // A deliberately perverse executor: runs jobs one at a time, in
        // reverse submission order. Answers must still come back in input
        // order — the slots, not the execution order, define it.
        struct Reversed(usize);
        impl BatchExecutor for Reversed {
            fn max_workers(&self) -> usize {
                self.0
            }
            fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
                for job in jobs.into_iter().rev() {
                    job();
                }
            }
        }
        let (store, _) = store_for(16);
        let n = store.total_nodes();
        let mut queries = mixed_queries(n, 200);
        queries[7] = Query::OutNeighbors(n + 7); // an error must survive too
        let expected = store.query_batch(&queries);
        for workers in [2, 3, 7] {
            assert_eq!(store.query_batch_on(&queries, &Reversed(workers)), expected);
        }
        // workers ≤ 1 falls back to the sequential path (not counted as a
        // parallel batch).
        assert_eq!(store.query_batch_on(&queries, &Reversed(1)), expected);
        let stats = store.stats();
        assert_eq!(stats.parallel_batches, 3, "{stats}");
    }

    #[test]
    fn fresh_stores_are_generation_one() {
        let (store, _) = store_for(4);
        assert_eq!(store.generation(), 1);
        assert_eq!(store.stats().generation, 1);
        let rendered = store.stats().to_string();
        assert!(rendered.starts_with("generation=1 "), "{rendered}");
        assert!(rendered.ends_with("backend=grepair"), "{rendered}");
    }

    #[test]
    fn memoized_hits_share_the_answer_allocation() {
        // The clone-free hit path: duplicate queries in one batch return the
        // same Arc, not a deep copy of the neighbor list.
        let (store, _) = store_for(16);
        let batch = [
            Query::OutNeighbors(3),
            Query::Neighbors(5),
            Query::OutNeighbors(3),
            Query::Neighbors(5),
        ];
        let answers = store.query_batch(&batch);
        let a = answers[0].as_ref().unwrap();
        let b = answers[2].as_ref().unwrap();
        assert!(Arc::ptr_eq(a, b), "duplicate answers must share one allocation");
        let c = answers[1].as_ref().unwrap();
        let d = answers[3].as_ref().unwrap();
        assert!(Arc::ptr_eq(c, d));
        // Exactly the two batch slots hold the allocation (the per-batch
        // memo is dropped when `query_batch` returns): the duplicate cost
        // one Arc clone, zero Vec clones.
        assert_eq!(Arc::strong_count(a), 2);
    }

    #[test]
    fn expansion_hits_are_arc_clones() {
        let (store, _) = store_for(16);
        let ge = grammar_engine(&store);
        // Warm the cache, then check a hit shares the allocation.
        let first = ge.expansion(0, 0, Direction::Out);
        let count_before = Arc::strong_count(&first);
        let second = ge.expansion(0, 0, Direction::Out);
        assert!(Arc::ptr_eq(&first, &second), "hit must be the cached allocation");
        assert_eq!(Arc::strong_count(&first), count_before + 1);
        let s = store.stats();
        assert!(s.expansion_cache_hits >= 1, "{s}");
    }

    #[test]
    fn batch_reuses_sources_and_plans() {
        let (store, _) = store_for(16);
        let n = store.total_nodes();
        let queries: Vec<Query> = (0..n)
            .flat_map(|t| {
                [
                    Query::Reach { s: 0, t },
                    Query::Rpq { s: 0, t, pattern: "0* 1*".into() },
                ]
            })
            .collect();
        let answers = store.query_batch(&queries);
        assert!(answers.iter().all(|a| a.is_ok()));
        let s = store.stats();
        // One plan compiled, reused for every rpq in the batch.
        assert_eq!(s.rpq_plan_misses, 1, "{s}");
        assert_eq!(s.rpq_plan_hits, n - 1, "{s}");
        assert_eq!(s.batches, 1);
        assert_eq!(s.queries_served, 2 * n);
    }

    #[test]
    fn concurrent_individual_queries_keep_counters_exact() {
        let (store, _) = store_for(16);
        let n = store.total_nodes();
        let per_thread = 500u64;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let q = match (t + i) % 3 {
                            0 => Query::OutNeighbors(i % n),
                            1 => Query::Reach { s: i % n, t: (i * 3) % n },
                            // Every thread's last id is out of range.
                            _ => Query::InNeighbors(n + i),
                        };
                        let _ = store.query(&q);
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.queries_served, 4 * per_thread);
        // Each thread hits the out-of-range arm ⌈500/3⌉ or ⌊500/3⌋ times
        // depending on its phase; the exact total is deterministic.
        let expected_errors: u64 = (0..4u64)
            .map(|t| (0..per_thread).filter(|i| (t + i) % 3 == 2).count() as u64)
            .sum();
        assert_eq!(stats.errors, expected_errors, "{stats}");
    }

    #[test]
    fn from_grammar_revalidates() {
        // A grammar with a dangling nonterminal reference must be rejected,
        // not served.
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(EdgeLabel::Nonterminal(0), &[0, 1]);
        let grammar = grepair_grammar::Grammar::new(start, 1);
        assert!(GraphStore::from_grammar(grammar).is_err());
    }

    // ------------------------------------------------------------------
    // Multi-backend dispatch
    // ------------------------------------------------------------------

    /// Build a store for `backend` holding the same unlabeled path graph.
    fn backend_store(backend: &str, n: u32) -> GraphStore {
        let g = Hypergraph::from_simple_edges(
            n as usize,
            (0..n - 1).map(|i| (i, 0u32, i + 1)),
        )
        .0;
        let file = codec_for(backend).unwrap().encode(&g).unwrap();
        GraphStore::from_bytes(&file).unwrap()
    }

    #[test]
    fn from_bytes_dispatches_on_the_container_tag() {
        for backend in ["grepair", "k2", "lm", "hn"] {
            let store = backend_store(backend, 20);
            assert_eq!(store.backend(), backend);
            assert_eq!(store.total_nodes(), 20, "{backend}");
            assert_eq!(store.grammar().is_some(), backend == "grepair");
            let stats = store.stats();
            assert_eq!(stats.backend, backend);
            assert!(stats.to_string().ends_with(&format!("backend={backend}")));
        }
    }

    #[test]
    fn unknown_container_tags_name_the_registry() {
        let file = crate::backend::write_tagged_container("zstd9", b"", 0);
        let err = GraphStore::from_bytes(&file).unwrap_err().to_string();
        assert!(err.contains("zstd9"), "{err}");
        assert!(err.contains("grepair, k2, lm, hn"), "{err}");
    }

    #[test]
    fn external_backends_serve_batches_with_the_duplicate_memo() {
        let store = backend_store("k2", 24);
        let n = store.total_nodes();
        let batch = [
            Query::OutNeighbors(3),
            Query::Reach { s: 0, t: n - 1 },
            Query::OutNeighbors(3),
            Query::Components,
            Query::OutNeighbors(n + 5), // error mid-batch keeps serving
            Query::DegreeExtrema,
        ];
        let answers = store.query_batch(&batch);
        assert_eq!(answers[0].as_deref(), Ok(&QueryAnswer::Nodes(vec![4])));
        assert_eq!(answers[1].as_deref(), Ok(&QueryAnswer::Bool(true)));
        // Duplicate collapses to one shared allocation, same as grammar.
        assert!(Arc::ptr_eq(answers[0].as_ref().unwrap(), answers[2].as_ref().unwrap()));
        assert_eq!(answers[3].as_deref(), Ok(&QueryAnswer::Count(1)));
        assert!(answers[4].is_err());
        assert_eq!(answers[5].as_deref(), Ok(&QueryAnswer::Extrema(Some((1, 2)))));
        let stats = store.stats();
        assert_eq!(stats.errors, 1, "{stats}");
        // Grammar-only cache counters stay zero on external backends.
        assert_eq!(stats.expansion_cache_hits + stats.expansion_cache_misses, 0);
    }

    #[test]
    fn labeled_edges_agree_with_neighbors_across_backends() {
        for backend in ["grepair", "k2", "lm", "hn"] {
            let store = backend_store(backend, 20);
            for v in 0..store.total_nodes() {
                let outs: Vec<u64> =
                    store.out_edges(v).unwrap().into_iter().map(|(_, w)| w).collect();
                assert_eq!(outs, store.out_neighbors(v).unwrap(), "{backend} out {v}");
                let ins: Vec<u64> =
                    store.in_edges(v).unwrap().into_iter().map(|(_, w)| w).collect();
                assert_eq!(ins, store.in_neighbors(v).unwrap(), "{backend} in {v}");
            }
            assert!(store.out_edges(20).is_err(), "{backend}");
        }
    }

    #[test]
    fn grammar_labeled_edges_keep_labels() {
        // two_label_path(8): 8 label-0 edges and 8 label-1 edges. The
        // grammar renumbers nodes, so check the label multiset over all
        // nodes rather than per-id structure.
        let (store, _) = store_for(8);
        let mut out_labels = Vec::new();
        let mut in_labels = Vec::new();
        for v in 0..store.total_nodes() {
            out_labels.extend(store.out_edges(v).unwrap().into_iter().map(|(l, _)| l));
            in_labels.extend(store.in_edges(v).unwrap().into_iter().map(|(l, _)| l));
        }
        for labels in [&out_labels, &in_labels] {
            assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 8);
            assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 8);
            assert_eq!(labels.len(), 16);
        }
    }

    #[test]
    fn external_backends_fan_out_in_parallel() {
        for backend in ["k2", "lm", "hn"] {
            let store = backend_store(backend, 40);
            let n = store.total_nodes();
            let mut queries = mixed_queries(n, 300);
            // Unlabeled graph: rewrite the two-label patterns onto label 0.
            for q in &mut queries {
                if let Query::Rpq { pattern, .. } = q {
                    *pattern = "0 0*".into();
                }
            }
            queries[11] = Query::InNeighbors(n + 11);
            let sequential = store.query_batch(&queries);
            let parallel = store.query_batch_parallel(&queries, 4);
            assert_eq!(parallel, sequential, "{backend}");
        }
    }
}
