//! The store's request/response vocabulary and the newline-delimited text
//! protocol `store serve-file` speaks.
//!
//! One query per line, whitespace-separated:
//!
//! ```text
//! out <v>                  # out-neighbors of v
//! in <v>                   # in-neighbors of v
//! neighbors <v>            # out ∪ in
//! reach <s> <t>            # (s,t)-reachability
//! rpq <s> <t> <atom>...    # regular path query; atoms are label ids with
//!                          # an optional * + ? suffix, e.g. `0 1* 2?`
//! components               # connected components of val(G)
//! degrees                  # min/max degree over val(G)
//! ```
//!
//! Blank lines and `#` comments are skipped by the server, not here.

use grepair_queries::{Nfa, Regex};

use crate::GrepairError;

/// One request against a loaded [`crate::GraphStore`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// Out-neighbor ids of a node.
    OutNeighbors(u64),
    /// In-neighbor ids of a node.
    InNeighbors(u64),
    /// Union of both directions.
    Neighbors(u64),
    /// Is `t` reachable from `s`?
    Reach {
        /// Source node.
        s: u64,
        /// Target node.
        t: u64,
    },
    /// Regular path query from `s` to `t`.
    Rpq {
        /// Source node.
        s: u64,
        /// Target node.
        t: u64,
        /// Canonical pattern text (atoms joined by one space).
        pattern: String,
    },
    /// Number of connected components of `val(G)`.
    Components,
    /// `(min, max)` degree over `val(G)`.
    DegreeExtrema,
}

/// The answer to one [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// A sorted list of node ids.
    Nodes(Vec<u64>),
    /// A yes/no answer.
    Bool(bool),
    /// A count.
    Count(u64),
    /// Degree extrema (`None` for the empty graph).
    Extrema(Option<(u64, u64)>),
}

impl std::fmt::Display for QueryAnswer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryAnswer::Nodes(ids) if ids.is_empty() => write!(f, "-"),
            QueryAnswer::Nodes(ids) => {
                for (i, id) in ids.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{id}")?;
                }
                Ok(())
            }
            QueryAnswer::Bool(b) => write!(f, "{b}"),
            QueryAnswer::Count(n) => write!(f, "{n}"),
            QueryAnswer::Extrema(None) => write!(f, "-"),
            QueryAnswer::Extrema(Some((lo, hi))) => write!(f, "min={lo} max={hi}"),
        }
    }
}

/// Render one wire-protocol error reply line (without the trailing
/// newline). Every server front end — `store serve-file`, the
/// `grepair-server` socket — must produce error lines through this one
/// function so their outputs stay byte-identical (DESIGN.md §6).
pub fn error_reply(reason: impl std::fmt::Display) -> String {
    format!("error: {reason}")
}

fn bad(what: impl Into<String>) -> GrepairError {
    GrepairError::BadRequest(what.into())
}

fn parse_id(tok: &str, what: &str) -> Result<u64, GrepairError> {
    tok.parse()
        .map_err(|e| bad(format!("{what} {tok:?}: {e}")))
}

/// Parse one text-protocol line into a [`Query`].
pub fn parse_query(line: &str) -> Result<Query, GrepairError> {
    let mut it = line.split_whitespace();
    let verb = it.next().ok_or_else(|| bad("empty query"))?;
    let mut one = |what| -> Result<u64, GrepairError> {
        parse_id(it.next().ok_or_else(|| bad(format!("missing {what}")))?, what)
    };
    let q = match verb {
        "out" => Query::OutNeighbors(one("node id")?),
        "in" => Query::InNeighbors(one("node id")?),
        "neighbors" => Query::Neighbors(one("node id")?),
        "reach" => Query::Reach { s: one("source id")?, t: one("target id")? },
        "rpq" => {
            let s = one("source id")?;
            let t = one("target id")?;
            let atoms: Vec<&str> = it.by_ref().collect();
            if atoms.is_empty() {
                return Err(bad("rpq needs at least one pattern atom"));
            }
            // Validate now so a bad pattern fails at parse time, not during
            // plan construction deep in a batch.
            let pattern = atoms.join(" ");
            parse_pattern(&pattern)?;
            return Ok(Query::Rpq { s, t, pattern });
        }
        "components" => Query::Components,
        "degrees" => Query::DegreeExtrema,
        other => return Err(bad(format!("unknown query verb {other:?}"))),
    };
    if let Some(extra) = it.next() {
        return Err(bad(format!("unexpected trailing token {extra:?}")));
    }
    Ok(q)
}

/// Parse an RPQ pattern — whitespace-separated atoms, each a terminal label
/// id with an optional `*`/`+`/`?` suffix, concatenated left to right.
pub fn parse_pattern(pattern: &str) -> Result<Regex, GrepairError> {
    let mut parts = Vec::new();
    for atom in pattern.split_whitespace() {
        let (digits, suffix) = match atom.as_bytes().last() {
            // audited: atom is non-empty: last() just returned Some
            Some(b'*') => (&atom[..atom.len() - 1], Some(b'*')),
            // audited: atom is non-empty: last() just returned Some
            Some(b'+') => (&atom[..atom.len() - 1], Some(b'+')),
            // audited: atom is non-empty: last() just returned Some
            Some(b'?') => (&atom[..atom.len() - 1], Some(b'?')),
            _ => (atom, None),
        };
        let label: u32 = digits
            .parse()
            .map_err(|e| bad(format!("pattern atom {atom:?}: {e}")))?;
        let base = Regex::label(label);
        parts.push(match suffix {
            Some(b'*') => Regex::star(base),
            Some(b'+') => Regex::plus(base),
            Some(b'?') => Regex::opt(base),
            _ => base,
        });
    }
    if parts.is_empty() {
        return Err(bad("empty rpq pattern"));
    }
    Ok(Regex::cat(parts))
}

/// Compile a pattern to an NFA (the store caches the result per pattern).
pub fn compile_pattern(pattern: &str) -> Result<Nfa, GrepairError> {
    Ok(Nfa::from_regex(&parse_pattern(pattern)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(parse_query("out 3").unwrap(), Query::OutNeighbors(3));
        assert_eq!(parse_query("in 0").unwrap(), Query::InNeighbors(0));
        assert_eq!(parse_query("neighbors 7").unwrap(), Query::Neighbors(7));
        assert_eq!(parse_query("reach 1 2").unwrap(), Query::Reach { s: 1, t: 2 });
        assert_eq!(
            parse_query("rpq 0 5 0 1* 2?").unwrap(),
            Query::Rpq { s: 0, t: 5, pattern: "0 1* 2?".into() }
        );
        assert_eq!(parse_query("components").unwrap(), Query::Components);
        assert_eq!(parse_query("degrees").unwrap(), Query::DegreeExtrema);
    }

    #[test]
    fn rejects_malformed_lines() {
        for line in [
            "",
            "out",
            "out x",
            "out 1 2",
            "reach 1",
            "rpq 1 2",
            "rpq 1 2 banana",
            "frobnicate 1",
            "components now",
        ] {
            assert!(parse_query(line).is_err(), "{line:?} should not parse");
        }
    }

    #[test]
    fn answers_render_stably() {
        assert_eq!(QueryAnswer::Nodes(vec![]).to_string(), "-");
        assert_eq!(QueryAnswer::Nodes(vec![1, 2, 30]).to_string(), "1 2 30");
        assert_eq!(QueryAnswer::Bool(true).to_string(), "true");
        assert_eq!(QueryAnswer::Count(9).to_string(), "9");
        assert_eq!(QueryAnswer::Extrema(None).to_string(), "-");
        assert_eq!(QueryAnswer::Extrema(Some((1, 4))).to_string(), "min=1 max=4");
    }

    #[test]
    fn error_reply_matches_the_wire_format() {
        assert_eq!(error_reply("empty query"), "error: empty query");
        let err = parse_query("frobnicate").unwrap_err();
        assert!(error_reply(&err).starts_with("error: bad request:"));
    }

    #[test]
    fn patterns_compile() {
        assert!(compile_pattern("0 1 0").is_ok());
        assert!(compile_pattern("0* 1+ 2?").is_ok());
        assert!(compile_pattern("").is_err());
        assert!(compile_pattern("*").is_err());
    }
}
