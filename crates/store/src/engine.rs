//! The gRePair backend's query engine: grammar navigation with memoized
//! rule expansions and compiled RPQ plans.
//!
//! This is the machinery `GraphStore` originally owned directly; it now
//! lives behind the [`QueryEngine`] trait so the store can serve other
//! compressed representations (k²-tree, list-merging, virtual-node) through
//! the same surface. The grammar engine stays special in one way: the
//! store's batch amortization (shared reach closures, shared RPQ product
//! closures, the per-batch locate cache — DESIGN.md §5) reaches into its
//! fields directly, because those levers are grammar-shaped and have no
//! analog in the adjacency-backed engines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use grepair_grammar::Grammar;
use grepair_hypergraph::{EdgeId, EdgeLabel, NodeId};
use grepair_queries::neighbors::Direction;
use grepair_queries::{speedup, GRepr, GrammarIndex, QueryError, ReachIndex, RpqIndex};

use crate::backend::QueryEngine;
use crate::cache::ShardedMap;
use crate::query::compile_pattern;
use crate::GrepairError;

/// One memoized rule expansion: the neighbors one `(nt, ext position,
/// direction)` combination contributes, as rule-relative `(path, node)`
/// pairs (see [`GrammarIndex::rule_expansion`]).
pub(crate) type Expansion = Arc<Vec<(Vec<EdgeId>, NodeId)>>;
/// A memoized *labeled* rule expansion: the `(path, terminal label, node)`
/// triples one `(nt, ext position, direction)` combination contributes.
/// Same shape as [`Expansion`] but keeping the terminal label each
/// contributed neighbor was reached over — the primitive the version
/// overlay corrects (DESIGN.md §12).
pub(crate) type LabeledExpansion = Arc<Vec<(Vec<EdgeId>, u32, NodeId)>>;
/// Cache key: `(nonterminal, external position, direction)`.
type ExpansionKey = (u32, u32, Direction);

/// Per-worker scratch buffers, reused across the queries one worker
/// answers so the neighbor hot path does not reallocate its derivation-path
/// buffer per query. Never shared between threads.
#[derive(Default)]
pub(crate) struct Scratch {
    /// Absolute derivation path assembled while expanding nonterminal edges.
    pub(crate) full: Vec<EdgeId>,
}

/// Hit/miss counters for the engine's two store-wide caches. Relaxed
/// atomics: exact totals, no lock (see `StoreStats`).
#[derive(Debug, Default)]
pub(crate) struct CacheCounters {
    pub(crate) expansion_hits: AtomicU64,
    pub(crate) expansion_misses: AtomicU64,
    pub(crate) plan_hits: AtomicU64,
    pub(crate) plan_misses: AtomicU64,
}

/// The grammar-backed [`QueryEngine`]: G-representation navigation
/// (Prop. 4), skeleton reachability (Thm. 6), grammar-side RPQ plans, and
/// the memoized rule-expansion cache that makes hub-node neighborhoods
/// cheap.
#[derive(Debug)]
pub struct GrammarEngine {
    pub(crate) grammar: Arc<Grammar>,
    /// G-representation navigation (Prop. 4), built eagerly.
    pub(crate) index: GrammarIndex<Arc<Grammar>>,
    /// Skeleton-based reachability (Thm. 6), built eagerly.
    pub(crate) reach: ReachIndex<Arc<Grammar>>,
    /// Memoized rule expansions — hot on hub nodes, whose incident
    /// nonterminal edges repeat few distinct labels.
    expansions: ShardedMap<ExpansionKey, Expansion>,
    /// Labeled variant of `expansions`, feeding the `out_edges`/`in_edges`
    /// primitive. Kept separate so the (hotter) unlabeled neighbor path
    /// stays label-free.
    labeled_expansions: ShardedMap<ExpansionKey, LabeledExpansion>,
    /// Compiled RPQ plans per canonical pattern text.
    plans: ShardedMap<String, Arc<RpqIndex<Arc<Grammar>>>>,
    pub(crate) cache_counters: CacheCounters,
}

impl GrammarEngine {
    /// Build the engine from an already-validated grammar (the caller —
    /// [`crate::GraphStore::from_grammar`] — revalidates first).
    pub(crate) fn new(grammar: Arc<Grammar>) -> Self {
        Self {
            index: GrammarIndex::new(grammar.clone()),
            reach: ReachIndex::new(grammar.clone()),
            grammar,
            expansions: ShardedMap::default(),
            labeled_expansions: ShardedMap::default(),
            plans: ShardedMap::default(),
            cache_counters: CacheCounters::default(),
        }
    }

    /// The grammar being served.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Neighbor collection with memoized nonterminal descent. The context
    /// scan mirrors `GrammarIndex::neighbors`; the descent into each
    /// nonterminal edge is replaced by a cache of rule-relative expansions
    /// (see [`GrammarIndex::rule_expansion`] for the uncached reference).
    /// The caller resolves `repr` (possibly through the per-batch locate
    /// cache); the derivation-path buffer comes from `scratch`.
    pub(crate) fn collect_neighbors(
        &self,
        repr: &GRepr,
        dir: Direction,
        scratch: &mut Scratch,
    ) -> Result<Vec<u64>, QueryError> {
        let ctx_graph = self.index.context(&repr.path);
        // Fast path: isolated (rank-0) nodes have no neighbors — return
        // before touching the expansion machinery.
        if ctx_graph.incident(repr.node).next().is_none() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let full: &mut Vec<EdgeId> = &mut scratch.full;
        full.clear();
        full.extend_from_slice(&repr.path);
        for e in ctx_graph.incident(repr.node) {
            let att = ctx_graph.att(e);
            match ctx_graph.label(e) {
                EdgeLabel::Terminal(_) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let neighbor = match dir {
                        // audited: att.len() == 2 was checked above; rank-2 terminal edge
                        Direction::Out if att[0] == repr.node => att[1],
                        // audited: att.len() == 2 was checked above; rank-2 terminal edge
                        Direction::In if att[1] == repr.node => att[0],
                        _ => continue,
                    };
                    out.push(self.index.global_id(&repr.path, neighbor));
                }
                EdgeLabel::Nonterminal(nt) => {
                    for (pos, &x) in att.iter().enumerate() {
                        if x != repr.node {
                            continue;
                        }
                        let exp = self.expansion(nt, pos as u32, dir);
                        for (rel, node) in exp.iter() {
                            full.truncate(repr.path.len());
                            full.push(e);
                            full.extend_from_slice(rel);
                            out.push(self.index.global_id(full, *node));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Memoized rule-relative expansion for `(nt, ext position, dir)` — a
    /// hit is an `Arc` clone out of the sharded cache (read lock, no copy).
    pub(crate) fn expansion(&self, nt: u32, pos: u32, dir: Direction) -> Expansion {
        let key: ExpansionKey = (nt, pos, dir);
        if let Some(hit) = self.expansions.get(&key) {
            self.cache_counters.expansion_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // Compute outside any lock: the recursion below re-enters
        // `expansion` for nested nonterminals (sharing their entries too).
        self.cache_counters.expansion_misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(self.compute_expansion(nt, pos, dir));
        self.expansions.insert_if_absent(key, computed)
    }

    /// Uncached expansion body; straight-line grammars make the recursion
    /// (over strictly smaller nonterminals) finite.
    fn compute_expansion(&self, nt: u32, pos: u32, dir: Direction) -> Vec<(Vec<EdgeId>, NodeId)> {
        let rhs = self.grammar.rule(nt);
        let Some(&v) = rhs.ext().get(pos as usize) else { return Vec::new() };
        let mut out = Vec::new();
        for e in rhs.incident(v) {
            let att = rhs.att(e);
            match rhs.label(e) {
                EdgeLabel::Terminal(_) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let neighbor = match dir {
                        // audited: att.len() == 2 was checked above; rank-2 terminal edge
                        Direction::Out if att[0] == v => att[1],
                        // audited: att.len() == 2 was checked above; rank-2 terminal edge
                        Direction::In if att[1] == v => att[0],
                        _ => continue,
                    };
                    out.push((Vec::new(), neighbor));
                }
                EdgeLabel::Nonterminal(sub) => {
                    for (p2, &x) in att.iter().enumerate() {
                        if x != v {
                            continue;
                        }
                        let nested = self.expansion(sub, p2 as u32, dir);
                        for (rel, node) in nested.iter() {
                            let mut path = Vec::with_capacity(rel.len() + 1);
                            path.push(e);
                            path.extend_from_slice(rel);
                            out.push((path, *node));
                        }
                    }
                }
            }
        }
        out
    }

    /// Labeled neighbor collection: the same context scan as
    /// [`Self::collect_neighbors`], but keeping the terminal label each
    /// neighbor was reached over. Feeds the `out_edges`/`in_edges`
    /// primitive the version overlay corrects.
    pub(crate) fn collect_edges(
        &self,
        repr: &GRepr,
        dir: Direction,
        scratch: &mut Scratch,
    ) -> Result<Vec<(u32, u64)>, QueryError> {
        let ctx_graph = self.index.context(&repr.path);
        if ctx_graph.incident(repr.node).next().is_none() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let full: &mut Vec<EdgeId> = &mut scratch.full;
        full.clear();
        full.extend_from_slice(&repr.path);
        for e in ctx_graph.incident(repr.node) {
            let att = ctx_graph.att(e);
            match ctx_graph.label(e) {
                EdgeLabel::Terminal(label) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let neighbor = match dir {
                        // audited: att.len() == 2 was checked above; rank-2 terminal edge
                        Direction::Out if att[0] == repr.node => att[1],
                        // audited: att.len() == 2 was checked above; rank-2 terminal edge
                        Direction::In if att[1] == repr.node => att[0],
                        _ => continue,
                    };
                    out.push((label, self.index.global_id(&repr.path, neighbor)));
                }
                EdgeLabel::Nonterminal(nt) => {
                    for (pos, &x) in att.iter().enumerate() {
                        if x != repr.node {
                            continue;
                        }
                        let exp = self.labeled_expansion(nt, pos as u32, dir);
                        for (rel, label, node) in exp.iter() {
                            full.truncate(repr.path.len());
                            full.push(e);
                            full.extend_from_slice(rel);
                            out.push((*label, self.index.global_id(full, *node)));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Memoized labeled rule-relative expansion — the labeled twin of
    /// [`Self::expansion`], sharing its hit/miss counters (both populate
    /// the same logical cache family).
    pub(crate) fn labeled_expansion(&self, nt: u32, pos: u32, dir: Direction) -> LabeledExpansion {
        let key: ExpansionKey = (nt, pos, dir);
        if let Some(hit) = self.labeled_expansions.get(&key) {
            self.cache_counters.expansion_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.cache_counters.expansion_misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(self.compute_labeled_expansion(nt, pos, dir));
        self.labeled_expansions.insert_if_absent(key, computed)
    }

    /// Uncached labeled expansion body, mirroring
    /// [`Self::compute_expansion`] with the terminal label threaded
    /// through.
    fn compute_labeled_expansion(
        &self,
        nt: u32,
        pos: u32,
        dir: Direction,
    ) -> Vec<(Vec<EdgeId>, u32, NodeId)> {
        let rhs = self.grammar.rule(nt);
        let Some(&v) = rhs.ext().get(pos as usize) else { return Vec::new() };
        let mut out = Vec::new();
        for e in rhs.incident(v) {
            let att = rhs.att(e);
            match rhs.label(e) {
                EdgeLabel::Terminal(label) => {
                    if att.len() != 2 {
                        continue;
                    }
                    let neighbor = match dir {
                        // audited: att.len() == 2 was checked above; rank-2 terminal edge
                        Direction::Out if att[0] == v => att[1],
                        // audited: att.len() == 2 was checked above; rank-2 terminal edge
                        Direction::In if att[1] == v => att[0],
                        _ => continue,
                    };
                    out.push((Vec::new(), label, neighbor));
                }
                EdgeLabel::Nonterminal(sub) => {
                    for (p2, &x) in att.iter().enumerate() {
                        if x != v {
                            continue;
                        }
                        let nested = self.labeled_expansion(sub, p2 as u32, dir);
                        for (rel, label, node) in nested.iter() {
                            let mut path = Vec::with_capacity(rel.len() + 1);
                            path.push(e);
                            path.extend_from_slice(rel);
                            out.push((path, *label, *node));
                        }
                    }
                }
            }
        }
        out
    }

    /// Compiled-plan lookup for an RPQ pattern — a hit is an `Arc` clone out
    /// of the sharded cache.
    pub(crate) fn plan(
        &self,
        pattern: &str,
    ) -> Result<Arc<RpqIndex<Arc<Grammar>>>, GrepairError> {
        if let Some(hit) = self.plans.get(pattern) {
            self.cache_counters.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.cache_counters.plan_misses.fetch_add(1, Ordering::Relaxed);
        let nfa = compile_pattern(pattern)?;
        let plan = Arc::new(RpqIndex::new(self.grammar.clone(), nfa));
        Ok(self.plans.insert_if_absent(pattern.to_string(), plan))
    }
}

impl QueryEngine for GrammarEngine {
    fn backend(&self) -> &'static str {
        crate::backend::GREPAIR
    }

    fn total_nodes(&self) -> u64 {
        self.index.total_nodes
    }

    fn out_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let repr = self.index.try_locate(v)?;
        Ok(self.collect_neighbors(&repr, Direction::Out, &mut Scratch::default())?)
    }

    fn in_neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let repr = self.index.try_locate(v)?;
        Ok(self.collect_neighbors(&repr, Direction::In, &mut Scratch::default())?)
    }

    fn out_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        let repr = self.index.try_locate(v)?;
        Ok(self.collect_edges(&repr, Direction::Out, &mut Scratch::default())?)
    }

    fn in_edges(&self, v: u64) -> Result<Vec<(u32, u64)>, GrepairError> {
        let repr = self.index.try_locate(v)?;
        Ok(self.collect_edges(&repr, Direction::In, &mut Scratch::default())?)
    }

    fn neighbors(&self, v: u64) -> Result<Vec<u64>, GrepairError> {
        let repr = self.index.try_locate(v)?;
        let mut scratch = Scratch::default();
        let mut out = self.collect_neighbors(&repr, Direction::Out, &mut scratch)?;
        out.extend(self.collect_neighbors(&repr, Direction::In, &mut scratch)?);
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    fn reachable(&self, s: u64, t: u64) -> Result<bool, GrepairError> {
        Ok(self.reach.try_reachable(s, t)?)
    }

    fn rpq(&self, pattern: &str, s: u64, t: u64) -> Result<bool, GrepairError> {
        let plan = self.plan(pattern)?;
        Ok(plan.try_matches(s, t)?)
    }

    fn components(&self) -> u64 {
        speedup::connected_components(&self.grammar)
    }

    fn degree_extrema(&self) -> Option<(u64, u64)> {
        speedup::degree_extrema(&self.grammar)
    }
}
