//! Property tests: a k²-tree must behave exactly like the dense matrix it
//! encodes, for arbitrary shapes, arities, and point sets — including after
//! a serialization round trip.

use grepair_bits::{BitReader, BitWriter};
use grepair_k2tree::K2Tree;
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32)>)> {
    (1u32..80, 1u32..80).prop_flat_map(|(rows, cols)| {
        let points = proptest::collection::vec((0..rows, 0..cols), 0..200);
        (Just(rows), Just(cols), points)
    })
}

proptest! {
    #[test]
    fn cells_match_dense_matrix((rows, cols, points) in arb_matrix(), k in 2u32..=4) {
        let tree = K2Tree::build(k, rows, cols, points.clone());
        let mut dense = vec![vec![false; cols as usize]; rows as usize];
        for &(r, c) in &points {
            dense[r as usize][c as usize] = true;
        }
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(tree.get(r, c), dense[r as usize][c as usize]);
            }
        }
    }

    #[test]
    fn rows_cols_and_iter_match((rows, cols, points) in arb_matrix()) {
        let tree = K2Tree::build(2, rows, cols, points.clone());
        let mut sorted = points.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(tree.iter_ones().collect::<Vec<_>>(), sorted.clone());
        for r in 0..rows {
            let want: Vec<u32> = sorted.iter().filter(|p| p.0 == r).map(|p| p.1).collect();
            prop_assert_eq!(tree.row(r), want);
        }
        for c in 0..cols {
            let want: Vec<u32> = sorted.iter().filter(|p| p.1 == c).map(|p| p.0).collect();
            prop_assert_eq!(tree.col(c), want);
        }
    }

    #[test]
    fn serialization_round_trips((rows, cols, points) in arb_matrix(), k in 2u32..=3) {
        let tree = K2Tree::build(k, rows, cols, points);
        let mut w = BitWriter::new();
        tree.encode(&mut w);
        prop_assert_eq!(w.bit_len(), tree.encoded_bits());
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        let back = K2Tree::decode(&mut r).unwrap();
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(
            tree.iter_ones().collect::<Vec<_>>(),
            back.iter_ones().collect::<Vec<_>>()
        );
        prop_assert_eq!(back.rows(), rows);
        prop_assert_eq!(back.cols(), cols);
    }
}
