//! Bit-exact serialization of k²-trees.
//!
//! Layout: δ(k) δ(rows+1) δ(cols+1) δ(|T|+1) δ(|L|+1), then the raw `T` and
//! `L` bits. δ-codes keep tiny trees tiny (matters for the per-label
//! subgraph trees of the grammar codec, many of which are nearly empty).

use crate::build::K2Tree;
use grepair_bits::codes::{delta_len, read_delta, write_delta};
use grepair_bits::{BitError, BitReader, BitVec, BitWriter, RankBitVec};

impl K2Tree {
    /// Append the serialized tree to `w`.
    pub fn encode(&self, w: &mut BitWriter) {
        write_delta(w, self.k as u64);
        write_delta(w, self.rows as u64 + 1);
        write_delta(w, self.cols as u64 + 1);
        write_delta(w, self.t.len() as u64 + 1);
        write_delta(w, self.l.len() as u64 + 1);
        for i in 0..self.t.len() {
            w.push_bit(self.t.get(i));
        }
        for i in 0..self.l.len() {
            w.push_bit(self.l.get(i));
        }
    }

    /// Exact size of [`K2Tree::encode`]'s output in bits.
    pub fn encoded_bits(&self) -> u64 {
        delta_len(self.k as u64)
            + delta_len(self.rows as u64 + 1)
            + delta_len(self.cols as u64 + 1)
            + delta_len(self.t.len() as u64 + 1)
            + delta_len(self.l.len() as u64 + 1)
            + self.storage_bits()
    }

    /// Decode a tree previously written by [`K2Tree::encode`].
    pub fn decode(r: &mut BitReader<'_>) -> grepair_bits::Result<K2Tree> {
        let k = read_delta(r)? as u32;
        if !(2..=8).contains(&k) {
            return Err(BitError::InvalidCode("k2tree arity out of range"));
        }
        let rows = (read_delta(r)? - 1) as u32;
        let cols = (read_delta(r)? - 1) as u32;
        let t_len = (read_delta(r)? - 1) as usize;
        let l_len = (read_delta(r)? - 1) as usize;
        let mut t = BitVec::new();
        for _ in 0..t_len {
            t.push(r.read_bit()?);
        }
        let mut l = BitVec::new();
        for _ in 0..l_len {
            l.push(r.read_bit()?);
        }
        // Recompute the derived geometry.
        let n = rows.max(cols).max(1) as u64;
        let mut side = 1u64;
        let mut height = 0u32;
        while side < n {
            side *= k as u64;
            height += 1;
        }
        if height == 0 {
            side = k as u64;
            height = 1;
        }
        // Validate the level structure so corrupt streams cannot drive
        // queries out of bounds: level 0 has k² bits; each further level has
        // k² bits per 1 in the previous level; internal levels must fill T
        // exactly and the last level must fill L exactly.
        let kk = (k * k) as usize;
        let mut pos = 0usize;
        let mut level_bits = kk;
        for level in 0..height {
            let last = level == height - 1;
            let store_len = if last { l.len() } else { t.len() };
            let store = if last { &l } else { &t };
            let base = if last { 0 } else { pos };
            if base + level_bits > store_len {
                return Err(BitError::InvalidCode("k2tree level overflows bitmap"));
            }
            let mut ones = 0usize;
            for i in 0..level_bits {
                ones += store.get(base + i) as usize;
            }
            if last {
                if level_bits != l.len() {
                    return Err(BitError::InvalidCode("k2tree leaf level size mismatch"));
                }
            } else {
                pos += level_bits;
            }
            level_bits = ones * kk;
        }
        if pos != t.len() {
            return Err(BitError::InvalidCode("k2tree internal levels size mismatch"));
        }
        Ok(K2Tree { k, rows, cols, side, height, t: RankBitVec::new(t), l })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_round_trip() {
        let t = K2Tree::build(2, 0, 0, vec![]);
        let mut w = BitWriter::new();
        t.encode(&mut w);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        let t2 = K2Tree::decode(&mut r).unwrap();
        assert_eq!(t2.count_ones(), 0);
        assert_eq!(t2.rows(), 0);
    }

    #[test]
    fn corrupted_arity_is_rejected() {
        let mut w = BitWriter::new();
        write_delta(&mut w, 1); // k = 1: invalid
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert!(K2Tree::decode(&mut r).is_err());
    }

    #[test]
    fn encoded_bits_is_exact_for_various_shapes() {
        for (rows, cols, pts) in [
            (1u32, 1u32, vec![(0u32, 0u32)]),
            (100, 3, vec![(99, 2), (0, 0), (50, 1)]),
            (64, 64, (0..64).map(|i| (i, i)).collect::<Vec<_>>()),
        ] {
            let t = K2Tree::build(2, rows, cols, pts);
            let mut w = BitWriter::new();
            t.encode(&mut w);
            assert_eq!(w.bit_len(), t.encoded_bits());
        }
    }
}
