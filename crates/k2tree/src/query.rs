//! Queries over a built k²-tree: cell membership, row/column retrieval
//! (out-/in-neighborhoods when the matrix is an adjacency matrix), and
//! full enumeration of 1-cells.

use crate::build::K2Tree;

impl K2Tree {
    /// Position of the first child of the internal node whose bit sits at
    /// `pos` in `T` (which must be a 1 bit).
    #[inline]
    fn children_start(&self, pos: usize) -> usize {
        self.t.rank1(pos + 1) * (self.k * self.k) as usize
    }

    /// Bit at combined position `pos` (positions ≥ |T| index into `L`).
    #[inline]
    fn bit(&self, pos: usize) -> bool {
        if pos < self.t.len() {
            self.t.get(pos)
        } else {
            self.l.get(pos - self.t.len())
        }
    }

    /// Is cell `(row, col)` set?
    pub fn get(&self, row: u32, col: u32) -> bool {
        if row >= self.rows || col >= self.cols {
            return false;
        }
        let k = self.k as u64;
        let mut side = self.side / k;
        let mut pos = 0usize; // position of the current node's first child bit
        let (mut r, mut c) = (row as u64, col as u64);
        loop {
            let child = (r / side) * k + c / side;
            let p = pos + child as usize;
            if !self.bit(p) {
                return false;
            }
            if side == 1 {
                return true;
            }
            pos = self.children_start(p);
            r %= side;
            c %= side;
            side /= k;
        }
    }

    /// All set columns in `row`, ascending — the out-neighborhood when rows
    /// are sources.
    pub fn row(&self, row: u32) -> Vec<u32> {
        let mut out = Vec::new();
        if row < self.rows {
            self.walk_row(row as u64, 0, 0, self.side, &mut out);
        }
        out
    }

    fn walk_row(&self, r: u64, pos: usize, col0: u64, side: u64, out: &mut Vec<u32>) {
        let k = self.k as u64;
        let sub = side / k;
        let row_band = r / sub;
        for bc in 0..k {
            let p = pos + (row_band * k + bc) as usize;
            if !self.bit(p) {
                continue;
            }
            let col = col0 + bc * sub;
            if sub == 1 {
                if col < self.cols as u64 {
                    out.push(col as u32);
                }
            } else {
                self.walk_row(r % sub, self.children_start(p), col, sub, out);
            }
        }
    }

    /// All set rows in `col`, ascending — the in-neighborhood when rows are
    /// sources.
    pub fn col(&self, col: u32) -> Vec<u32> {
        let mut out = Vec::new();
        if col < self.cols {
            self.walk_col(col as u64, 0, 0, self.side, &mut out);
        }
        out
    }

    fn walk_col(&self, c: u64, pos: usize, row0: u64, side: u64, out: &mut Vec<u32>) {
        let k = self.k as u64;
        let sub = side / k;
        let col_band = c / sub;
        for br in 0..k {
            let p = pos + (br * k + col_band) as usize;
            if !self.bit(p) {
                continue;
            }
            let row = row0 + br * sub;
            if sub == 1 {
                if row < self.rows as u64 {
                    out.push(row as u32);
                }
            } else {
                self.walk_col(c % sub, self.children_start(p), row, sub, out);
            }
        }
    }

    /// All 1-cells in row-major order within each quadrant traversal
    /// (globally sorted by (row, col) only for already-sorted inputs of
    /// `build`, which dedups and sorts — i.e. deterministic).
    pub fn iter_ones(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let mut out = Vec::new();
        if self.count_ones() > 0 {
            self.walk_all(0, 0, 0, self.side, &mut out);
        }
        out.sort_unstable();
        out.into_iter()
    }

    fn walk_all(&self, pos: usize, row0: u64, col0: u64, side: u64, out: &mut Vec<(u32, u32)>) {
        let k = self.k as u64;
        let sub = side / k;
        for br in 0..k {
            for bc in 0..k {
                let p = pos + (br * k + bc) as usize;
                if !self.bit(p) {
                    continue;
                }
                let (row, col) = (row0 + br * sub, col0 + bc * sub);
                if sub == 1 {
                    if row < self.rows as u64 && col < self.cols as u64 {
                        out.push((row as u32, col as u32));
                    }
                } else {
                    self.walk_all(self.children_start(p), row, col, sub, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_queries_are_false_or_empty() {
        let t = K2Tree::build(2, 3, 3, vec![(0, 0)]);
        assert!(!t.get(5, 0));
        assert!(!t.get(0, 5));
        assert!(t.row(9).is_empty());
        assert!(t.col(9).is_empty());
    }

    #[test]
    fn random_matrix_matches_reference() {
        // Deterministic xorshift-filled 37x53 matrix.
        let mut x = 0x2545F491_4F6CDD1Du64;
        let mut pts = Vec::new();
        let mut reference = vec![[false; 53]; 37];
        for r in 0..37u32 {
            for c in 0..53u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x.is_multiple_of(7) {
                    pts.push((r, c));
                    reference[r as usize][c as usize] = true;
                }
            }
        }
        let t = K2Tree::build(2, 37, 53, pts.clone());
        for r in 0..37u32 {
            let want: Vec<u32> =
                (0..53u32).filter(|&c| reference[r as usize][c as usize]).collect();
            assert_eq!(t.row(r), want, "row {r}");
        }
        for c in 0..53u32 {
            let want: Vec<u32> =
                (0..37u32).filter(|&r| reference[r as usize][c as usize]).collect();
            assert_eq!(t.col(c), want, "col {c}");
        }
        assert_eq!(t.iter_ones().collect::<Vec<_>>(), pts);
    }
}
