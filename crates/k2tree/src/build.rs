//! Construction of k²-trees.

use grepair_bits::{BitVec, RankBitVec};

/// A static k²-tree over an `rows × cols` binary matrix.
///
/// Built once from the list of 1-cells; immutable afterwards.
#[derive(Debug, Clone)]
pub struct K2Tree {
    pub(crate) k: u32,
    pub(crate) rows: u32,
    pub(crate) cols: u32,
    /// Padded (square) side length, a power of `k`.
    pub(crate) side: u64,
    /// Tree height: number of internal levels (so `side = k^(height+1)`
    /// unless the matrix is a single cell).
    pub(crate) height: u32,
    /// Internal-level bits, level by level.
    pub(crate) t: RankBitVec,
    /// Leaf-level bits (individual cells).
    pub(crate) l: BitVec,
}

impl K2Tree {
    /// Build a k²-tree with arity `k ≥ 2` over an `rows × cols` matrix whose
    /// 1-cells are `points` (duplicates allowed; order irrelevant).
    ///
    /// # Panics
    /// If `k < 2` or a point lies outside the matrix.
    pub fn build(k: u32, rows: u32, cols: u32, mut points: Vec<(u32, u32)>) -> Self {
        assert!(k >= 2, "k must be at least 2");
        for &(r, c) in &points {
            assert!(r < rows.max(1) && c < cols.max(1), "point ({r},{c}) out of bounds");
        }
        let n = rows.max(cols).max(1) as u64;
        // side = smallest power of k that is >= n, and at least k so that a
        // single split reaches the leaf level.
        let mut side = 1u64;
        let mut height = 0u32;
        while side < n {
            side *= k as u64;
            height += 1;
        }
        if height == 0 {
            side = k as u64;
            height = 1;
        }

        points.sort_unstable();
        points.dedup();

        // Level-by-level construction: each level holds the list of
        // (origin_row, origin_col, points-in-sub-square) tasks; emit k²
        // bits per task.
        type Task = (u64, u64, Vec<(u32, u32)>);
        let mut t_bits = BitVec::new();
        let mut l_bits = BitVec::new();
        let mut tasks: Vec<Task> = vec![(0, 0, points)];
        let mut level_side = side;
        for level in 0..height {
            level_side /= k as u64;
            let last_level = level == height - 1;
            let mut next: Vec<Task> = Vec::new();
            for (or, oc, pts) in tasks {
                // Partition the task's points into the k² children in
                // row-major child order.
                let kk = (k * k) as usize;
                let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); kk];
                for (r, c) in pts {
                    let br = (r as u64 - or) / level_side;
                    let bc = (c as u64 - oc) / level_side;
                    // audited: the partition arithmetic keeps br and bc < k, so the bucket index < k*k
                    buckets[(br * k as u64 + bc) as usize].push((r, c));
                }
                for (i, bucket) in buckets.into_iter().enumerate() {
                    let bit = !bucket.is_empty();
                    if last_level {
                        l_bits.push(bit);
                    } else {
                        t_bits.push(bit);
                        if bit {
                            let br = i as u64 / k as u64;
                            let bc = i as u64 % k as u64;
                            next.push((or + br * level_side, oc + bc * level_side, bucket));
                        }
                    }
                }
            }
            tasks = next;
        }

        Self {
            k,
            rows,
            cols,
            side,
            height,
            t: RankBitVec::new(t_bits),
            l: l_bits,
        }
    }

    /// Arity.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Tree height (number of levels, leaf level included).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Logical row count.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of 1-cells.
    pub fn count_ones(&self) -> usize {
        self.l.count_ones()
    }

    /// Size of the structural bitmaps in bits (|T| + |L|) — the payload the
    /// paper's file format stores.
    pub fn storage_bits(&self) -> u64 {
        self.t.len() as u64 + self.l.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_is_padded_to_power_of_k() {
        let t = K2Tree::build(2, 9, 9, vec![]);
        assert_eq!(t.side, 16);
        assert_eq!(t.height, 4);
        let t = K2Tree::build(3, 9, 9, vec![]);
        assert_eq!(t.side, 9);
        assert_eq!(t.height, 2);
    }

    #[test]
    fn empty_tree_has_single_zero_level() {
        let t = K2Tree::build(2, 4, 4, vec![]);
        // Root level is all zeros, nothing below.
        assert_eq!(t.t.len() + t.l.len(), 4);
        assert_eq!(t.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_point_panics() {
        K2Tree::build(2, 3, 3, vec![(3, 0)]);
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn k1_rejected() {
        K2Tree::build(1, 3, 3, vec![]);
    }
}
