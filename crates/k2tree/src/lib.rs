//! k²-trees (Brisaboa, Ladra & Navarro \[21\]): a succinct representation of
//! sparse binary matrices used by the paper to encode the incompressible
//! start graph of a grammar (§III-C2) and, on its own, as the `k2-tree`
//! baseline compressor of §IV.
//!
//! The matrix is padded to the next power of `k` and recursively split into
//! k² submatrices. An all-zero submatrix becomes a 0 bit; a non-empty one
//! becomes a 1 bit whose children are emitted one level down. Bits of all
//! internal levels form the bitmap `T`; the last level (individual cells)
//! forms `L`. Navigation uses `rank1` on `T`: the children of the node at
//! position `p` start at `rank1(T, p+1) · k²`.
//!
//! Supports cell queries, full-row (out-neighbor) and full-column
//! (in-neighbor) retrieval, iteration over all 1-cells, and bit-exact
//! serialization.

#![forbid(unsafe_code)]

mod build;
mod query;
mod serialize;

pub use build::K2Tree;

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_bits::{BitReader, BitWriter};

    fn example_points() -> Vec<(u32, u32)> {
        // The 9×9 terminal-edge matrix of Fig. 9 (left), 0-based:
        // ones at (0,1), (0,3), (0,5), (0,7), (2,8), (4,6)
        vec![(0, 1), (0, 3), (0, 5), (0, 7), (2, 8), (4, 6)]
    }

    #[test]
    fn fig9_matrix_cells() {
        let t = K2Tree::build(2, 9, 9, example_points());
        for r in 0..9 {
            for c in 0..9 {
                let expect = example_points().contains(&(r, c));
                assert_eq!(t.get(r, c), expect, "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn fig9_row_and_col() {
        let t = K2Tree::build(2, 9, 9, example_points());
        assert_eq!(t.row(0), vec![1, 3, 5, 7]);
        assert_eq!(t.row(2), vec![8]);
        assert_eq!(t.row(3), Vec::<u32>::new());
        assert_eq!(t.col(6), vec![4]);
        assert_eq!(t.col(1), vec![0]);
        assert_eq!(t.col(0), Vec::<u32>::new());
    }

    #[test]
    fn empty_matrix() {
        let t = K2Tree::build(2, 5, 5, Vec::new());
        assert!(!t.get(3, 3));
        assert!(t.row(0).is_empty());
        assert_eq!(t.iter_ones().count(), 0);
    }

    #[test]
    fn one_by_one() {
        let t = K2Tree::build(2, 1, 1, vec![(0, 0)]);
        assert!(t.get(0, 0));
        assert_eq!(t.iter_ones().collect::<Vec<_>>(), vec![(0, 0)]);
    }

    #[test]
    fn full_matrix() {
        let pts: Vec<(u32, u32)> = (0..4).flat_map(|r| (0..4).map(move |c| (r, c))).collect();
        let t = K2Tree::build(2, 4, 4, pts.clone());
        let got: Vec<_> = t.iter_ones().collect();
        assert_eq!(got, pts);
    }

    #[test]
    fn rectangular_matrix() {
        // nodes × edges incidence shape: 5 rows, 12 cols
        let pts = vec![(0, 0), (0, 11), (4, 3), (2, 7)];
        let t = K2Tree::build(2, 5, 12, pts.clone());
        for &(r, c) in &pts {
            assert!(t.get(r, c));
        }
        assert!(!t.get(4, 11));
        let mut got: Vec<_> = t.iter_ones().collect();
        got.sort();
        let mut want = pts;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn k4_variant() {
        let pts = vec![(0, 0), (9, 9), (3, 12), (15, 2)];
        let t = K2Tree::build(4, 16, 16, pts.clone());
        for &(r, c) in &pts {
            assert!(t.get(r, c), "({r},{c})");
        }
        assert!(!t.get(1, 1));
        assert_eq!(t.iter_ones().count(), 4);
    }

    #[test]
    fn serialization_round_trip() {
        let t = K2Tree::build(2, 9, 9, example_points());
        let mut w = BitWriter::new();
        t.encode(&mut w);
        let (bytes, len) = w.finish();
        assert_eq!(len, t.encoded_bits());
        let mut r = BitReader::new(&bytes, len);
        let t2 = K2Tree::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(
            t.iter_ones().collect::<Vec<_>>(),
            t2.iter_ones().collect::<Vec<_>>()
        );
        assert_eq!(t2.rows(), 9);
        assert_eq!(t2.cols(), 9);
    }

    #[test]
    fn duplicate_points_are_deduped() {
        let t = K2Tree::build(2, 3, 3, vec![(1, 1), (1, 1), (2, 0)]);
        assert_eq!(t.iter_ones().count(), 2);
    }

    #[test]
    fn rank_boundary_regression_68x48() {
        // Found by the dense-matrix property test: with a T bitmap whose
        // word count hit an exact rank-superblock boundary, navigation
        // aliased cell (66,26) onto (67,26)'s leaf bit.
        let pts: Vec<(u32, u32)> = vec![
            (62, 43), (31, 23), (22, 23), (37, 12), (12, 27), (47, 45), (38, 7), (21, 41),
            (21, 6), (32, 17), (32, 39), (65, 13), (52, 42), (60, 6), (41, 38), (20, 14),
            (0, 3), (56, 45), (50, 20), (17, 11), (62, 11), (34, 39), (42, 25), (15, 44),
            (12, 5), (9, 10), (28, 28), (56, 38), (39, 25), (57, 8), (14, 35), (16, 47),
            (41, 34), (31, 11), (6, 2), (7, 43), (27, 11), (41, 15), (67, 26), (24, 16),
            (53, 0), (55, 37), (14, 34), (46, 40), (13, 4), (52, 42), (7, 10), (34, 21),
            (55, 22), (19, 32), (13, 25), (65, 18), (10, 8), (59, 12), (45, 7), (5, 4),
            (52, 1), (0, 18), (45, 31), (22, 16), (42, 6), (50, 44), (55, 23), (55, 5),
            (57, 47), (54, 9), (12, 18), (54, 37), (43, 32), (57, 43), (31, 5), (34, 45),
            (20, 30), (25, 4),
        ];
        let tree = K2Tree::build(2, 68, 48, pts.clone());
        assert!(!tree.get(66, 26));
        assert!(tree.get(67, 26));
        let mut sorted = pts;
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(tree.iter_ones().collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn storage_is_sublinear_for_clustered_ones() {
        // A dense 16x16 block in a 1024x1024 matrix: the k2-tree should cost
        // far less than the 1M bits of the raw matrix.
        let pts: Vec<(u32, u32)> =
            (0..16).flat_map(|r| (0..16).map(move |c| (r, c))).collect();
        let t = K2Tree::build(2, 1024, 1024, pts);
        assert!(t.encoded_bits() < 2000, "got {}", t.encoded_bits());
    }
}
