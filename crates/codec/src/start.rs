//! Start-graph sections: one k²-tree per label.

use crate::perm::{apply_perm, perm_of, PermDict};
use crate::CodecError;
use grepair_bits::codes::{read_delta, write_delta};
use grepair_bits::{BitReader, BitWriter};
use grepair_hypergraph::{EdgeLabel, Hypergraph, NodeId};
use grepair_k2tree::K2Tree;

/// The paper uses k = 2 ("as this provides the best compression").
const K: u32 = 2;

/// How one label's subgraph is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelMode {
    /// Rank-2, duplicate-free: adjacency matrix.
    Adjacency,
    /// Anything else: node × edge incidence matrix plus permutations.
    Incidence,
}

/// Encoding plan for one label appearing in S.
#[derive(Debug)]
pub struct LabelPlan {
    /// The label.
    pub label: EdgeLabel,
    /// Chosen representation.
    pub mode: LabelMode,
    /// Edges of this label, in start-graph edge order, with dense-node
    /// attachments.
    pub edges: Vec<Vec<NodeId>>,
}

/// Dense-node renumbering of the start graph: alive nodes ascending ↦ 0..m.
pub fn dense_map(start: &Hypergraph) -> (Vec<NodeId>, usize) {
    let mut map = vec![NodeId::MAX; start.node_bound()];
    let mut next = 0;
    for v in start.node_ids() {
        // audited: node_ids() yields v < node_bound == map.len()
        map[v as usize] = next;
        next += 1;
    }
    (map, next as usize)
}

/// Analyze S: group edges by label in canonical order, pick modes, intern
/// permutations for incidence labels. Labels are emitted terminals-first,
/// ascending — the same order `canonicalize_start_edges` sorts by.
pub fn plan_labels(start: &Hypergraph, dense: &[NodeId], dict: &mut PermDict) -> Vec<LabelPlan> {
    let mut plans: Vec<LabelPlan> = Vec::new();
    for e in start.edges() {
        // audited: edge attachments are alive nodes < node_bound == dense.len()
        let att: Vec<NodeId> = e.att.iter().map(|&v| dense[v as usize]).collect();
        assert!(!att.is_empty(), "rank-0 edges are not encodable");
        match plans.last_mut() {
            Some(plan) if plan.label == e.label => plan.edges.push(att),
            _ => plans.push(LabelPlan { label: e.label, mode: LabelMode::Adjacency, edges: vec![att] }),
        }
    }
    for plan in &mut plans {
        let all_rank2 = plan.edges.iter().all(|a| a.len() == 2);
        // Edges arrive att-lexicographically sorted, so duplicates are
        // adjacent.
        // audited: windows(2) yields exactly two elements
        let has_dupes = plan.edges.windows(2).any(|w| w[0] == w[1]);
        plan.mode = if all_rank2 && !has_dupes {
            LabelMode::Adjacency
        } else {
            LabelMode::Incidence
        };
        if plan.mode == LabelMode::Incidence {
            for att in &plan.edges {
                dict.intern(perm_of(att));
            }
        }
    }
    plans
}

/// Encode one label section. Returns (matrix bits, permutation bits).
pub fn encode_label(
    w: &mut BitWriter,
    plan: &LabelPlan,
    m: usize,
    dict: &PermDict,
) -> (u64, u64) {
    let before = w.bit_len();
    match plan.mode {
        LabelMode::Adjacency => {
            w.push_bit(false);
            let points: Vec<(u32, u32)> =
                // audited: Adjacency mode is only picked when every att has rank 2
                plan.edges.iter().map(|att| (att[0], att[1])).collect();
            let tree = K2Tree::build(K, m as u32, m as u32, points);
            tree.encode(w);
            (w.bit_len() - before, 0)
        }
        LabelMode::Incidence => {
            w.push_bit(true);
            write_delta(w, plan.edges.len() as u64 + 1);
            let mut points = Vec::new();
            for (col, att) in plan.edges.iter().enumerate() {
                for &v in att {
                    points.push((v, col as u32));
                }
            }
            let tree = K2Tree::build(K, m as u32, plan.edges.len().max(1) as u32, points);
            tree.encode(w);
            let matrix_bits = w.bit_len() - before;
            let perm_start = w.bit_len();
            for att in &plan.edges {
                let perm = perm_of(att);
                let idx = dict
                    .index_of(&perm)
                    // audited: planning interned every incidence permutation just above
                    .expect("permutation interned during planning");
                dict.encode_index(w, idx);
            }
            (matrix_bits, w.bit_len() - perm_start)
        }
    }
}

/// Decode one label section, appending its edges to `start`.
pub fn decode_label(
    r: &mut BitReader<'_>,
    start: &mut Hypergraph,
    label: EdgeLabel,
    dict: &PermDict,
) -> Result<(), CodecError> {
    // Every node id decoded below comes from an untrusted k²-tree whose
    // dimensions a corrupt stream controls; anything outside the start
    // graph's node range must be rejected here, before `add_edge` indexes
    // with it (the §2 zero-panic policy).
    let bound = start.node_bound() as u32;
    let in_range = |v: u32| -> Result<u32, CodecError> {
        if v >= bound {
            return Err(CodecError::Malformed(format!(
                "edge attachment {v} outside the start graph's {bound} nodes"
            )));
        }
        Ok(v)
    };
    let incidence = r.read_bit()?;
    if !incidence {
        let tree = K2Tree::decode(r)?;
        for (row, col) in tree.iter_ones() {
            if row == col {
                return Err(CodecError::Malformed("self-loop in adjacency matrix".into()));
            }
            start.add_edge(label, &[in_range(row)?, in_range(col)?]);
        }
    } else {
        let edge_count = (read_delta(r)? - 1) as usize;
        let tree = K2Tree::decode(r)?;
        // The edge count is untrusted: it must match the incidence
        // matrix's own geometry (the encoder sets cols = edges.max(1)),
        // and it must be describable by the stream — every edge either
        // attaches somewhere (≥ 1 one-cell) or still costs permutation
        // bits. Without these bounds a ~70-bit payload could claim 2^60
        // edges and drive the allocation and the column loop below.
        if tree.cols() as usize != edge_count.max(1) {
            return Err(CodecError::Malformed(format!(
                "incidence matrix has {} columns for {} edges",
                tree.cols(),
                edge_count
            )));
        }
        if edge_count as u64 > tree.count_ones() as u64 + r.remaining() + 1 {
            return Err(CodecError::Malformed(format!(
                "edge count {edge_count} exceeds what the stream can describe"
            )));
        }
        let mut atts: Vec<Vec<NodeId>> = Vec::with_capacity(edge_count);
        for col in 0..edge_count as u32 {
            let att = tree.col(col);
            for &v in &att {
                in_range(v)?;
            }
            atts.push(att);
        }
        for sorted_att in atts {
            let idx = dict.decode_index(r)?;
            // A fixed-width index can name up to 2^bits slots, more than the
            // dict holds — a corrupt stream picks one of the ghosts.
            let perm = dict.get(idx).ok_or_else(|| {
                CodecError::Malformed(format!("permutation index {idx} out of range"))
            })?;
            if perm.len() != sorted_att.len() {
                return Err(CodecError::Malformed(format!(
                    "permutation length {} does not match edge rank {}",
                    perm.len(),
                    sorted_att.len()
                )));
            }
            let att = apply_perm(&sorted_att, perm);
            start.add_edge(label, &att);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_hypergraph::EdgeLabel::{Nonterminal as N, Terminal as T};

    fn round_trip_start(start: &Hypergraph) -> Hypergraph {
        let (dense, m) = dense_map(start);
        let mut dict = PermDict::new();
        let plans = plan_labels(start, &dense, &mut dict);
        let mut w = BitWriter::new();
        dict.encode(&mut w);
        for plan in &plans {
            encode_label(&mut w, plan, m, &dict);
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        let dict2 = PermDict::decode(&mut r).unwrap();
        let mut out = Hypergraph::with_nodes(m);
        for plan in &plans {
            decode_label(&mut r, &mut out, plan.label, &dict2).unwrap();
        }
        assert_eq!(r.remaining(), 0);
        out
    }

    #[test]
    fn rank2_labels_round_trip() {
        let mut s = Hypergraph::with_nodes(6);
        s.add_edge(T(0), &[0, 1]);
        s.add_edge(T(0), &[1, 5]);
        s.add_edge(T(1), &[5, 0]);
        s.add_edge(N(0), &[2, 3]);
        let out = round_trip_start(&s);
        assert_eq!(out.edge_multiset(), s.edge_multiset());
    }

    #[test]
    fn hyperedges_round_trip_with_order() {
        let mut s = Hypergraph::with_nodes(5);
        s.add_edge(N(0), &[3, 0, 4]); // unsorted attachment order
        s.add_edge(N(0), &[2, 1, 0]);
        let out = round_trip_start(&s);
        assert_eq!(out.edge_multiset(), s.edge_multiset());
        // Attachment order (not just set) must survive.
        let atts: Vec<Vec<NodeId>> = out.edges().map(|e| e.att.to_vec()).collect();
        assert!(atts.contains(&vec![3, 0, 4]));
        assert!(atts.contains(&vec![2, 1, 0]));
    }

    #[test]
    fn duplicate_rank2_edges_use_incidence() {
        let mut s = Hypergraph::with_nodes(3);
        s.add_edge(N(0), &[0, 1]);
        s.add_edge(N(0), &[0, 1]); // duplicate NT edge — legal in grammars
        let (dense, _) = dense_map(&s);
        let mut dict = PermDict::new();
        let plans = plan_labels(&s, &dense, &mut dict);
        assert_eq!(plans[0].mode, LabelMode::Incidence);
        let out = round_trip_start(&s);
        assert_eq!(out.num_edges(), 2);
        assert_eq!(out.edge_multiset(), s.edge_multiset());
    }

    #[test]
    fn dead_node_slots_are_densified() {
        let mut s = Hypergraph::with_nodes(4);
        s.add_edge(T(0), &[0, 3]);
        // Node 1 and 2 are dead (removed during compression).
        s.remove_node(1);
        s.remove_node(2);
        let out = round_trip_start(&s);
        assert_eq!(out.num_nodes(), 2);
        assert_eq!(out.att(0), &[0, 1]); // dense renumbering 0↦0, 3↦1
    }
}
