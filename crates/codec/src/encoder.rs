//! Top-level grammar encoder.

use crate::perm::PermDict;
use crate::rules::encode_rule;
use crate::start::{dense_map, encode_label, plan_labels};
use crate::{EncodedGrammar, SizeBreakdown};
use grepair_bits::codes::write_delta;
use grepair_bits::BitWriter;
use grepair_grammar::Grammar;
use grepair_hypergraph::EdgeLabel;

/// Serialize a grammar to the §III-C2 bit format.
///
/// Stream layout:
/// 1. header: δ(|Σ|+1), δ(#rules+1), δ(m+1) with m = |V_S| (dense), the
///    start graph's external sequence, the label presence bitmap, the
///    permutation dictionary;
/// 2. one section per present label (terminals ascending, then nonterminals
///    ascending): mode bit + k²-tree (+ δ(edge count) and permutation
///    indices for incidence labels);
/// 3. the rules, in nonterminal order.
pub fn encode(grammar: &Grammar) -> EncodedGrammar {
    let start = &grammar.start;
    let (dense, m) = dense_map(start);
    let mut dict = PermDict::new();
    let plans = plan_labels(start, &dense, &mut dict);

    let mut w = BitWriter::new();
    let mut breakdown = SizeBreakdown::default();

    // --- header ---
    write_delta(&mut w, grammar.num_terminals() as u64 + 1);
    write_delta(&mut w, grammar.num_nonterminals() as u64 + 1);
    write_delta(&mut w, m as u64 + 1);
    write_delta(&mut w, start.ext().len() as u64 + 1);
    for &v in start.ext() {
        // audited: ext nodes are alive start-graph nodes, and dense covers node_bound
        write_delta(&mut w, dense[v as usize] as u64 + 1);
    }
    // Presence bitmap: terminals then nonterminals.
    let mut present = vec![false; grammar.num_terminals() as usize + grammar.num_nonterminals()];
    for plan in &plans {
        let slot = match plan.label {
            EdgeLabel::Terminal(t) => t as usize,
            EdgeLabel::Nonterminal(i) => grammar.num_terminals() as usize + i as usize,
        };
        // audited: plan labels come from the compressor's own grammar, so slots fit
        present[slot] = true;
    }
    for &p in &present {
        w.push_bit(p);
    }
    dict.encode(&mut w);
    breakdown.header_bits = w.bit_len();

    // --- start graph sections ---
    for plan in &plans {
        let (matrix_bits, perm_bits) = encode_label(&mut w, plan, m, &dict);
        breakdown.start_graph_bits += matrix_bits;
        breakdown.permutation_bits += perm_bits;
    }

    // --- rules ---
    let rules_start = w.bit_len();
    for rhs in grammar.rules() {
        encode_rule(&mut w, rhs);
    }
    breakdown.rule_bits = w.bit_len() - rules_start;

    let (bytes, bit_len) = w.finish();
    debug_assert_eq!(bit_len, breakdown.total());
    EncodedGrammar { bytes, bit_len, breakdown }
}
