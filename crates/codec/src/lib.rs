//! The grammar binary format (§III-C2).
//!
//! The start graph and the productions are encoded differently:
//!
//! * **Start graph** — for every label σ appearing in S, the subgraph of
//!   σ-edges is stored as a k²-tree (k = 2): an adjacency matrix for plain
//!   rank-2 labels, an incidence matrix (nodes × edges) for hyperedge labels
//!   — the incidence matrix only gives the *set* of attached nodes, so a
//!   per-edge permutation (from a global dictionary, ⌈log n⌉-bit fixed-length
//!   codes) recovers the attachment order.
//! * **Rules** — edge lists with Elias δ-codes: per rule the edge count,
//!   then per edge one terminal/nonterminal bit, the attachment count, the
//!   attached node IDs (each preceded by an external-marker bit), and the
//!   label. The worked example of §III-C2 (the rule of Fig. 6) costs exactly
//!   28 bits in this core format; our container adds a 2-bit empty
//!   "isolated nodes" section (needed because virtual-edge stripping can
//!   leave edge-less nodes in a rule — a documented deviation).
//!
//! [`encode`] and [`decode`] are exact inverses on the *dense-renumbered*
//! grammar: the compressor canonicalizes start-edge order before handing a
//! grammar out, so `val(decode(encode(G)))` equals `val(G)` node-for-node.
//!
//! The returned [`EncodedGrammar`] carries a size breakdown
//! ([`SizeBreakdown`]) used by the evaluation (the paper observes that >90 %
//! of the output is usually the k²-tree of the start graph).

#![forbid(unsafe_code)]

mod decoder;
mod encoder;
pub mod perm;
pub mod rules;
pub mod start;

pub use decoder::decode;
pub use encoder::encode;

use grepair_bits::BitError;

/// Errors produced while decoding a grammar stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Bit-stream level failure.
    Bits(BitError),
    /// Structural failure (counts/ranks inconsistent).
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Bits(e) => write!(f, "bit stream: {e}"),
            CodecError::Malformed(what) => write!(f, "malformed grammar stream: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<BitError> for CodecError {
    fn from(e: BitError) -> Self {
        CodecError::Bits(e)
    }
}

/// Byte-level result of [`encode`].
#[derive(Debug, Clone)]
pub struct EncodedGrammar {
    /// The encoded stream (zero-padded to a byte boundary).
    pub bytes: Vec<u8>,
    /// Exact length in bits.
    pub bit_len: u64,
    /// Where the bits went.
    pub breakdown: SizeBreakdown,
}

impl EncodedGrammar {
    /// Size in bytes (rounded up).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Bits per edge for an input with `edges` terminal edges — the paper's
    /// headline metric.
    pub fn bits_per_edge(&self, edges: usize) -> f64 {
        grepair_util::fmt::bits_per_edge(self.bit_len, edges as u64)
    }
}

/// Bit counts per stream section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeBreakdown {
    /// Counts and the permutation dictionary.
    pub header_bits: u64,
    /// All per-label k²-trees of the start graph.
    pub start_graph_bits: u64,
    /// Per-edge permutation indices (hyperedge labels only).
    pub permutation_bits: u64,
    /// The δ-coded rules.
    pub rule_bits: u64,
}

impl SizeBreakdown {
    /// Total bits.
    pub fn total(&self) -> u64 {
        self.header_bits + self.start_graph_bits + self.permutation_bits + self.rule_bits
    }

    /// Fraction of the output spent on the start graph (incl. permutations).
    pub fn start_graph_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.start_graph_bits + self.permutation_bits) as f64 / self.total() as f64
        }
    }
}
