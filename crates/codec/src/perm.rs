//! Permutation dictionary for hyperedge attachment orders.
//!
//! The incidence matrix of a hyperedge label records which nodes an edge
//! attaches but not in which order. As in the paper: "we count the number of
//! distinct such permutations appearing in the grammar and assign a number
//! to each; then we store the list encoded in a ⌈log n⌉-fixed length
//! encoding".

use grepair_bits::codes::{ceil_log2, read_delta, write_delta};
use grepair_bits::{BitReader, BitWriter};
use grepair_hypergraph::NodeId;
use grepair_util::FxHashMap;

use crate::CodecError;

/// A permutation `p` such that `att[i] = sorted_att[p[i]]`.
pub type Perm = Vec<u8>;

/// Compute the permutation taking the ascending-sorted attachment to the
/// actual attachment order.
pub fn perm_of(att: &[NodeId]) -> Perm {
    let mut sorted: Vec<NodeId> = att.to_vec();
    sorted.sort_unstable();
    att.iter()
        // audited: sorted is a permutation of att, so every element is found
        .map(|v| sorted.iter().position(|x| x == v).unwrap() as u8)
        .collect()
}

/// Apply a permutation: `result[i] = sorted_att[p[i]]`.
pub fn apply_perm(sorted_att: &[NodeId], perm: &[u8]) -> Vec<NodeId> {
    // audited: callers check perm.len() == sorted_att.len(), and decoded dict entries are validated < len
    perm.iter().map(|&i| sorted_att[i as usize]).collect()
}

/// Dictionary of distinct permutations with fixed-width indexing.
#[derive(Debug, Default, Clone)]
pub struct PermDict {
    perms: Vec<Perm>,
    index: FxHashMap<Perm, u32>,
}

impl PermDict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a permutation; returns its index.
    pub fn intern(&mut self, perm: Perm) -> u32 {
        if let Some(&i) = self.index.get(&perm) {
            return i;
        }
        let i = self.perms.len() as u32;
        self.perms.push(perm.clone());
        self.index.insert(perm, i);
        i
    }

    /// Number of distinct permutations.
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// True if no permutations are interned.
    pub fn is_empty(&self) -> bool {
        self.perms.is_empty()
    }

    /// Look up by index.
    pub fn get(&self, i: u32) -> Option<&Perm> {
        self.perms.get(i as usize)
    }

    /// Index of an already-interned permutation.
    pub fn index_of(&self, perm: &[u8]) -> Option<u32> {
        self.index.get(perm).copied()
    }

    /// Width of one index code word.
    pub fn index_bits(&self) -> u32 {
        ceil_log2(self.perms.len().max(1) as u64)
    }

    /// Serialize: δ(count+1), then per permutation δ(len) followed by
    /// fixed-width entries.
    pub fn encode(&self, w: &mut BitWriter) {
        write_delta(w, self.perms.len() as u64 + 1);
        for perm in &self.perms {
            write_delta(w, perm.len() as u64);
            let width = ceil_log2(perm.len() as u64);
            for &p in perm {
                w.push_bits(p as u64, width);
            }
        }
    }

    /// Decode a dictionary written by [`PermDict::encode`].
    pub fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let count = read_delta(r)? - 1;
        let mut dict = Self::new();
        for _ in 0..count {
            let len = read_delta(r)? as usize;
            if len == 0 || len > 255 {
                return Err(CodecError::Malformed("permutation length out of range".into()));
            }
            let width = ceil_log2(len as u64);
            let mut perm = Vec::with_capacity(len);
            for _ in 0..len {
                let p = r.read_bits(width)? as u8;
                if p as usize >= len {
                    return Err(CodecError::Malformed("permutation entry out of range".into()));
                }
                perm.push(p);
            }
            // Must be a permutation of 0..len.
            let mut check = perm.clone();
            check.sort_unstable();
            if check.iter().enumerate().any(|(i, &p)| p as usize != i) {
                return Err(CodecError::Malformed("not a permutation".into()));
            }
            dict.intern(perm);
        }
        Ok(dict)
    }

    /// Write one edge's permutation index.
    pub fn encode_index(&self, w: &mut BitWriter, index: u32) {
        w.push_bits(index as u64, self.index_bits());
    }

    /// Read one edge's permutation index.
    pub fn decode_index(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        let i = r.read_bits(self.index_bits())? as u32;
        if i as usize >= self.perms.len() {
            return Err(CodecError::Malformed("permutation index out of range".into()));
        }
        Ok(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_round_trip_on_attachments() {
        for att in [vec![5u32, 2, 9], vec![1, 0], vec![3], vec![7, 3, 1, 9, 4]] {
            let perm = perm_of(&att);
            let mut sorted = att.clone();
            sorted.sort_unstable();
            assert_eq!(apply_perm(&sorted, &perm), att);
        }
    }

    #[test]
    fn identity_perm_for_sorted_attachment() {
        assert_eq!(perm_of(&[1, 4, 9]), vec![0, 1, 2]);
        assert_eq!(perm_of(&[9, 4, 1]), vec![2, 1, 0]);
    }

    #[test]
    fn dict_interns_and_serializes() {
        let mut dict = PermDict::new();
        let a = dict.intern(vec![0, 1, 2]);
        let b = dict.intern(vec![2, 0, 1]);
        let a2 = dict.intern(vec![0, 1, 2]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(dict.len(), 2);

        let mut w = BitWriter::new();
        dict.encode(&mut w);
        dict.encode_index(&mut w, b);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        let dict2 = PermDict::decode(&mut r).unwrap();
        assert_eq!(dict2.len(), 2);
        let idx = dict2.decode_index(&mut r).unwrap();
        assert_eq!(dict2.get(idx).unwrap(), &vec![2, 0, 1]);
    }

    #[test]
    fn corrupt_dictionaries_are_rejected() {
        // A "permutation" with a repeated entry.
        let mut w = BitWriter::new();
        write_delta(&mut w, 2); // 1 perm
        write_delta(&mut w, 2); // of length 2
        w.push_bits(0, 1);
        w.push_bits(0, 1); // [0, 0] — not a permutation
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert!(PermDict::decode(&mut r).is_err());
    }
}
