//! Top-level grammar decoder.

use crate::perm::PermDict;
use crate::rules::decode_rule;
use crate::start::decode_label;
use crate::CodecError;
use grepair_bits::codes::read_delta;
use grepair_bits::BitReader;
use grepair_grammar::Grammar;
use grepair_hypergraph::{EdgeLabel, Hypergraph};

/// Decode a grammar previously written by [`crate::encode`].
///
/// The result is structurally validated; corrupt streams return
/// [`CodecError`] rather than panicking.
pub fn decode(bytes: &[u8], bit_len: u64) -> Result<Grammar, CodecError> {
    // A truncated or corrupt container can claim more bits than it carries;
    // reject the lie up front rather than failing mid-stream. (`BitReader`
    // also clamps, so even direct callers can never index out of bounds.)
    if bit_len > bytes.len() as u64 * 8 {
        return Err(CodecError::Malformed(format!(
            "bit length {bit_len} exceeds the {} bits present",
            bytes.len() as u64 * 8
        )));
    }
    let mut r = BitReader::new(bytes, bit_len);

    // --- header ---
    let num_terminals = (read_delta(&mut r)? - 1) as u32;
    let num_rules = (read_delta(&mut r)? - 1) as usize;
    let m = (read_delta(&mut r)? - 1) as usize;
    if m > u32::MAX as usize {
        return Err(CodecError::Malformed("node count overflow".into()));
    }
    let ext_len = (read_delta(&mut r)? - 1) as usize;
    let mut ext = Vec::with_capacity(ext_len);
    for _ in 0..ext_len {
        let v = (read_delta(&mut r)? - 1) as u32;
        if v as usize >= m {
            return Err(CodecError::Malformed("external node out of range".into()));
        }
        ext.push(v);
    }
    let num_labels = num_terminals as usize + num_rules;
    let mut present = Vec::with_capacity(num_labels);
    for _ in 0..num_labels {
        present.push(r.read_bit()?);
    }
    let dict = PermDict::decode(&mut r)?;

    // --- start graph ---
    let mut start = Hypergraph::with_nodes(m);
    for (slot, &p) in present.iter().enumerate() {
        if !p {
            continue;
        }
        let label = if slot < num_terminals as usize {
            EdgeLabel::Terminal(slot as u32)
        } else {
            EdgeLabel::Nonterminal((slot - num_terminals as usize) as u32)
        };
        decode_label(&mut r, &mut start, label, &dict)?;
    }
    start.set_ext(ext);

    // --- rules ---
    let mut grammar = Grammar::new(start, num_terminals);
    for _ in 0..num_rules {
        let rhs = decode_rule(&mut r)?;
        grammar.add_rule(rhs);
    }
    if r.remaining() != 0 {
        return Err(CodecError::Malformed(format!(
            "{} trailing bits after grammar",
            r.remaining()
        )));
    }
    grammar
        .validate()
        .map_err(|e| CodecError::Malformed(format!("decoded grammar invalid: {e}")))?;
    Ok(grammar)
}

#[cfg(test)]
mod tests {
    use crate::encode;
    use grepair_core::{compress, GRePairConfig};
    use grepair_hypergraph::order::NodeOrder;
    use grepair_hypergraph::Hypergraph;

    use super::*;

    fn repeated_pattern(reps: u32) -> Hypergraph {
        let (g, _) = Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        );
        g
    }

    #[test]
    fn full_pipeline_round_trip_preserves_val() {
        let g = repeated_pattern(40);
        let out = compress(&g, &GRePairConfig::default());
        let encoded = encode(&out.grammar);
        let decoded = decode(&encoded.bytes, encoded.bit_len).unwrap();

        // val(decode(encode(G))) must equal val(G) *node for node*, so the
        // compressor's node map applies to the decoded grammar too.
        let val_mem = out.grammar.derive();
        let val_dec = decoded.derive();
        assert_eq!(val_mem.edge_multiset(), val_dec.edge_multiset());
        assert_eq!(val_mem.num_nodes(), val_dec.num_nodes());
        assert_eq!(
            val_dec.edge_multiset_mapped(|v| out.node_map[v as usize]),
            g.edge_multiset()
        );
    }

    #[test]
    fn disconnected_graph_round_trip() {
        let copies = 16u32;
        let mut triples = Vec::new();
        for c in 0..copies {
            let b = 4 * c;
            triples.extend([
                (b, 0u32, b + 1),
                (b + 1, 0, b + 2),
                (b + 2, 0, b + 3),
                (b + 3, 0, b),
                (b, 0, b + 2),
            ]);
        }
        let (g, _) = Hypergraph::from_simple_edges(4 * copies as usize, triples);
        let out = compress(&g, &GRePairConfig::default());
        let encoded = encode(&out.grammar);
        let decoded = decode(&encoded.bytes, encoded.bit_len).unwrap();
        assert_eq!(
            decoded.derive().edge_multiset_mapped(|v| out.node_map[v as usize]),
            g.edge_multiset()
        );
    }

    #[test]
    fn size_breakdown_adds_up() {
        let g = repeated_pattern(64);
        let out = compress(&g, &GRePairConfig::default());
        let encoded = encode(&out.grammar);
        assert_eq!(encoded.breakdown.total(), encoded.bit_len);
        assert!(encoded.breakdown.start_graph_bits > 0);
        assert!(encoded.byte_len() as u64 * 8 >= encoded.bit_len);
    }

    #[test]
    fn empty_grammar_round_trips() {
        let grammar = Grammar::new(Hypergraph::with_nodes(0), 0);
        let encoded = encode(&grammar);
        let decoded = decode(&encoded.bytes, encoded.bit_len).unwrap();
        assert_eq!(decoded.start.num_nodes(), 0);
        assert_eq!(decoded.num_nonterminals(), 0);
    }

    #[test]
    fn truncated_streams_error_cleanly() {
        let g = repeated_pattern(10);
        let out = compress(&g, &GRePairConfig { order: NodeOrder::Natural, ..Default::default() });
        let encoded = encode(&out.grammar);
        for cut in [1u64, 7, encoded.bit_len / 2, encoded.bit_len - 1] {
            assert!(
                decode(&encoded.bytes, cut.min(encoded.bit_len - 1)).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn overlong_bit_len_is_rejected() {
        let g = repeated_pattern(6);
        let out = compress(&g, &GRePairConfig::default());
        let encoded = encode(&out.grammar);
        // Same bytes, header claiming more bits than are present.
        for extra in [1u64, 8, 1 << 20, u64::MAX - encoded.bit_len] {
            let claimed = encoded.bit_len + extra;
            assert!(decode(&encoded.bytes, claimed).is_err(), "claimed {claimed}");
        }
        // Truncated byte buffer with the original bit_len header.
        for keep in [0usize, 1, encoded.bytes.len() / 2, encoded.bytes.len() - 1] {
            assert!(
                decode(&encoded.bytes[..keep], encoded.bit_len).is_err(),
                "kept {keep} bytes"
            );
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let g = repeated_pattern(8);
        let out = compress(&g, &GRePairConfig::default());
        let encoded = encode(&out.grammar);
        for byte in 0..encoded.bytes.len() {
            for bit in 0..8 {
                let mut copy = encoded.bytes.clone();
                copy[byte] ^= 1 << bit;
                let _ = decode(&copy, encoded.bit_len); // Ok or Err — no panic
            }
        }
    }
}
