//! Rule (production) encoding — the δ-coded edge-list format of §III-C2.
//!
//! Per rule: δ(#edges + 1); per edge one terminal/nonterminal bit,
//! δ(#attached nodes), then per node an external-marker bit followed by
//! δ(id + 1), and finally δ(label + 1). A trailing "isolated nodes" section
//! (δ(count + 1), then per node δ(id + 1) and an external bit) covers nodes
//! with no incident edges, which virtual-edge stripping can produce — the
//! paper's format cannot represent those (documented deviation; it costs
//! one δ(1) = 1 bit per rule in the common case).
//!
//! Rule node IDs are dense and the external sequence is ascending — both
//! invariants the compressor guarantees ("we make sure that the order
//! induced by the IDs of the external nodes is the same as the order of the
//! external nodes").

use crate::CodecError;
use grepair_bits::codes::{read_delta, write_delta};
use grepair_bits::{BitReader, BitWriter};
use grepair_hypergraph::{EdgeLabel, Hypergraph, NodeId};

/// Encode one rule right-hand side.
pub fn encode_rule(w: &mut BitWriter, rhs: &Hypergraph) {
    // The compressor hands us dense-noded rules with ascending ext; the
    // format depends on both.
    debug_assert_eq!(rhs.num_nodes(), rhs.node_bound(), "rule nodes must be dense");
    debug_assert!(
        // audited: windows(2) yields exactly two elements
        rhs.ext().windows(2).all(|w| w[0] < w[1]),
        "rule ext must be ascending"
    );
    write_delta(w, rhs.num_edges() as u64 + 1);
    for e in rhs.edges() {
        w.push_bit(e.label.is_nonterminal());
        write_delta(w, e.att.len() as u64);
        for &v in e.att {
            w.push_bit(rhs.is_external(v));
            write_delta(w, v as u64 + 1);
        }
        write_delta(w, e.label.index() as u64 + 1);
    }
    let isolated: Vec<NodeId> = rhs.node_ids().filter(|&v| rhs.degree(v) == 0).collect();
    write_delta(w, isolated.len() as u64 + 1);
    for v in isolated {
        write_delta(w, v as u64 + 1);
        w.push_bit(rhs.is_external(v));
    }
}

/// Decode one rule right-hand side.
pub fn decode_rule(r: &mut BitReader<'_>) -> Result<Hypergraph, CodecError> {
    let num_edges = read_delta(r)? - 1;
    struct RawEdge {
        label: EdgeLabel,
        att: Vec<NodeId>,
    }
    let mut edges = Vec::with_capacity(num_edges as usize);
    let mut max_node: i64 = -1;
    let mut external: Vec<NodeId> = Vec::new();
    for _ in 0..num_edges {
        let nonterminal = r.read_bit()?;
        let rank = read_delta(r)?;
        if rank == 0 || rank > 255 {
            return Err(CodecError::Malformed("edge rank out of range".into()));
        }
        let mut att = Vec::with_capacity(rank as usize);
        for _ in 0..rank {
            let ext = r.read_bit()?;
            let id = read_delta(r)? - 1;
            if id > u32::MAX as u64 {
                return Err(CodecError::Malformed("node id overflow".into()));
            }
            let id = id as NodeId;
            max_node = max_node.max(id as i64);
            if ext && !external.contains(&id) {
                external.push(id);
            }
            att.push(id);
        }
        let label = read_delta(r)? - 1;
        let label = if nonterminal {
            EdgeLabel::Nonterminal(label as u32)
        } else {
            EdgeLabel::Terminal(label as u32)
        };
        edges.push(RawEdge { label, att });
    }
    let isolated_count = read_delta(r)? - 1;
    let mut isolated = Vec::with_capacity(isolated_count as usize);
    for _ in 0..isolated_count {
        let id = (read_delta(r)? - 1) as NodeId;
        let ext = r.read_bit()?;
        max_node = max_node.max(id as i64);
        if ext && !external.contains(&id) {
            external.push(id);
        }
        isolated.push(id);
    }
    let n = (max_node + 1) as usize;
    let mut rhs = Hypergraph::with_nodes(n);
    for e in edges {
        for (i, &v) in e.att.iter().enumerate() {
            // audited: att[..i] with i from enumerate is always in bounds
            if e.att[..i].contains(&v) {
                return Err(CodecError::Malformed("edge attaches a node twice".into()));
            }
        }
        rhs.add_edge(e.label, &e.att);
    }
    for v in &isolated {
        if rhs.degree(*v) != 0 {
            return Err(CodecError::Malformed("isolated node has edges".into()));
        }
    }
    external.sort_unstable();
    rhs.set_ext(external);
    Ok(rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_hypergraph::EdgeLabel::{Nonterminal as N, Terminal as T};

    fn round_trip(rhs: &Hypergraph) -> Hypergraph {
        let mut w = BitWriter::new();
        encode_rule(&mut w, rhs);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        let out = decode_rule(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        out
    }

    /// The paper's worked example (§III-C2, the rule of Fig. 6): two
    /// terminal rank-2 edges over nodes {1,2,3} (0-based {0,1,2}), nodes 0
    /// and 1 external, label 1 (0-based label 0):
    ///
    /// ```text
    /// δ(2)                   two edges            (wait — see below)
    /// 0 δ(2) 1δ(1) 1δ(2) δ(1)   terminal, 2 nodes, ext 1, ext 2, label 1
    /// 0 δ(2) 1δ(1) 0δ(3) δ(1)   terminal, 2 nodes, ext 1, int 3, label 1
    /// ```
    ///
    /// The paper says "a bit sequence of length 28"; under standard Elias δ
    /// its own listing adds up to 30 bits (δ(2) = 4 bits, each edge 13).
    /// Our stream writes δ(#edges+1) = δ(3) (also 4 bits) and appends the
    /// 1-bit empty isolated-node section: 31 bits total.
    #[test]
    fn paper_example_bit_count() {
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 1]);
        rhs.add_edge(T(0), &[0, 2]);
        rhs.set_ext(vec![0, 1]);
        let mut w = BitWriter::new();
        encode_rule(&mut w, &rhs);
        assert_eq!(w.bit_len(), 31);
        let out = round_trip(&rhs);
        assert_eq!(out.edge_multiset(), rhs.edge_multiset());
        assert_eq!(out.ext(), rhs.ext());
    }

    #[test]
    fn nonterminal_and_hyper_edges_round_trip() {
        let mut rhs = Hypergraph::with_nodes(4);
        rhs.add_edge(N(3), &[2, 0, 3]);
        rhs.add_edge(T(1), &[3, 1]);
        rhs.set_ext(vec![0, 1, 3]);
        let out = round_trip(&rhs);
        assert_eq!(out.edge_multiset(), rhs.edge_multiset());
        assert_eq!(out.ext(), rhs.ext());
    }

    #[test]
    fn isolated_nodes_round_trip() {
        // A rule left with an isolated internal node after virtual-edge
        // stripping.
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 1]);
        rhs.set_ext(vec![0, 1]);
        // node 2 is isolated & internal
        let out = round_trip(&rhs);
        assert_eq!(out.num_nodes(), 3);
        assert_eq!(out.degree(2), 0);
        assert_eq!(out.ext(), &[0, 1]);
    }

    #[test]
    fn empty_rule_round_trips() {
        let rhs = Hypergraph::with_nodes(0);
        let out = round_trip(&rhs);
        assert_eq!(out.num_nodes(), 0);
        assert_eq!(out.num_edges(), 0);
    }

    #[test]
    fn corrupt_rule_rejected() {
        // An edge attaching node 0 twice.
        let mut w = BitWriter::new();
        write_delta(&mut w, 2); // 1 edge
        w.push_bit(false); // terminal
        write_delta(&mut w, 2); // rank 2
        w.push_bit(false);
        write_delta(&mut w, 1); // node 0
        w.push_bit(false);
        write_delta(&mut w, 1); // node 0 again
        write_delta(&mut w, 1); // label 0
        write_delta(&mut w, 1); // no isolated nodes
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert!(decode_rule(&mut r).is_err());
    }
}
