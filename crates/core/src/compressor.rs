//! The gRePair main loop (§III-A steps 1–8).

use crate::digram::resolve;
use crate::occurrences::{DigramIdx, OccTable};
use crate::provenance::{build_node_map, Prov};
use crate::prune::prune;
use crate::queue::BucketQueue;
use grepair_grammar::Grammar;
use grepair_hypergraph::order::{compute_order, NodeOrder};
use grepair_hypergraph::traverse::connected_components;
use grepair_hypergraph::{EdgeId, EdgeLabel, Hypergraph, NodeId};
use grepair_util::FxHashMap;

/// Tunables of the compressor (§III-B).
#[derive(Debug, Clone, Copy)]
pub struct GRePairConfig {
    /// Maximal rank of a digram / nonterminal (§III-B2). The paper's
    /// evaluation (Table IV) finds 4 a good compromise — the default.
    pub max_rank: usize,
    /// Node order ω steering occurrence counting (§III-B1). Default FP.
    pub order: NodeOrder,
    /// Run the virtual-edge phase on disconnected graphs (§III-A, the extra
    /// step after step 3 — this is what achieves Fig. 13's exponential
    /// compression on unions of copies).
    pub connect_components: bool,
    /// Run the pruning phase (§III-A3).
    pub prune: bool,
    /// Override for |Σ| (terminal labels are then `0..num_terminals`);
    /// derived from the input graph when `None`.
    pub num_terminals: Option<u32>,
}

impl Default for GRePairConfig {
    fn default() -> Self {
        Self {
            max_rank: 4,
            order: NodeOrder::Fp,
            connect_components: true,
            prune: true,
            num_terminals: None,
        }
    }
}

/// Counters describing one compression run.
#[derive(Debug, Clone, Default)]
pub struct CompressStats {
    /// Input |g|V.
    pub input_nodes: usize,
    /// Input terminal edge count.
    pub input_edges: usize,
    /// Input |g|.
    pub input_size: usize,
    /// Digram replacement rounds (steps 3–7 iterations that replaced ≥ 1).
    pub rounds: usize,
    /// Total occurrences replaced.
    pub replacements: usize,
    /// Rules created before pruning.
    pub rules_created: usize,
    /// Rules inlined away by pruning.
    pub rules_pruned: usize,
    /// Final |G|.
    pub grammar_size: usize,
    /// Virtual edges inserted for the disconnected-components phase.
    pub virtual_edges: usize,
}

impl CompressStats {
    /// `|G| / |g|` — the paper's compression ratio (§IV-C reports 68 % for
    /// network graphs, 35 % for RDF, 24 % for version graphs).
    pub fn ratio(&self) -> f64 {
        if self.input_size == 0 {
            1.0
        } else {
            self.grammar_size as f64 / self.input_size as f64
        }
    }
}

/// A compressed graph: the grammar plus the ψ′ node map.
#[derive(Debug, Clone)]
pub struct CompressedGraph {
    /// The SL-HR grammar with `val(G)` isomorphic to the input.
    pub grammar: Grammar,
    /// `node_map[derived_id] = input node id`: composing [`Grammar::derive`]
    /// with this map reproduces the input exactly.
    pub node_map: Vec<NodeId>,
    /// Run counters.
    pub stats: CompressStats,
}

/// Compress `input` with `config`. Convenience wrapper around
/// [`Compressor`].
pub fn compress(input: &Hypergraph, config: &GRePairConfig) -> CompressedGraph {
    Compressor::new(input, config).run()
}

/// Staged gRePair compressor. Most callers want [`compress`]; the staged
/// API exists for tests and ablation benchmarks (e.g. skipping the virtual
/// phase or pruning).
pub struct Compressor {
    g: Hypergraph,
    rules: Vec<Hypergraph>,
    num_terminals: u32,
    config: GRePairConfig,
    /// ω-position per node slot (computed once on the input, §III-C1).
    omega_pos: Vec<u32>,
    table: OccTable,
    queue: BucketQueue,
    prov: FxHashMap<EdgeId, Prov>,
    /// `original_id[s_node] = input node id` (identity until pruning inlines
    /// rules into the start graph).
    original_id: Vec<NodeId>,
    /// Alive node IDs of the input (consumed by the debug-build provenance
    /// validation in [`Compressor::finish`]).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    input_nodes: Vec<NodeId>,
    virtual_label: Option<u32>,
    virtual_edge_count: usize,
    stats: CompressStats,
}

impl Compressor {
    /// Set up a compressor over a working copy of `input`.
    pub fn new(input: &Hypergraph, config: &GRePairConfig) -> Self {
        let num_terminals = config.num_terminals.unwrap_or_else(|| {
            input
                .edges()
                .map(|e| match e.label {
                    EdgeLabel::Terminal(t) => t + 1,
                    EdgeLabel::Nonterminal(_) => {
                        panic!("input graphs must be fully terminal")
                    }
                })
                .max()
                .unwrap_or(0)
        });
        let order = compute_order(input, config.order);
        let mut omega_pos = vec![u32::MAX; input.node_bound()];
        for (i, &v) in order.iter().enumerate() {
            omega_pos[v as usize] = i as u32;
        }
        let stats = CompressStats {
            input_nodes: input.num_nodes(),
            input_edges: input.num_edges(),
            input_size: input.total_size(),
            ..Default::default()
        };
        let queue = BucketQueue::new(input.num_edges().max(4));
        Self {
            g: input.clone(),
            rules: Vec::new(),
            num_terminals,
            config: *config,
            omega_pos,
            table: OccTable::new(),
            queue,
            prov: FxHashMap::default(),
            original_id: (0..input.node_bound() as NodeId).collect(),
            input_nodes: input.node_ids().collect(),
            virtual_label: None,
            virtual_edge_count: 0,
            stats,
        }
    }

    /// Full pipeline: count, replace to fixpoint, virtual phase, strip,
    /// prune, finish.
    pub fn run(mut self) -> CompressedGraph {
        self.count_all();
        self.replace_to_fixpoint();
        if self.config.connect_components {
            if self.add_virtual_edges() > 0 {
                // Fresh occurrence machinery for the second pass: the virtual
                // edges change externality everywhere.
                self.reset_occurrences();
                self.count_all();
                self.replace_to_fixpoint();
            }
            self.strip_virtual_edges();
        }
        self.finish()
    }

    /// Drop all occurrence bookkeeping (used between the main and the
    /// virtual-edge passes, where externality changes globally).
    pub fn reset_occurrences(&mut self) {
        self.table = OccTable::new();
        self.queue = BucketQueue::new(self.g.num_edges().max(4));
    }

    /// Step 2: initial occurrence counting along ω.
    pub fn count_all(&mut self) {
        let mut nodes: Vec<NodeId> = self.g.node_ids().collect();
        nodes.sort_by_key(|&v| self.omega_pos[v as usize]);
        for v in nodes {
            self.table
                .count_at_node(&self.g, v, self.config.max_rank, &mut self.queue);
        }
    }

    /// Steps 3–7: pop the most frequent digram, replace all its occurrences,
    /// update locally; repeat until no active digram remains.
    pub fn replace_to_fixpoint(&mut self) {
        loop {
            let digrams = &self.table.digrams;
            let Some(d) = self
                .queue
                .pop_best(|i| digrams[i as usize].live)
            else {
                break;
            };
            let replaced = self.replace_digram(d);
            if replaced > 0 {
                self.stats.rounds += 1;
                self.stats.replacements += replaced;
            }
        }
    }

    /// Steps 4–6 for one digram: replace every (still valid) occurrence by a
    /// fresh-or-reused nonterminal edge, then recount around the touched
    /// nodes.
    fn replace_digram(&mut self, d: DigramIdx) -> usize {
        let sig = self.table.digrams[d as usize].sig.clone();
        let occ_ids = self.table.drain_digram(d, &mut self.queue);
        let mut replaced = 0usize;
        let mut affected: Vec<NodeId> = Vec::new();
        // Per affected node, the (label, position) groups of the new
        // nonterminal edges — the only groups the update has to pair
        // (§III-A2: new occurrences are the pairs {e', e}).
        let mut focus: FxHashMap<NodeId, grepair_util::FxHashSet<(EdgeLabel, u8)>> =
            FxHashMap::default();
        let mut nt_assigned = self.table.digrams[d as usize].nt;

        for occ_id in occ_ids {
            let occ = &mut self.table.occs[occ_id as usize];
            if !occ.alive {
                continue;
            }
            occ.alive = false;
            let [e1, e2] = occ.edges;
            if !self.g.edge_alive(e1) || !self.g.edge_alive(e2) {
                continue;
            }
            // Re-validate against Def. 3: the external-flag context may have
            // drifted since counting (conservatively skip if so).
            let Some(resolved) = resolve(&self.g, e1, e2) else { continue };
            if resolved.sig != sig {
                continue;
            }

            // Allocate the nonterminal and rule on first successful use.
            let nt = *nt_assigned.get_or_insert_with(|| {
                let rhs = sig.to_rhs();
                self.rules.push(rhs);
                self.stats.rules_created += 1;
                (self.rules.len() - 1) as u32
            });

            // Kill every other occurrence using these edges (step 6's
            // decrement), then do the surgery.
            self.table.kill_edge(resolved.edges[0], &mut self.queue);
            self.table.kill_edge(resolved.edges[1], &mut self.queue);
            let prov1 = self.prov.remove(&resolved.edges[0]);
            let prov2 = self.prov.remove(&resolved.edges[1]);
            self.g.remove_edge(resolved.edges[0]);
            self.g.remove_edge(resolved.edges[1]);
            let removal = resolved.removal_nodes();
            let mut internal_originals = Vec::with_capacity(removal.len());
            for r in removal {
                debug_assert_eq!(self.g.degree(r), 0, "removal node has other edges");
                internal_originals.push(self.original_id[r as usize]);
                self.g.remove_node(r);
            }
            let att = resolved.attachment_nodes();
            let new_edge = self.g.add_edge(EdgeLabel::Nonterminal(nt), &att);
            for (pos, &node) in att.iter().enumerate() {
                focus
                    .entry(node)
                    .or_default()
                    .insert((EdgeLabel::Nonterminal(nt), pos as u8));
            }

            // Provenance: children in rhs edge order (first edge, then
            // second), keeping only nonterminal subtrees.
            let mut children = Vec::new();
            if let Some(p) = prov1 {
                children.push(p);
            }
            if let Some(p) = prov2 {
                children.push(p);
            }
            self.prov
                .insert(new_edge, Prov { nt, internal: internal_originals, children });

            affected.extend_from_slice(&att);
            replaced += 1;
        }

        self.table.digrams[d as usize].nt = nt_assigned;

        // Step 6 continued: recount around the attachment nodes in ω order,
        // restricted to pairs involving the new nonterminal edges.
        affected.sort_by_key(|&v| self.omega_pos[v as usize]);
        affected.dedup();
        for v in affected {
            if !self.g.node_is_alive(v) {
                continue;
            }
            match focus.get(&v) {
                Some(groups) => self.table.count_at_node_focused(
                    &self.g,
                    v,
                    self.config.max_rank,
                    &mut self.queue,
                    groups,
                ),
                None => self
                    .table
                    .count_at_node(&self.g, v, self.config.max_rank, &mut self.queue),
            }
        }
        replaced
    }

    /// The extra step after the main loop: chain the connected components
    /// with virtual edges so repeated structure *across* components becomes
    /// compressible. Returns the number of edges added.
    pub fn add_virtual_edges(&mut self) -> usize {
        let (comp_ids, count) = connected_components(&self.g);
        if count <= 1 {
            return 0;
        }
        let vlabel = self.num_terminals;
        self.virtual_label = Some(vlabel);
        // Representative = smallest node of each component, chained in
        // component order.
        let mut reps = vec![NodeId::MAX; count];
        for v in self.g.node_ids() {
            let c = comp_ids[v as usize] as usize;
            if reps[c] == NodeId::MAX {
                reps[c] = v;
            }
        }
        for pair in reps.windows(2) {
            self.g.add_edge(EdgeLabel::Terminal(vlabel), &[pair[0], pair[1]]);
        }
        self.virtual_edge_count = count - 1;
        self.stats.virtual_edges = count - 1;
        count - 1
    }

    /// Remove every virtual edge from the start graph and all rules.
    pub fn strip_virtual_edges(&mut self) {
        let Some(vlabel) = self.virtual_label else { return };
        let strip = |g: &mut Hypergraph| {
            let victims: Vec<EdgeId> = g
                .edges()
                .filter(|e| e.label == EdgeLabel::Terminal(vlabel))
                .map(|e| e.id)
                .collect();
            for e in victims {
                g.remove_edge(e);
            }
        };
        strip(&mut self.g);
        for rhs in &mut self.rules {
            strip(rhs);
        }
        self.virtual_label = None;
    }

    /// Step 8 + assembly: prune, drop dead rules, renumber, build the node
    /// map.
    pub fn finish(mut self) -> CompressedGraph {
        let mut grammar = Grammar::new(self.g, self.num_terminals);
        for rhs in self.rules {
            grammar.add_rule(rhs);
        }
        if self.config.prune {
            self.stats.rules_pruned = prune(&mut grammar, &mut self.prov, &mut self.original_id);
        }
        // Renumbering relabels nonterminal edges in place (edge IDs — and so
        // the provenance keys — survive).
        let mapping = grammar.drop_unreferenced_rules();
        for tree in self.prov.values_mut() {
            tree.renumber(&mapping);
        }
        self.prov = canonicalize_start_edges(&mut grammar, self.prov, &mut self.original_id);
        // In debug builds, fully validate the provenance forest against the
        // final grammar (shape match + node-map is a permutation of the
        // input's nodes); this is the invariant every lossless guarantee
        // rests on.
        #[cfg(debug_assertions)]
        if let Err(e) = crate::provenance::validate_provenance(
            &grammar,
            &self.original_id,
            &self.prov,
            &self.input_nodes,
        ) {
            panic!("provenance invariant violated: {e}");
        }
        let node_map = build_node_map(&grammar, &self.original_id, &self.prov);
        self.stats.grammar_size = grammar.size();
        CompressedGraph { grammar, node_map, stats: self.stats }
    }
}

/// Rebuild the start graph with **dense node IDs** (alive nodes ascending —
/// the order `derive` numbers them anyway) and edges in the codec's
/// canonical order (label-major — terminals before nonterminals, ascending
/// index — then lexicographic attachment), remapping provenance keys and the
/// original-ID table accordingly.
///
/// The binary format (§III-C2) stores the start graph as one matrix per
/// label, so a decoded grammar's start edges come back in exactly this
/// order. Canonicalizing *before* the node map is built makes
/// `val(decode(encode(G)))` assign the same node IDs as `val(G)`.
fn canonicalize_start_edges(
    grammar: &mut Grammar,
    prov: FxHashMap<EdgeId, Prov>,
    original_id: &mut Vec<NodeId>,
) -> FxHashMap<EdgeId, Prov> {
    let old = &grammar.start;
    // Dense node renumbering: alive ascending ↦ 0..m. This keeps `derive`'s
    // numbering identical while dropping the tombstones left by replacement.
    let mut node_map = vec![NodeId::MAX; old.node_bound()];
    let mut new_original = Vec::with_capacity(old.num_nodes());
    for (dense, v) in old.node_ids().enumerate() {
        node_map[v as usize] = dense as NodeId;
        new_original.push(original_id[v as usize]);
    }
    let mut order: Vec<EdgeId> = old.edges().map(|e| e.id).collect();
    order.sort_by(|&a, &b| {
        (old.label(a), old.att(a)).cmp(&(old.label(b), old.att(b)))
    });
    let mut fresh = Hypergraph::with_nodes(old.num_nodes());
    let mut new_prov: FxHashMap<EdgeId, Prov> = FxHashMap::default();
    let mut prov = prov;
    let mut att_buf: Vec<NodeId> = Vec::new();
    for &e in &order {
        att_buf.clear();
        att_buf.extend(old.att(e).iter().map(|&v| node_map[v as usize]));
        let ne = fresh.add_edge(old.label(e), &att_buf);
        if let Some(tree) = prov.remove(&e) {
            new_prov.insert(ne, tree);
        }
    }
    fresh.set_ext(old.ext().iter().map(|&v| node_map[v as usize]).collect());
    grammar.start = fresh;
    *original_id = new_original;
    new_prov
}

#[cfg(test)]
mod tests {
    use super::*;
    

    /// Compress, validate the grammar, derive, and check the derived graph
    /// equals the input exactly under the node map.
    fn check_round_trip(g: &Hypergraph, config: &GRePairConfig) -> CompressedGraph {
        let out = compress(g, config);
        out.grammar.validate().unwrap_or_else(|e| panic!("invalid grammar: {e}"));
        let derived = out.grammar.derive();
        assert_eq!(derived.num_nodes(), g.num_nodes(), "node count");
        assert_eq!(derived.num_edges(), g.num_edges(), "edge count");
        assert_eq!(out.node_map.len(), derived.num_nodes(), "map length");
        assert_eq!(
            derived.edge_multiset_mapped(|v| out.node_map[v as usize]),
            g.edge_multiset(),
            "edge multisets differ"
        );
        out
    }

    fn repeated_pattern(reps: u32) -> Hypergraph {
        let (g, _) = Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        );
        g
    }

    #[test]
    fn empty_graph() {
        let g = Hypergraph::with_nodes(0);
        let out = check_round_trip(&g, &GRePairConfig::default());
        assert_eq!(out.grammar.num_nonterminals(), 0);
    }

    #[test]
    fn edgeless_graph() {
        let g = Hypergraph::with_nodes(5);
        let out = check_round_trip(&g, &GRePairConfig::default());
        assert_eq!(out.node_map, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_edge() {
        let (g, _) = Hypergraph::from_simple_edges(2, vec![(0, 0, 1)]);
        check_round_trip(&g, &GRePairConfig::default());
    }

    #[test]
    fn long_repeated_path_compresses() {
        let g = repeated_pattern(64);
        let out = check_round_trip(&g, &GRePairConfig::default());
        assert!(
            out.grammar.size() < g.total_size() / 2,
            "grammar {} vs input {}",
            out.grammar.size(),
            g.total_size()
        );
        assert!(out.stats.rounds >= 1);
    }

    #[test]
    fn all_orders_round_trip() {
        let g = repeated_pattern(20);
        for order in [
            NodeOrder::Natural,
            NodeOrder::Random(42),
            NodeOrder::Bfs,
            NodeOrder::Fp0,
            NodeOrder::Fp,
        ] {
            let config = GRePairConfig { order, ..Default::default() };
            check_round_trip(&g, &config);
        }
    }

    #[test]
    fn all_max_ranks_round_trip() {
        // A grid-ish graph with enough shared structure that rank choices
        // matter.
        let n = 6u32;
        let mut triples = Vec::new();
        for r in 0..n {
            for c in 0..n {
                let id = r * n + c;
                if c + 1 < n {
                    triples.push((id, 0u32, id + 1));
                }
                if r + 1 < n {
                    triples.push((id, 1u32, id + n));
                }
            }
        }
        let (g, _) = Hypergraph::from_simple_edges((n * n) as usize, triples);
        for max_rank in 2..=8 {
            let config = GRePairConfig { max_rank, ..Default::default() };
            check_round_trip(&g, &config);
        }
    }

    #[test]
    fn without_pruning_round_trips() {
        let g = repeated_pattern(32);
        let config = GRePairConfig { prune: false, ..Default::default() };
        let out = check_round_trip(&g, &config);
        let pruned = check_round_trip(&g, &GRePairConfig::default());
        assert!(pruned.grammar.size() <= out.grammar.size());
    }

    #[test]
    fn disconnected_identical_copies_fold_up() {
        // Fig. 13's setup in miniature: disjoint copies of a 4-node,
        // 5-edge graph (directed cycle plus one diagonal).
        let copies = 32u32;
        let mut triples = Vec::new();
        for c in 0..copies {
            let b = 4 * c;
            triples.extend([
                (b, 0u32, b + 1),
                (b + 1, 0, b + 2),
                (b + 2, 0, b + 3),
                (b + 3, 0, b),
                (b, 0, b + 2),
            ]);
        }
        let (g, _) = Hypergraph::from_simple_edges(4 * copies as usize, triples);
        let out = check_round_trip(&g, &GRePairConfig::default());
        // The virtual-edge phase must fold the copies: far fewer than one
        // size unit per copy remains.
        assert!(
            out.grammar.size() < g.total_size() / 4,
            "grammar {} vs input {}",
            out.grammar.size(),
            g.total_size()
        );
        assert!(out.stats.virtual_edges > 0);

        // Without the virtual phase the copies cannot reference each other.
        let config = GRePairConfig { connect_components: false, ..Default::default() };
        let unconnected = check_round_trip(&g, &config);
        assert!(unconnected.grammar.size() > out.grammar.size());
    }

    #[test]
    fn star_graph_round_trips() {
        // One hub with many same-label out-edges: the RDF "types" shape.
        let n = 50u32;
        let (g, _) =
            Hypergraph::from_simple_edges(n as usize + 1, (1..=n).map(|i| (0u32, 0u32, i)));
        let out = check_round_trip(&g, &GRePairConfig::default());
        assert!(out.grammar.size() < g.total_size());
    }

    #[test]
    fn dense_clique_round_trips() {
        let n = 12u32;
        let mut triples = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    triples.push((i, 0u32, j));
                }
            }
        }
        let (g, _) = Hypergraph::from_simple_edges(n as usize, triples);
        check_round_trip(&g, &GRePairConfig::default());
    }

    #[test]
    fn multi_label_graph_round_trips() {
        let mut triples = Vec::new();
        let mut x = 12345u64;
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let s = (x >> 33) % 40;
            let t = (x >> 13) % 40;
            let l = (x >> 5) % 6;
            if s != t {
                triples.push((s as u32, l as u32, t as u32));
            }
        }
        let (g, _) = Hypergraph::from_simple_edges(40, triples);
        check_round_trip(&g, &GRePairConfig::default());
    }

    #[test]
    fn stats_are_plausible() {
        let g = repeated_pattern(64);
        let out = compress(&g, &GRePairConfig::default());
        assert_eq!(out.stats.input_nodes, 129);
        assert_eq!(out.stats.input_edges, 128);
        assert!(out.stats.replacements > 0);
        assert!(out.stats.ratio() < 1.0);
        assert_eq!(out.stats.grammar_size, out.grammar.size());
    }

    #[test]
    fn node_map_is_a_permutation() {
        let g = repeated_pattern(32);
        let out = compress(&g, &GRePairConfig::default());
        let mut sorted = out.node_map.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), g.num_nodes());
    }

    #[test]
    fn explicit_alphabet_override() {
        let (g, _) = Hypergraph::from_simple_edges(4, vec![(0, 0, 1), (2, 0, 3)]);
        let config = GRePairConfig { num_terminals: Some(10), ..Default::default() };
        let out = compress(&g, &config);
        assert_eq!(out.grammar.num_terminals(), 10);
        out.grammar.validate().unwrap();
    }
}
