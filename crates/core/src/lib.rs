//! gRePair — the paper's compressor (§III): a generalization of RePair
//! \[15\] from strings and trees to directed edge-labeled hypergraphs.
//!
//! The algorithm repeatedly finds a *digram* (a pair of connected hyperedges,
//! Def. 2) with the largest number of non-overlapping occurrences (Def. 3),
//! replaces every occurrence by a fresh nonterminal hyperedge, and adds the
//! rule `A → digram`. Occurrence counting is the greedy ω-order
//! approximation of §III-C1 (maximum matching being too expensive), with the
//! per-node `Occ(E₁,E₂)` pairing and per-(edge, partner-group) occupancy.
//! Digram frequencies live in the √n bucket priority queue of Larsson &
//! Moffat. Disconnected graphs get a virtual-edge phase, and a final pruning
//! pass (§III-A3) inlines rules whose contribution `con(A)` is non-positive.
//!
//! Entry point: [`compress`] (or [`Compressor`] for staged control). The
//! result bundles the SL-HR grammar with a provenance-derived **node map**
//! from `val(G)` node IDs back to input node IDs, so callers can relocate
//! per-node data (the paper's ψ′ mapping) and tests can check exact — not
//! just isomorphic — round trips.
//!
//! ```
//! use grepair_hypergraph::Hypergraph;
//! use grepair_core::{compress, GRePairConfig};
//!
//! // Many repeats of a two-edge pattern compress into one rule.
//! let (g, _) = Hypergraph::from_simple_edges(
//!     17,
//!     (0..8u32).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
//! );
//! let out = compress(&g, &GRePairConfig::default());
//! assert!(out.grammar.size() < g.total_size());
//! let derived = out.grammar.derive();
//! assert_eq!(
//!     derived.edge_multiset_mapped(|v| out.node_map[v as usize]),
//!     g.edge_multiset(),
//! );
//! ```

#![forbid(unsafe_code)]

pub mod compressor;
pub mod digram;
pub mod occurrences;
pub mod provenance;
pub mod prune;
pub mod queue;

pub use compressor::{compress, CompressStats, CompressedGraph, Compressor, GRePairConfig};
pub use digram::DigramSig;
