//! Digrams (Def. 2) and their occurrences (Def. 3).
//!
//! A digram is a 2-edge hypergraph where every node touches an edge and at
//! least one node touches both. An occurrence of digram `d` in `g` is an
//! edge pair inducing a subgraph isomorphic to `d` whose nodes marked
//! external in `d` are exactly those with *other* incident edges in `g`
//! (condition (3) — this is what distinguishes the two grammars of Fig. 4).
//!
//! We canonicalize an edge pair into a [`DigramSig`]: order the two edges so
//! the signature is lexicographically minimal, list their attachment nodes
//! in first-appearance order ("canonical nodes"), and record the second
//! edge's attachment pattern plus the external-flag bitmask. Two edge pairs
//! are occurrences of the same digram iff their signatures are equal; this
//! covers all eight unlabeled-undirected shapes of Fig. 2 and their
//! directed/labeled/hyperedge generalizations.

use grepair_hypergraph::{EdgeId, EdgeLabel, Hypergraph, NodeId};

/// Canonical digram signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DigramSig {
    /// Label of the canonically-first edge.
    pub label_a: EdgeLabel,
    /// Label of the canonically-second edge.
    pub label_b: EdgeLabel,
    /// Rank of the first edge (its attachments are canonical nodes `0..rank_a`).
    pub rank_a: u8,
    /// Canonical node indices of the second edge's attachments.
    pub att_b: Vec<u8>,
    /// Bit `i` set ⇔ canonical node `i` is external (has other edges in the
    /// host graph, or is an external node of the host graph itself).
    pub ext_mask: u32,
}

impl DigramSig {
    /// Number of canonical nodes.
    pub fn num_nodes(&self) -> usize {
        let max_b = self.att_b.iter().copied().max().map_or(0, |m| m as usize + 1);
        (self.rank_a as usize).max(max_b)
    }

    /// `rank(d)`: the number of external nodes — the rank of the nonterminal
    /// a replacement introduces. Bounded by the compressor's `maxRank`.
    pub fn rank(&self) -> usize {
        self.ext_mask.count_ones() as usize
    }

    /// Canonical indices of the external nodes, ascending (this fixes the
    /// attachment order of replacement edges and the rule's `ext` sequence).
    pub fn external_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_nodes()).filter(|&i| self.ext_mask >> i & 1 == 1)
    }

    /// Canonical indices of the internal (removal) nodes, ascending.
    pub fn internal_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_nodes()).filter(|&i| self.ext_mask >> i & 1 == 0)
    }

    /// Build the rule right-hand side this digram induces: canonical nodes,
    /// the two edges (first edge on nodes `0..rank_a`, second per `att_b`),
    /// external nodes per `ext_mask` in canonical order.
    pub fn to_rhs(&self) -> Hypergraph {
        let n = self.num_nodes();
        let mut rhs = Hypergraph::with_nodes(n);
        let att_a: Vec<NodeId> = (0..self.rank_a as NodeId).collect();
        rhs.add_edge(self.label_a, &att_a);
        let att_b: Vec<NodeId> = self.att_b.iter().map(|&i| i as NodeId).collect();
        rhs.add_edge(self.label_b, &att_b);
        rhs.set_ext(self.external_indices().map(|i| i as NodeId).collect());
        rhs
    }
}

/// An edge pair resolved against a host graph: the signature plus the
/// canonical-index → actual-node correspondence.
#[derive(Debug, Clone)]
pub struct ResolvedDigram {
    /// The canonical signature.
    pub sig: DigramSig,
    /// `nodes[i]` = host node playing canonical node `i`.
    pub nodes: Vec<NodeId>,
    /// The two edges in canonical order.
    pub edges: [EdgeId; 2],
}

impl ResolvedDigram {
    /// Host nodes the replacement nonterminal edge attaches to, in order.
    pub fn attachment_nodes(&self) -> Vec<NodeId> {
        self.sig.external_indices().map(|i| self.nodes[i]).collect()
    }

    /// Host nodes deleted by the replacement, in canonical order.
    pub fn removal_nodes(&self) -> Vec<NodeId> {
        self.sig.internal_indices().map(|i| self.nodes[i]).collect()
    }
}

/// Signature of `(a, b)` in that orientation, or `None` if the edges share
/// no node.
fn oriented(g: &Hypergraph, a: EdgeId, b: EdgeId) -> Option<(DigramSig, Vec<NodeId>)> {
    let att_a = g.att(a);
    let att_b = g.att(b);
    let mut nodes: Vec<NodeId> = att_a.to_vec();
    let mut att_b_idx: Vec<u8> = Vec::with_capacity(att_b.len());
    let mut shares = false;
    for &u in att_b {
        match nodes.iter().position(|&x| x == u) {
            Some(i) => {
                if i < att_a.len() {
                    shares = true;
                }
                att_b_idx.push(i as u8);
            }
            None => {
                nodes.push(u);
                att_b_idx.push((nodes.len() - 1) as u8);
            }
        }
    }
    if !shares {
        return None;
    }
    let mut ext_mask = 0u32;
    for (i, &v) in nodes.iter().enumerate() {
        // Incidences of v among {a, b}: one for each edge attaching it.
        let within =
            att_a.contains(&v) as usize + att_b.contains(&v) as usize;
        if g.degree(v) > within || g.is_external(v) {
            ext_mask |= 1 << i;
        }
    }
    let sig = DigramSig {
        label_a: g.label(a),
        label_b: g.label(b),
        rank_a: att_a.len() as u8,
        att_b: att_b_idx,
        ext_mask,
    };
    Some((sig, nodes))
}

/// Canonicalize the unordered pair `{e, f}` against `g`: compute both
/// orientations and keep the lexicographically smaller signature.
/// Returns `None` if the edges don't share a node (not a digram) or are the
/// same edge.
pub fn resolve(g: &Hypergraph, e: EdgeId, f: EdgeId) -> Option<ResolvedDigram> {
    if e == f {
        return None;
    }
    let (sig_ef, nodes_ef) = oriented(g, e, f)?;
    let (sig_fe, nodes_fe) = oriented(g, f, e)?;
    if sig_ef <= sig_fe {
        Some(ResolvedDigram { sig: sig_ef, nodes: nodes_ef, edges: [e, f] })
    } else {
        Some(ResolvedDigram { sig: sig_fe, nodes: nodes_fe, edges: [f, e] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_hypergraph::EdgeLabel::Terminal as T;

    fn graph(n: usize, edges: &[(u32, u32, u32)]) -> Hypergraph {
        let mut g = Hypergraph::with_nodes(n);
        for &(s, l, t) in edges {
            g.add_edge(T(l), &[s, t]);
        }
        g
    }

    #[test]
    fn chain_digram() {
        // 0 -a-> 1 -b-> 2, nothing else: only ends external? No — no other
        // edges at all, so NO node is external.
        let g = graph(3, &[(0, 0, 1), (1, 1, 2)]);
        let d = resolve(&g, 0, 1).unwrap();
        assert_eq!(d.sig.label_a, T(0));
        assert_eq!(d.sig.label_b, T(1));
        assert_eq!(d.sig.att_b, vec![1, 2]);
        assert_eq!(d.sig.ext_mask, 0);
        assert_eq!(d.sig.num_nodes(), 3);
        assert_eq!(d.sig.rank(), 0);
    }

    #[test]
    fn chain_with_context_marks_ends_external() {
        // context edges at 0 and 2 make them external; middle stays internal.
        let g = graph(5, &[(0, 0, 1), (1, 1, 2), (3, 2, 0), (2, 2, 4)]);
        let d = resolve(&g, 0, 1).unwrap();
        assert_eq!(d.sig.ext_mask, 0b101);
        assert_eq!(d.sig.rank(), 2);
        assert_eq!(d.removal_nodes(), vec![1]);
        assert_eq!(d.attachment_nodes(), vec![0, 2]);
    }

    #[test]
    fn fig1c_center_becomes_external() {
        // Fig. 1c: the a·b digram whose center also carries c-edges — the
        // extra edges prohibit the center node's removal, so it is external
        // (while the chain's end nodes, having no other edges here, are not).
        let g = graph(
            4,
            &[(0, 0, 1), (1, 1, 2), (1, 2, 3), (3, 2, 1)],
        );
        let d = resolve(&g, 0, 1).unwrap();
        assert_eq!(d.sig.ext_mask, 0b010);
        assert_eq!(d.sig.rank(), 1);
        assert_eq!(d.removal_nodes(), vec![0, 2]);
        assert_eq!(d.attachment_nodes(), vec![1]);
    }

    #[test]
    fn orientation_is_canonical() {
        let g = graph(3, &[(0, 0, 1), (1, 1, 2)]);
        let d1 = resolve(&g, 0, 1).unwrap();
        let d2 = resolve(&g, 1, 0).unwrap();
        assert_eq!(d1.sig, d2.sig);
        assert_eq!(d1.edges, d2.edges);
    }

    #[test]
    fn directed_shapes_are_distinct() {
        // The directed analogues of Fig. 2's shapes around a shared node
        // must all produce distinct signatures.
        let shapes: Vec<Hypergraph> = vec![
            graph(3, &[(0, 0, 1), (1, 0, 2)]), // chain through 1
            graph(3, &[(1, 0, 0), (1, 0, 2)]), // fork from 1
            graph(3, &[(0, 0, 1), (2, 0, 1)]), // co-fork into 1
            graph(2, &[(0, 0, 1), (1, 1, 0)]), // 2-cycle (labels differ)
            graph(2, &[(0, 0, 1), (0, 1, 1)]), // parallel
        ];
        let sigs: Vec<DigramSig> = shapes
            .iter()
            .map(|g| resolve(g, 0, 1).unwrap().sig)
            .collect();
        for i in 0..sigs.len() {
            for j in (i + 1)..sigs.len() {
                assert_ne!(sigs[i], sigs[j], "shapes {i} and {j} collide");
            }
        }
    }

    #[test]
    fn same_shape_same_sig_across_instances() {
        // Two disjoint copies of a chain with context: identical signatures.
        let g = graph(
            8,
            &[
                (0, 0, 1),
                (1, 1, 2),
                (2, 0, 3), // context at 2... also makes 2 external
                (4, 0, 5),
                (5, 1, 6),
                (6, 0, 7),
            ],
        );
        let d1 = resolve(&g, 0, 1).unwrap();
        let d2 = resolve(&g, 3, 4).unwrap();
        assert_eq!(d1.sig, d2.sig);
        assert_ne!(d1.nodes, d2.nodes);
    }

    #[test]
    fn non_adjacent_edges_are_not_digrams() {
        let g = graph(4, &[(0, 0, 1), (2, 0, 3)]);
        assert!(resolve(&g, 0, 1).is_none());
        assert!(resolve(&g, 0, 0).is_none());
    }

    #[test]
    fn hyperedge_digram() {
        let mut g = Hypergraph::with_nodes(4);
        g.add_edge(EdgeLabel::Nonterminal(0), &[0, 1, 2]);
        g.add_edge(T(0), &[2, 3]);
        g.add_edge(T(1), &[3, 0]); // context making 3 and 0 external
        let d = resolve(&g, 0, 1).unwrap();
        // Canonical orientation puts the terminal edge first (terminals sort
        // below nonterminals): a = T0(2,3), b = N0(0,1,2). Canonical nodes
        // are [2, 3, 0, 1].
        assert_eq!(d.sig.label_a, T(0));
        assert_eq!(d.sig.rank_a, 2);
        assert_eq!(d.sig.att_b, vec![2, 3, 0]);
        // node 2: both digram edges only → internal; node 3: context edge →
        // external; node 0: context edge → external; node 1: internal.
        assert_eq!(d.sig.ext_mask, 0b0110);
        assert_eq!(d.sig.rank(), 2);
    }

    #[test]
    fn host_external_nodes_count_as_external() {
        let mut g = graph(3, &[(0, 0, 1), (1, 1, 2)]);
        g.set_ext(vec![1]);
        let d = resolve(&g, 0, 1).unwrap();
        assert_eq!(d.sig.ext_mask, 0b010);
    }

    #[test]
    fn to_rhs_reconstructs_the_digram() {
        let g = graph(5, &[(0, 0, 1), (1, 1, 2), (3, 2, 0), (2, 2, 4)]);
        let d = resolve(&g, 0, 1).unwrap();
        let rhs = d.sig.to_rhs();
        assert_eq!(rhs.num_nodes(), 3);
        assert_eq!(rhs.num_edges(), 2);
        assert_eq!(rhs.rank(), 2);
        rhs.validate().unwrap();
        // The rhs's own digram signature must equal the original — round trip
        // through the canonical form (rhs has no context, so externals come
        // from the rhs ext list).
        let d2 = resolve(&rhs, 0, 1).unwrap();
        assert_eq!(d2.sig, d.sig);
    }

    #[test]
    fn parallel_edges_share_two_nodes() {
        let g = graph(2, &[(0, 0, 1), (0, 1, 1)]);
        let d = resolve(&g, 0, 1).unwrap();
        assert_eq!(d.sig.num_nodes(), 2);
        assert_eq!(d.sig.att_b, vec![0, 1]);
        assert_eq!(d.sig.rank(), 0);
    }
}
