//! Provenance: mapping `val(G)` node IDs back to input node IDs.
//!
//! The paper (§III-C2 end) notes that the grammar reproduces an *isomorphic*
//! copy of the input and that a mapping from new IDs to original IDs can be
//! produced "as it always produces the same isomorphic copy", which is what
//! makes compression lossless for graphs with node data (the ψ′ mapping).
//!
//! We materialize that mapping. Every nonterminal edge in the start graph
//! carries a [`Prov`] tree that mirrors its expansion: the original IDs of
//! the internal nodes its rule creates, plus one child tree per nonterminal
//! edge of the rule (in edge-ID order). Because both rule inlining
//! (`grepair_grammar::apply_rule`) and derivation create internal nodes in
//! rhs node-ID order and recurse in rhs edge-ID order, flattening the tree
//! depth-first yields exactly the derivation's node-creation order.
//!
//! Pruning reshapes rules by inlining; [`Prov::splice_children`] applies the
//! matching reshaping to the trees (inlined nodes merge into their parent,
//! their children get appended — mirroring how `apply_rule` appends).

use grepair_grammar::Grammar;
use grepair_hypergraph::{EdgeId, EdgeLabel, NodeId};
use grepair_util::FxHashMap;

/// Expansion provenance of one nonterminal edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prov {
    /// The nonterminal labeling the edge this tree describes.
    pub nt: u32,
    /// Original input-node IDs of the internal nodes `rhs(nt)` creates, in
    /// rhs node-ID order.
    pub internal: Vec<NodeId>,
    /// One subtree per nonterminal edge of `rhs(nt)`, in rhs edge-ID order.
    pub children: Vec<Prov>,
}

impl Prov {
    /// Depth-first flatten: the original IDs in derivation creation order.
    pub fn flatten_into(&self, out: &mut Vec<NodeId>) {
        out.extend_from_slice(&self.internal);
        for child in &self.children {
            child.flatten_into(out);
        }
    }

    /// Total number of nodes this expansion creates.
    pub fn size(&self) -> usize {
        self.internal.len() + self.children.iter().map(Prov::size).sum::<usize>()
    }

    /// Splice for "rule `inlined` was inlined into `rhs(host)`": at every
    /// tree node describing a `host` expansion, the children at
    /// `positions` (ascending indices into `children`, all labeled
    /// `inlined`) dissolve — their internal IDs append to the host's, their
    /// children append behind the host's remaining children. This mirrors
    /// `apply_rule`'s append-at-the-end layout exactly.
    pub fn splice_children(&mut self, host: u32, positions: &[usize]) {
        for child in &mut self.children {
            child.splice_children(host, positions);
        }
        if self.nt != host || positions.is_empty() {
            return;
        }
        let mut removed = Vec::with_capacity(positions.len());
        for &p in positions.iter().rev() {
            removed.push(self.children.remove(p));
        }
        removed.reverse(); // ascending position order again
        for sub in removed {
            debug_assert!(!positions.is_empty());
            self.internal.extend_from_slice(&sub.internal);
            self.children.extend(sub.children);
        }
    }

    /// Renumber nonterminal indices after rules were dropped/renumbered.
    pub fn renumber(&mut self, mapping: &[u32]) {
        self.nt = mapping[self.nt as usize];
        debug_assert_ne!(self.nt, u32::MAX, "prov references dropped rule");
        for child in &mut self.children {
            child.renumber(mapping);
        }
    }

    /// Check this tree is consistent with `grammar`: internal count matches
    /// the rhs, children match the rhs's nonterminal edges in order.
    pub fn validate(&self, grammar: &Grammar) -> Result<(), String> {
        let rhs = grammar.rule(self.nt);
        let internal = rhs.num_nodes() - rhs.rank();
        if self.internal.len() != internal {
            return Err(format!(
                "N{}: prov has {} internal ids, rhs creates {internal}",
                self.nt,
                self.internal.len()
            ));
        }
        let nt_edges: Vec<u32> = rhs
            .edges()
            .filter_map(|e| match e.label {
                EdgeLabel::Nonterminal(i) => Some(i),
                EdgeLabel::Terminal(_) => None,
            })
            .collect();
        if nt_edges.len() != self.children.len() {
            return Err(format!(
                "N{}: prov has {} children, rhs has {} nonterminal edges",
                self.nt,
                self.children.len(),
                nt_edges.len()
            ));
        }
        for (child, &label) in self.children.iter().zip(&nt_edges) {
            if child.nt != label {
                return Err(format!(
                    "N{}: prov child says N{}, rhs edge says N{label}",
                    self.nt, child.nt
                ));
            }
            child.validate(grammar)?;
        }
        Ok(())
    }
}

/// Assemble the full `val(G)`-ID → original-ID map:
/// alive start nodes first (in ID order, mapped through `original_id`), then
/// each start nonterminal edge's flattened tree in edge-ID order — matching
/// [`Grammar::derive`]'s creation order bit for bit.
pub fn build_node_map(
    grammar: &Grammar,
    original_id: &[NodeId],
    prov: &FxHashMap<EdgeId, Prov>,
) -> Vec<NodeId> {
    let mut map = Vec::new();
    for v in grammar.start.node_ids() {
        map.push(original_id[v as usize]);
    }
    for e in grammar.start.edges() {
        if e.label.is_nonterminal() {
            let tree = prov
                .get(&e.id)
                .unwrap_or_else(|| panic!("missing provenance for start edge {}", e.id));
            tree.flatten_into(&mut map);
        }
    }
    map
}

/// Validate every start-edge tree against the grammar, plus that the map is
/// a permutation of the expected original IDs.
pub fn validate_provenance(
    grammar: &Grammar,
    original_id: &[NodeId],
    prov: &FxHashMap<EdgeId, Prov>,
    expected_nodes: &[NodeId],
) -> Result<(), String> {
    for e in grammar.start.edges() {
        if let EdgeLabel::Nonterminal(nt) = e.label {
            let tree = prov
                .get(&e.id)
                .ok_or_else(|| format!("missing prov for start edge {}", e.id))?;
            if tree.nt != nt {
                return Err(format!("prov label mismatch on edge {}", e.id));
            }
            tree.validate(grammar)?;
        }
    }
    let map = build_node_map(grammar, original_id, prov);
    let mut seen: Vec<NodeId> = map.clone();
    seen.sort_unstable();
    seen.dedup();
    if seen.len() != map.len() {
        return Err("node map contains duplicate original IDs".into());
    }
    let mut expected: Vec<NodeId> = expected_nodes.to_vec();
    expected.sort_unstable();
    if seen != expected {
        return Err(format!(
            "node map covers {} originals, expected {}",
            seen.len(),
            expected.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(nt: u32, internal: Vec<NodeId>) -> Prov {
        Prov { nt, internal, children: Vec::new() }
    }

    #[test]
    fn flatten_is_depth_first() {
        let tree = Prov {
            nt: 2,
            internal: vec![10],
            children: vec![
                Prov { nt: 0, internal: vec![11, 12], children: vec![leaf(1, vec![13])] },
                leaf(1, vec![14]),
            ],
        };
        let mut out = Vec::new();
        tree.flatten_into(&mut out);
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
        assert_eq!(tree.size(), 5);
    }

    #[test]
    fn splice_merges_marked_children() {
        // host N5 has children [N7, N3, N7]; rule N7 gets inlined into
        // rhs(N5): both N7 children dissolve.
        let mut tree = Prov {
            nt: 5,
            internal: vec![1],
            children: vec![
                Prov { nt: 7, internal: vec![2], children: vec![leaf(4, vec![3])] },
                leaf(3, vec![9]),
                Prov { nt: 7, internal: vec![5], children: vec![leaf(4, vec![6])] },
            ],
        };
        let before: usize = tree.size();
        tree.splice_children(5, &[0, 2]);
        assert_eq!(tree.size(), before);
        assert_eq!(tree.internal, vec![1, 2, 5]);
        let child_nts: Vec<u32> = tree.children.iter().map(|c| c.nt).collect();
        assert_eq!(child_nts, vec![3, 4, 4]);
        // Flatten order matches the post-inline expansion order.
        let mut out = Vec::new();
        tree.flatten_into(&mut out);
        assert_eq!(out, vec![1, 2, 5, 9, 3, 6]);
    }

    #[test]
    fn splice_recurses_into_nested_hosts() {
        let mut tree = Prov {
            nt: 9,
            internal: vec![],
            children: vec![Prov {
                nt: 5,
                internal: vec![1],
                children: vec![leaf(7, vec![2])],
            }],
        };
        tree.splice_children(5, &[0]);
        assert_eq!(tree.children[0].internal, vec![1, 2]);
        assert!(tree.children[0].children.is_empty());
    }

    #[test]
    fn renumber_applies_everywhere() {
        let mut tree = Prov {
            nt: 2,
            internal: vec![],
            children: vec![leaf(0, vec![1])],
        };
        tree.renumber(&[5, u32::MAX, 1]);
        assert_eq!(tree.nt, 1);
        assert_eq!(tree.children[0].nt, 5);
    }
}
