//! Occurrence bookkeeping (§III-A2, §III-C1).
//!
//! For every digram the table keeps a list of (intended) non-overlapping
//! occurrences. Occurrences are found by the paper's greedy per-node pairing:
//! at node `v`, incident edges are grouped by (label, position of `v` in the
//! attachment) — "directions can be viewed as labels" — and the groups are
//! zipped pairwise via `Occ(E₁,E₂)`, considering only O(degree) of the
//! O(degree²) possible pairs.
//!
//! Non-overlap within a digram's list is enforced by *occupancy*: an edge
//! that has been counted in an occurrence with a partner labeled σ is
//! excluded from further pairings with σ-labeled partners (the paper's
//! `E_{σ1,σ2}(v)` sets) — here tracked globally per (edge, partner label),
//! which is slightly more conservative than the per-node sets and keeps
//! every list overlap-free by construction.

use crate::digram::{resolve, DigramSig};
use crate::queue::BucketQueue;
use grepair_hypergraph::{EdgeId, EdgeLabel, Hypergraph, NodeId};
use grepair_util::{FxHashMap, FxHashSet};

/// Index into [`OccTable::occs`].
pub type OccId = u32;
/// Index into [`OccTable::digrams`].
pub type DigramIdx = u32;

/// One counted occurrence.
#[derive(Debug, Clone)]
pub struct Occ {
    /// The two edges (canonical order of the resolved digram).
    pub edges: [EdgeId; 2],
    /// Which digram this occurrence was counted for.
    pub digram: DigramIdx,
    /// False once consumed by a replacement or invalidated by edge removal.
    pub alive: bool,
}

/// Per-digram state.
#[derive(Debug)]
pub struct DigramEntry {
    /// Canonical signature.
    pub sig: DigramSig,
    /// Occurrence list (append-only; dead entries skipped on drain).
    pub occ_ids: Vec<OccId>,
    /// Number of live occurrences.
    pub live: usize,
    /// Nonterminal assigned when this digram was first replaced (reused if
    /// the same shape becomes frequent again).
    pub nt: Option<u32>,
}

/// The occurrence table plus its priority queue hooks.
#[derive(Debug, Default)]
pub struct OccTable {
    /// Arena of all occurrences ever counted.
    pub occs: Vec<Occ>,
    /// Arena of digram entries.
    pub digrams: Vec<DigramEntry>,
    /// Signature → digram index.
    pub index: FxHashMap<DigramSig, DigramIdx>,
    /// Edge → occurrences containing it (live entries only meaningful).
    edge_occs: FxHashMap<EdgeId, Vec<OccId>>,
    /// (edge, partner label) → occupying occurrence.
    occupied: FxHashMap<(EdgeId, EdgeLabel), OccId>,
    /// Unordered edge pairs already counted once (never recount a pair).
    seen_pairs: FxHashSet<(EdgeId, EdgeId)>,
}

impl OccTable {
    /// Fresh empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live-occurrence count of a digram.
    pub fn live(&self, d: DigramIdx) -> usize {
        self.digrams[d as usize].live
    }

    fn pair_key(e: EdgeId, f: EdgeId) -> (EdgeId, EdgeId) {
        (e.min(f), e.max(f))
    }

    /// Is `edge` free to be counted with a partner labeled `partner`?
    fn is_free(&mut self, edge: EdgeId, partner: EdgeLabel) -> bool {
        match self.occupied.get(&(edge, partner)) {
            Some(&occ) if self.occs[occ as usize].alive => false,
            Some(_) => {
                self.occupied.remove(&(edge, partner));
                true
            }
            None => true,
        }
    }

    /// Count all occurrences centered around `v`, inserting them into the
    /// table and reporting count changes to `queue`. `max_rank` bounds the
    /// digram rank (§III-B2); rank-0 digrams are skipped (the paper's ranked
    /// alphabets exclude rank 0).
    pub fn count_at_node(
        &mut self,
        g: &Hypergraph,
        v: NodeId,
        max_rank: usize,
        queue: &mut BucketQueue,
    ) {
        self.count_at_node_inner(g, v, max_rank, queue, None);
    }

    /// Like [`OccTable::count_at_node`], but only group pairs touching one
    /// of the `focus` (label, position) groups are considered. This is the
    /// paper's incremental update (§III-A2): after a replacement only pairs
    /// `{e', e}` involving the new nonterminal edge become occurrences, so
    /// rescanning all label pairs around high-degree nodes is wasted work.
    pub fn count_at_node_focused(
        &mut self,
        g: &Hypergraph,
        v: NodeId,
        max_rank: usize,
        queue: &mut BucketQueue,
        focus: &FxHashSet<(EdgeLabel, u8)>,
    ) {
        self.count_at_node_inner(g, v, max_rank, queue, Some(focus));
    }

    fn count_at_node_inner(
        &mut self,
        g: &Hypergraph,
        v: NodeId,
        max_rank: usize,
        queue: &mut BucketQueue,
        focus: Option<&FxHashSet<(EdgeLabel, u8)>>,
    ) {
        // Group incident edges by (label, position of v): direction-as-label.
        let mut groups: std::collections::BTreeMap<(EdgeLabel, u8), Vec<EdgeId>> =
            std::collections::BTreeMap::new();
        for e in g.incident(v) {
            let pos = g.att(e).iter().position(|&x| x == v).unwrap() as u8;
            groups.entry((g.label(e), pos)).or_default().push(e);
        }
        let keys: Vec<(EdgeLabel, u8)> = groups.keys().copied().collect();
        for (i, &k1) in keys.iter().enumerate() {
            for &k2 in &keys[i..] {
                if let Some(focus) = focus {
                    if !focus.contains(&k1) && !focus.contains(&k2) {
                        continue;
                    }
                }
                if k1 == k2 {
                    // Same group: pair the free edges consecutively
                    // (the Occ(E₁,E₂) split for σ1 = σ2).
                    let list = &groups[&k1];
                    let mut i = 0usize;
                    while let Some(e) = self.next_free(g, list, &mut i, k1.0) {
                        let Some(f) = self.next_free(g, list, &mut i, k1.0) else { break };
                        self.try_count(g, e, f, max_rank, queue);
                    }
                } else {
                    // Distinct groups: zip the two free lists lazily. The
                    // two-pointer walk stops as soon as either side runs
                    // out, so a pairing against a tiny group never scans a
                    // huge one — this keeps high-degree hubs linear.
                    let list1 = &groups[&k1];
                    let list2 = &groups[&k2];
                    let (mut i1, mut i2) = (0usize, 0usize);
                    while let Some(e) = self.next_free(g, list1, &mut i1, k2.0) {
                        let Some(f) = self.next_free(g, list2, &mut i2, k1.0) else { break };
                        self.try_count(g, e, f, max_rank, queue);
                    }
                }
            }
        }
    }

    /// Advance `cursor` through `list` to the next alive edge that is free
    /// with respect to `partner` label; returns it (cursor past it) or None.
    fn next_free(
        &mut self,
        g: &Hypergraph,
        list: &[EdgeId],
        cursor: &mut usize,
        partner: EdgeLabel,
    ) -> Option<EdgeId> {
        while *cursor < list.len() {
            let e = list[*cursor];
            *cursor += 1;
            if g.edge_alive(e) && self.is_free(e, partner) {
                return Some(e);
            }
        }
        None
    }

    /// Try to record `{e, f}` as an occurrence. Applies the pair-seen filter
    /// and the rank bounds; on success occupies both edges.
    fn try_count(
        &mut self,
        g: &Hypergraph,
        e: EdgeId,
        f: EdgeId,
        max_rank: usize,
        queue: &mut BucketQueue,
    ) {
        if self.seen_pairs.contains(&Self::pair_key(e, f)) {
            return;
        }
        let Some(resolved) = resolve(g, e, f) else { return };
        let rank = resolved.sig.rank();
        if rank == 0 || rank > max_rank {
            return;
        }
        self.seen_pairs.insert(Self::pair_key(e, f));
        let d = self.digram_index(resolved.sig);
        let occ_id = self.occs.len() as OccId;
        self.occs.push(Occ { edges: resolved.edges, digram: d, alive: true });
        let entry = &mut self.digrams[d as usize];
        entry.occ_ids.push(occ_id);
        entry.live += 1;
        let live = entry.live;
        self.edge_occs.entry(e).or_default().push(occ_id);
        self.edge_occs.entry(f).or_default().push(occ_id);
        self.occupied.insert((e, g.label(f)), occ_id);
        self.occupied.insert((f, g.label(e)), occ_id);
        queue.update(d, live);
    }

    /// Get or create the digram entry for `sig`.
    pub fn digram_index(&mut self, sig: DigramSig) -> DigramIdx {
        if let Some(&d) = self.index.get(&sig) {
            return d;
        }
        let d = self.digrams.len() as DigramIdx;
        self.digrams.push(DigramEntry { sig: sig.clone(), occ_ids: Vec::new(), live: 0, nt: None });
        self.index.insert(sig, d);
        d
    }

    /// Invalidate every occurrence containing `edge` (called right before
    /// the edge is removed from the graph); reports count drops to `queue`.
    pub fn kill_edge(&mut self, edge: EdgeId, queue: &mut BucketQueue) {
        let Some(occ_ids) = self.edge_occs.remove(&edge) else { return };
        for occ_id in occ_ids {
            let occ = &mut self.occs[occ_id as usize];
            if occ.alive {
                occ.alive = false;
                let entry = &mut self.digrams[occ.digram as usize];
                entry.live -= 1;
                queue.update(occ.digram, entry.live);
            }
        }
    }

    /// Drain the occurrence list of digram `d`, resetting its live count.
    /// Returns the occurrence IDs in counted order (dead ones included —
    /// the caller re-validates).
    pub fn drain_digram(&mut self, d: DigramIdx, queue: &mut BucketQueue) -> Vec<OccId> {
        let entry = &mut self.digrams[d as usize];
        entry.live = 0;
        queue.update(d, 0);
        std::mem::take(&mut entry.occ_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_hypergraph::EdgeLabel::Terminal as T;

    fn count_all(g: &Hypergraph, max_rank: usize) -> (OccTable, BucketQueue) {
        let mut table = OccTable::new();
        let mut queue = BucketQueue::new(g.num_edges().max(4));
        for v in g.node_ids() {
            table.count_at_node(g, v, max_rank, &mut queue);
        }
        (table, queue)
    }

    #[test]
    fn counts_repeated_chain_digram() {
        // Path a·b repeated 5 times: the three *interior* a·b occurrences
        // share one signature (both end nodes external, middle internal);
        // the two boundary ones differ (a path end has no context edge).
        let mut g = Hypergraph::with_nodes(11);
        for i in 0..5u32 {
            g.add_edge(T(0), &[2 * i, 2 * i + 1]);
            g.add_edge(T(1), &[2 * i + 1, 2 * i + 2]);
        }
        let (table, _q) = count_all(&g, 4);
        let best = table.digrams.iter().map(|d| d.live).max().unwrap();
        assert_eq!(best, 3);
        // Exactly one digram reaches 3; the two boundary shapes get 1 each.
        let lives: Vec<usize> =
            table.digrams.iter().map(|d| d.live).filter(|&l| l > 0).collect();
        assert_eq!(lives.iter().sum::<usize>(), 5);
    }

    #[test]
    fn occupancy_prevents_overlaps_within_a_digram() {
        // Star of 5 same-label out-edges: pairs must not share edges.
        let mut g = Hypergraph::with_nodes(6);
        for i in 1..6u32 {
            g.add_edge(T(0), &[0, i]);
        }
        let (table, _q) = count_all(&g, 4);
        for entry in &table.digrams {
            let mut used = std::collections::HashSet::new();
            for &occ_id in &entry.occ_ids {
                let occ = &table.occs[occ_id as usize];
                for e in occ.edges {
                    assert!(used.insert((entry.sig.clone(), e)), "edge {e} reused");
                }
            }
        }
        // 5 edges → 2 pairs.
        let total: usize = table.digrams.iter().map(|d| d.live).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn max_rank_filters_digrams() {
        // Fork with context on every node: digram rank would be 3.
        let mut g = Hypergraph::with_nodes(9);
        g.add_edge(T(0), &[0, 1]);
        g.add_edge(T(1), &[1, 2]);
        // context edges making all three digram nodes external
        g.add_edge(T(2), &[3, 0]);
        g.add_edge(T(2), &[4, 1]);
        g.add_edge(T(2), &[5, 2]);
        // duplicate the pattern so the digram would be counted twice
        g.add_edge(T(0), &[6, 7]);
        g.add_edge(T(1), &[7, 8]);
        g.add_edge(T(2), &[3, 6]);
        g.add_edge(T(2), &[4, 7]);
        g.add_edge(T(2), &[5, 8]);
        let (t2, _) = count_all(&g, 2);
        let (t3, _) = count_all(&g, 3);
        let sig_rank = |t: &OccTable| {
            t.digrams.iter().filter(|d| d.live > 0).map(|d| d.sig.rank()).max().unwrap_or(0)
        };
        assert!(sig_rank(&t2) <= 2);
        assert!(sig_rank(&t3) <= 3);
        // With maxRank 3 the a·b digram (rank 3) is countable.
        assert!(t3.digrams.iter().any(|d| d.sig.rank() == 3 && d.live == 2));
    }

    #[test]
    fn rank_zero_digrams_are_skipped() {
        // Isolated 2-edge component: its only digram has rank 0.
        let mut g = Hypergraph::with_nodes(3);
        g.add_edge(T(0), &[0, 1]);
        g.add_edge(T(1), &[1, 2]);
        let (table, _q) = count_all(&g, 4);
        assert!(table.digrams.iter().all(|d| d.live == 0));
    }

    #[test]
    fn kill_edge_invalidates_and_decrements() {
        let mut g = Hypergraph::with_nodes(11);
        for i in 0..5u32 {
            g.add_edge(T(0), &[2 * i, 2 * i + 1]);
            g.add_edge(T(1), &[2 * i + 1, 2 * i + 2]);
        }
        let (mut table, mut queue) = count_all(&g, 4);
        let d = (0..table.digrams.len() as u32)
            .max_by_key(|&i| table.digrams[i as usize].live)
            .unwrap();
        assert_eq!(table.live(d), 3);
        // Edge 2 is the `a` of the first interior occurrence.
        table.kill_edge(2, &mut queue);
        assert_eq!(table.live(d), 2);
        // Killing again is a no-op.
        table.kill_edge(2, &mut queue);
        assert_eq!(table.live(d), 2);
    }

    #[test]
    fn node_order_changes_occurrence_count_like_fig5() {
        // The Fig. 5 phenomenon: greedy counting is order-sensitive. A star
        // of four 2-edge chains (center 0, chains 0→x→y): visiting the
        // middles first finds the maximum set of 4 chain occurrences;
        // visiting the center first greedily pairs the center's out-edges
        // into fork digrams, occupying them and capping every list at 2.
        let star = |order: &[u32]| {
            let mut g = Hypergraph::with_nodes(9);
            for i in 0..4u32 {
                g.add_edge(T(0), &[0, 1 + 2 * i]); // center -> middle
                g.add_edge(T(0), &[1 + 2 * i, 2 + 2 * i]); // middle -> leaf
            }
            let mut table = OccTable::new();
            let mut queue = BucketQueue::new(8);
            for &v in order {
                table.count_at_node(&g, v, 8, &mut queue);
            }
            table.digrams.iter().map(|d| d.live).max().unwrap_or(0)
        };
        // "Jumping" order (middles first, like Fig. 5c): 4 occurrences.
        assert_eq!(star(&[1, 3, 5, 7, 0, 2, 4, 6, 8]), 4);
        // Center-first (like Fig. 5a): the greedy fork pairing wins, 2.
        assert_eq!(star(&[0, 1, 2, 3, 4, 5, 6, 7, 8]), 2);
    }

    #[test]
    fn focused_recount_only_touches_focus_groups() {
        let mut g = Hypergraph::with_nodes(5);
        g.add_edge(T(0), &[0, 1]);
        g.add_edge(T(0), &[0, 2]);
        g.add_edge(T(1), &[0, 3]);
        g.add_edge(T(1), &[0, 4]);
        let mut table = OccTable::new();
        let mut queue = BucketQueue::new(8);
        // Focus on label-0/source groups only: the (T1,T1) pair is skipped.
        let mut focus = grepair_util::FxHashSet::default();
        focus.insert((T(0), 0u8));
        table.count_at_node_focused(&g, 0, 8, &mut queue, &focus);
        let counted: usize = table.digrams.iter().map(|d| d.live).sum();
        // (T0,T0) and (T0,T1)×… pairs only; the pure T1×T1 pair is absent.
        assert!(counted >= 1);
        for entry in &table.digrams {
            if entry.live > 0 {
                assert!(
                    entry.sig.label_a == T(0) || entry.sig.label_b == T(0),
                    "{:?}",
                    entry.sig
                );
            }
        }
    }

    #[test]
    fn pairs_are_never_recounted() {
        let mut g = Hypergraph::with_nodes(3);
        g.add_edge(T(0), &[0, 1]);
        g.add_edge(T(1), &[1, 2]);
        g.add_edge(T(2), &[2, 0]); // context making things external
        let mut table = OccTable::new();
        let mut queue = BucketQueue::new(8);
        for v in g.node_ids() {
            table.count_at_node(&g, v, 4, &mut queue);
        }
        let first = table.occs.len();
        // Recounting the same nodes must add nothing.
        for v in g.node_ids() {
            table.count_at_node(&g, v, 4, &mut queue);
        }
        assert_eq!(table.occs.len(), first);
    }
}
