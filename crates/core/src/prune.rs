//! Pruning (§III-A3): remove rules that do not contribute to compression.
//!
//! Two phases, as in the paper: first every nonterminal with `ref(A) = 1`
//! is inlined (con is −|handle| < 0 by definition), then the nonterminals
//! are traversed in bottom-up ≤NT order and each with `con(A) ≤ 0` is
//! inlined everywhere. Contributions are recomputed as the grammar changes,
//! because inlining alters the sizes and reference counts the formula reads
//! — the paper notes that "as we remove rules, the contribution of other
//! nonterminals might change".
//!
//! Every inline is mirrored in the provenance forest (see
//! [`crate::provenance`]): an inline into the start graph materializes the
//! tree's internal IDs as real start-graph nodes; an inline into another
//! rule splices the affected tree nodes.

use crate::provenance::Prov;
use grepair_grammar::{apply_rule, Grammar};
use grepair_hypergraph::{EdgeId, EdgeLabel, Hypergraph, NodeId};
use grepair_util::FxHashMap;

/// Run both pruning phases. Returns the number of rules inlined away.
///
/// Inlined rules are left as empty placeholders (so indices stay stable);
/// the caller runs [`Grammar::drop_unreferenced_rules`] afterwards.
pub fn prune(
    grammar: &mut Grammar,
    prov: &mut FxHashMap<EdgeId, Prov>,
    original_id: &mut Vec<NodeId>,
) -> usize {
    let mut pruned = 0usize;

    // Phase 1: ref(A) = 1 ⇒ inline. Reference counts of other rules are
    // unchanged by these inlines (the single occurrence moves, nothing is
    // duplicated), so one pass over a snapshot suffices.
    let refs = grammar.ref_counts();
    for nt in 0..grammar.num_nonterminals() as u32 {
        if refs[nt as usize] == 1 {
            inline_everywhere(grammar, nt, prov, original_id);
            pruned += 1;
        }
    }

    // Phase 2: bottom-up, con(A) ≤ 0 ⇒ inline everywhere.
    let order = grammar
        .topo_order_bottom_up()
        .expect("grammar must be straight-line");
    for nt in order {
        let refs = grammar.ref_counts();
        let r = refs[nt as usize];
        if r == 0 {
            continue; // already inlined away (or never referenced)
        }
        if grammar.contribution(nt, r) <= 0 {
            inline_everywhere(grammar, nt, prov, original_id);
            pruned += 1;
        }
    }
    pruned
}

/// Inline nonterminal `b` at every reference (rules first, then the start
/// graph), keep provenance in sync, and empty `b`'s rule.
pub fn inline_everywhere(
    grammar: &mut Grammar,
    b: u32,
    prov: &mut FxHashMap<EdgeId, Prov>,
    original_id: &mut Vec<NodeId>,
) {
    let rhs_b = grammar.rule(b).clone();

    // 1. Inline into every other rule, splicing the provenance forest.
    for a in 0..grammar.num_nonterminals() as u32 {
        if a == b {
            continue;
        }
        // Positions of b-edges among rhs(a)'s nonterminal edges, pre-inline.
        let nt_edges: Vec<(EdgeId, u32)> = grammar
            .rule(a)
            .edges()
            .filter_map(|e| match e.label {
                EdgeLabel::Nonterminal(i) => Some((e.id, i)),
                EdgeLabel::Terminal(_) => None,
            })
            .collect();
        let positions: Vec<usize> = nt_edges
            .iter()
            .enumerate()
            .filter(|(_, (_, label))| *label == b)
            .map(|(i, _)| i)
            .collect();
        if positions.is_empty() {
            continue;
        }
        let victim_edges: Vec<EdgeId> = nt_edges
            .iter()
            .filter(|(_, label)| *label == b)
            .map(|(e, _)| *e)
            .collect();
        for e in victim_edges {
            apply_rule(grammar.rule_mut(a), e, &rhs_b);
        }
        for tree in prov.values_mut() {
            tree.splice_children(a, &positions);
        }
    }

    // 2. Inline into the start graph, materializing provenance.
    let s_edges: Vec<EdgeId> = grammar
        .start
        .edges()
        .filter(|e| e.label == EdgeLabel::Nonterminal(b))
        .map(|e| e.id)
        .collect();
    for e in s_edges {
        let tree = prov
            .remove(&e)
            .unwrap_or_else(|| panic!("missing provenance for start edge {e}"));
        let result = apply_rule(&mut grammar.start, e, &rhs_b);
        debug_assert_eq!(result.created_nodes.len(), tree.internal.len());
        original_id.resize(grammar.start.node_bound(), NodeId::MAX);
        for (&node, &orig) in result.created_nodes.iter().zip(&tree.internal) {
            original_id[node as usize] = orig;
        }
        let mut children = tree.children.into_iter();
        for ce in result.created_edges {
            if grammar.start.label(ce).is_nonterminal() {
                let child = children
                    .next()
                    .expect("provenance children shorter than rhs nonterminal edges");
                prov.insert(ce, child);
            }
        }
        debug_assert!(children.next().is_none(), "leftover provenance children");
    }

    // 3. Empty the rule; drop_unreferenced_rules removes it at the end.
    *grammar.rule_mut(b) = Hypergraph::new();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::build_node_map;
    use grepair_hypergraph::EdgeLabel::{Nonterminal as N, Terminal as T};

    /// Grammar: S has one N0-edge (ref 1) and rhs(N0) = a·b chain; prune
    /// must inline it and leave a rule-free grammar.
    #[test]
    fn singly_referenced_rule_is_inlined() {
        let mut start = Hypergraph::with_nodes(2);
        let e = start.add_edge(N(0), &[0, 1]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 2]);
        rhs.add_edge(T(1), &[2, 1]);
        rhs.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 2);
        g.add_rule(rhs);
        let mut prov = FxHashMap::default();
        prov.insert(e, Prov { nt: 0, internal: vec![7], children: vec![] });
        let mut original_id: Vec<NodeId> = vec![3, 5];

        let pruned = prune(&mut g, &mut prov, &mut original_id);
        assert_eq!(pruned, 1);
        g.drop_unreferenced_rules();
        assert_eq!(g.num_nonterminals(), 0);
        assert_eq!(g.start.num_edges(), 2);
        assert_eq!(g.start.num_nodes(), 3);
        // The materialized internal node carries original ID 7.
        assert_eq!(original_id[2], 7);
        let map = build_node_map(&g, &original_id, &prov);
        assert_eq!(map, vec![3, 5, 7]);
        g.validate().unwrap();
    }

    /// The Fig. 6 reconstruction: con(A) = 3 > 0, so pruning keeps the rule.
    #[test]
    fn contributing_rule_survives() {
        let mut start = Hypergraph::with_nodes(9);
        let mut prov = FxHashMap::default();
        for (s, t) in [(0u32, 1u32), (2, 3), (4, 5), (6, 7)] {
            let e = start.add_edge(N(0), &[s, t]);
            prov.insert(e, Prov { nt: 0, internal: vec![100 + s], children: vec![] });
        }
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 2]);
        rhs.add_edge(T(0), &[2, 1]);
        rhs.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs);
        let mut original_id: Vec<NodeId> = (0..9).collect();

        let pruned = prune(&mut g, &mut prov, &mut original_id);
        assert_eq!(pruned, 0);
        assert_eq!(g.num_nonterminals(), 1);
    }

    /// A non-contributing rule referenced twice (con = 2·(5−3)−5 = −1)
    /// must be inlined at both sites.
    #[test]
    fn non_contributing_rule_is_inlined_everywhere() {
        let mut start = Hypergraph::with_nodes(4);
        let mut prov = FxHashMap::default();
        for (s, t) in [(0u32, 1u32), (2, 3)] {
            let e = start.add_edge(N(0), &[s, t]);
            prov.insert(e, Prov { nt: 0, internal: vec![50 + s], children: vec![] });
        }
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 2]);
        rhs.add_edge(T(1), &[2, 1]);
        rhs.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 2);
        g.add_rule(rhs);
        let mut original_id: Vec<NodeId> = (0..4).collect();

        let pruned = prune(&mut g, &mut prov, &mut original_id);
        assert_eq!(pruned, 1);
        g.drop_unreferenced_rules();
        assert_eq!(g.num_nonterminals(), 0);
        assert_eq!(g.start.num_edges(), 4);
        assert_eq!(g.start.num_nodes(), 6);
        let map = build_node_map(&g, &original_id, &prov);
        assert_eq!(map, vec![0, 1, 2, 3, 50, 52]);
    }

    /// Nested case: N1 (kept) references N0 (inlined); the prov forest must
    /// be spliced so flattening still matches the expansion order.
    #[test]
    fn inline_into_rule_splices_provenance() {
        // S: two N1-edges. rhs(N1) = N0-edge · c-edge (via a middle node).
        // rhs(N0) = a·b. ref(N0) = 1 → phase 1 inlines N0 into rhs(N1).
        let mut start = Hypergraph::with_nodes(4);
        let mut prov = FxHashMap::default();
        let e0 = start.add_edge(N(1), &[0, 1]);
        let e1 = start.add_edge(N(1), &[2, 3]);
        prov.insert(
            e0,
            Prov {
                nt: 1,
                internal: vec![10],
                children: vec![Prov { nt: 0, internal: vec![11], children: vec![] }],
            },
        );
        prov.insert(
            e1,
            Prov {
                nt: 1,
                internal: vec![20],
                children: vec![Prov { nt: 0, internal: vec![21], children: vec![] }],
            },
        );
        let mut rhs0 = Hypergraph::with_nodes(3);
        rhs0.add_edge(T(0), &[0, 2]);
        rhs0.add_edge(T(1), &[2, 1]);
        rhs0.set_ext(vec![0, 1]);
        let mut rhs1 = Hypergraph::with_nodes(3);
        rhs1.add_edge(N(0), &[0, 2]);
        rhs1.add_edge(T(2), &[2, 1]);
        rhs1.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 3);
        g.add_rule(rhs0);
        g.add_rule(rhs1);
        g.validate().unwrap();
        let mut original_id: Vec<NodeId> = (0..4).collect();

        inline_everywhere(&mut g, 0, &mut prov, &mut original_id);
        let mapping = g.drop_unreferenced_rules();
        for tree in prov.values_mut() {
            tree.renumber(&mapping);
        }
        g.validate().unwrap();
        assert_eq!(g.num_nonterminals(), 1);
        assert_eq!(g.rule(0).num_edges(), 3); // c + a + b

        // Provenance must validate against the new grammar and flatten in
        // the new expansion order: internal of N1 (old middle 10, then the
        // spliced 11), no children.
        for e in [e0, e1] {
            prov[&e].validate(&g).unwrap();
        }
        let map = build_node_map(&g, &original_id, &prov);
        assert_eq!(map, vec![0, 1, 2, 3, 10, 11, 20, 21]);

        // And deriving must agree with counting.
        assert_eq!(g.derive().num_nodes(), map.len());
    }
}
