//! The digram priority queue.
//!
//! Larsson & Moffat \[15\] keep digrams in ⌈√n⌉ buckets keyed by occurrence
//! count, the last bucket collecting everything at or above √n; the most
//! frequent digram is then found in (amortized) constant time, and count
//! updates are O(1) bucket moves. The paper adopts the same structure with
//! n = |E| (§III-C1). [`BucketQueue`] implements it; a naive max-scan
//! reference implementation lives in the tests for differential checking.

/// Opaque handle: the caller's digram index.
pub type Item = u32;

/// Bucket priority queue over items with mutable counts.
///
/// Items with count < 2 are not queued (a digram needs two non-overlapping
/// occurrences to be *active*). The caller reports every count change via
/// [`BucketQueue::update`].
#[derive(Debug)]
pub struct BucketQueue {
    /// `buckets[c]` holds items with count `c` (2 ≤ c < cap); `buckets[cap]`
    /// holds items with count ≥ cap.
    buckets: Vec<Vec<Item>>,
    /// Position of each item inside its bucket (`u32::MAX` = not queued).
    pos: Vec<u32>,
    /// Bucket index of each item (`u32::MAX` = not queued).
    bucket_of: Vec<u32>,
    /// Highest possibly-nonempty bucket (lazy bound).
    max_bucket: usize,
    cap: usize,
}

impl BucketQueue {
    /// Queue sized for an input with `num_edges` edges: cap = ⌈√num_edges⌉,
    /// clamped to at least 2.
    pub fn new(num_edges: usize) -> Self {
        let cap = (num_edges as f64).sqrt().ceil() as usize;
        let cap = cap.max(2);
        Self {
            buckets: vec![Vec::new(); cap + 1],
            pos: Vec::new(),
            bucket_of: Vec::new(),
            max_bucket: 0,
            cap,
        }
    }

    fn ensure(&mut self, item: Item) {
        let need = item as usize + 1;
        if self.pos.len() < need {
            self.pos.resize(need, u32::MAX);
            self.bucket_of.resize(need, u32::MAX);
        }
    }

    fn bucket_for(&self, count: usize) -> usize {
        count.min(self.cap)
    }

    fn detach(&mut self, item: Item) {
        let b = self.bucket_of[item as usize];
        if b == u32::MAX {
            return;
        }
        let p = self.pos[item as usize] as usize;
        let bucket = &mut self.buckets[b as usize];
        let removed = bucket.swap_remove(p);
        debug_assert_eq!(removed, item);
        if p < bucket.len() {
            let moved = bucket[p];
            self.pos[moved as usize] = p as u32;
        }
        self.pos[item as usize] = u32::MAX;
        self.bucket_of[item as usize] = u32::MAX;
    }

    /// Report that `item` now has `count` live occurrences.
    pub fn update(&mut self, item: Item, count: usize) {
        self.ensure(item);
        let new_bucket = if count < 2 { u32::MAX } else { self.bucket_for(count) as u32 };
        if self.bucket_of[item as usize] == new_bucket {
            return;
        }
        self.detach(item);
        if new_bucket != u32::MAX {
            let b = new_bucket as usize;
            self.pos[item as usize] = self.buckets[b].len() as u32;
            self.bucket_of[item as usize] = new_bucket;
            self.buckets[b].push(item);
            self.max_bucket = self.max_bucket.max(b);
        }
    }

    /// Remove `item` from the queue entirely.
    pub fn remove(&mut self, item: Item) {
        if (item as usize) < self.pos.len() {
            self.detach(item);
        }
    }

    /// The item with the largest count, or `None` if no active digram
    /// remains. `counts` supplies current counts (needed to pick the true
    /// maximum inside the overflow bucket).
    pub fn pop_best(&mut self, counts: impl Fn(Item) -> usize) -> Option<Item> {
        while self.max_bucket >= 2 && self.buckets[self.max_bucket].is_empty() {
            self.max_bucket -= 1;
        }
        if self.max_bucket < 2 {
            return None;
        }
        let bucket = &self.buckets[self.max_bucket];
        let best = if self.max_bucket == self.cap {
            // Overflow bucket: scan for the true maximum.
            *bucket.iter().max_by_key(|&&it| counts(it))?
        } else {
            *bucket.last()?
        };
        self.detach(best);
        Some(best)
    }

    /// Number of queued items (linear scan; test/diagnostic use).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Model implementation: a hash map scanned for the max.
    #[derive(Default)]
    struct Naive {
        counts: HashMap<Item, usize>,
    }

    impl Naive {
        fn update(&mut self, item: Item, count: usize) {
            if count < 2 {
                self.counts.remove(&item);
            } else {
                self.counts.insert(item, count);
            }
        }
        fn pop_best(&mut self) -> Option<(Item, usize)> {
            let (&item, &count) = self.counts.iter().max_by_key(|(_, &c)| c)?;
            self.counts.remove(&item);
            Some((item, count))
        }
    }

    #[test]
    fn basic_ordering() {
        let mut q = BucketQueue::new(100);
        q.update(0, 5);
        q.update(1, 3);
        q.update(2, 9);
        let counts = [5usize, 3, 9];
        assert_eq!(q.pop_best(|i| counts[i as usize]), Some(2));
        assert_eq!(q.pop_best(|i| counts[i as usize]), Some(0));
        assert_eq!(q.pop_best(|i| counts[i as usize]), Some(1));
        assert_eq!(q.pop_best(|i| counts[i as usize]), None);
    }

    #[test]
    fn count_below_two_is_inactive() {
        let mut q = BucketQueue::new(10);
        q.update(0, 1);
        assert!(q.pop_best(|_| 1).is_none());
        q.update(0, 2);
        assert_eq!(q.pop_best(|_| 2), Some(0));
    }

    #[test]
    fn overflow_bucket_returns_true_max() {
        // cap = ceil(sqrt(16)) = 4; counts 100 and 7 both land in bucket 4.
        let mut q = BucketQueue::new(16);
        q.update(0, 7);
        q.update(1, 100);
        let counts = [7usize, 100];
        assert_eq!(q.pop_best(|i| counts[i as usize]), Some(1));
        assert_eq!(q.pop_best(|i| counts[i as usize]), Some(0));
    }

    #[test]
    fn update_moves_between_buckets() {
        let mut q = BucketQueue::new(100);
        q.update(0, 2);
        q.update(1, 3);
        q.update(0, 9); // promote
        let counts = [9usize, 3];
        assert_eq!(q.pop_best(|i| counts[i as usize]), Some(0));
        q.update(1, 0); // deactivate
        assert!(q.pop_best(|i| counts[i as usize]).is_none());
    }

    #[test]
    fn remove_works_mid_bucket() {
        let mut q = BucketQueue::new(100);
        for i in 0..5u32 {
            q.update(i, 4);
        }
        q.remove(2);
        let mut seen = Vec::new();
        while let Some(i) = q.pop_best(|_| 4) {
            seen.push(i);
        }
        seen.sort();
        assert_eq!(seen, vec![0, 1, 3, 4]);
    }

    #[test]
    fn differential_against_naive_model() {
        // Random-ish op sequence; after each op both structures must agree
        // on the maximum count (the item may differ on ties).
        let mut q = BucketQueue::new(50);
        let mut model = Naive::default();
        let mut counts: HashMap<Item, usize> = HashMap::new();
        let mut x = 0xABCDEFu64;
        for step in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let item = (x % 20) as Item;
            let count = ((x >> 8) % 30) as usize;
            counts.insert(item, count);
            q.update(item, count);
            model.update(item, count);
            if step % 7 == 0 {
                let got = q.pop_best(|i| counts[&i]);
                let want = model.pop_best();
                match (got, want) {
                    (None, None) => {}
                    (Some(g), Some((_, wc))) => {
                        assert_eq!(counts[&g], wc, "step {step}");
                        // keep the two structures in sync: the model popped a
                        // possibly different item of equal count; re-insert
                        // and remove the chosen one from both.
                        if let Some((mi, _)) = want {
                            if mi != g {
                                model.counts.insert(mi, wc);
                                model.counts.remove(&g);
                            }
                        }
                        counts.insert(g, 0);
                        model.update(g, 0);
                    }
                    other => panic!("mismatch at step {step}: {other:?}"),
                }
            }
        }
    }
}
