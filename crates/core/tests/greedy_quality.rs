//! Ablation: quality of the greedy ω-order occurrence counting (§III-C1)
//! against the *optimal* maximum set of non-overlapping occurrences.
//!
//! The paper replaces maximum matching ("Blossom requires O(|V|²|E|) time,
//! which is infeasible") with the greedy per-node pairing and notes the node
//! order influences the result (Fig. 5). On small graphs we can afford the
//! exact optimum by brute force, so these tests quantify the approximation.
//!
//! What the compressor actually consumes is the count of the *most frequent*
//! digram (step 3), so the quality metrics are: (a) soundness — greedy never
//! exceeds the optimum for any digram; (b) the best greedy digram is within
//! a factor ~2 of the best optimal digram; (c) on the repetitive inputs that
//! matter for compression, greedy finds the optimum for the dominating
//! digram. Note that per-shape counts can individually fall to zero: the
//! occupancy rule shares edges across all shapes of a label pair (that is
//! the paper's `E_{σ1,σ2}` semantics), so a weaker shape may be starved by a
//! stronger one — the aggregate metrics below are the meaningful ones.

use grepair_core::digram::{resolve, DigramSig};
use grepair_core::occurrences::OccTable;
use grepair_core::queue::BucketQueue;
use grepair_hypergraph::order::{compute_order, NodeOrder};
use grepair_hypergraph::{EdgeId, Hypergraph};
use std::collections::HashMap;

/// All (unordered) occurrence pairs per digram signature in `g`.
fn all_occurrences(g: &Hypergraph, max_rank: usize) -> HashMap<DigramSig, Vec<(EdgeId, EdgeId)>> {
    let mut map: HashMap<DigramSig, Vec<(EdgeId, EdgeId)>> = HashMap::new();
    let edges: Vec<EdgeId> = g.edges().map(|e| e.id).collect();
    for (i, &e) in edges.iter().enumerate() {
        for &f in &edges[i + 1..] {
            if let Some(d) = resolve(g, e, f) {
                let rank = d.sig.rank();
                if rank >= 1 && rank <= max_rank {
                    map.entry(d.sig).or_default().push((e, f));
                }
            }
        }
    }
    map
}

/// Exact maximum number of pairwise edge-disjoint occurrences, by
/// branch-and-bound over the occurrence list (fine for ≤ ~24 occurrences).
fn optimal_nonoverlapping(occs: &[(EdgeId, EdgeId)]) -> usize {
    fn go(occs: &[(EdgeId, EdgeId)], used: &mut Vec<EdgeId>, best: &mut usize, picked: usize) {
        if picked + occs.len() <= *best {
            return; // cannot beat the incumbent
        }
        match occs.first() {
            None => *best = (*best).max(picked),
            Some(&(e, f)) => {
                if !used.contains(&e) && !used.contains(&f) {
                    used.push(e);
                    used.push(f);
                    go(&occs[1..], used, best, picked + 1);
                    used.pop();
                    used.pop();
                }
                go(&occs[1..], used, best, picked);
            }
        }
    }
    let mut best = 0;
    go(occs, &mut Vec::new(), &mut best, 0);
    best
}

/// Greedy counts per digram under a node order.
fn greedy_counts(g: &Hypergraph, order: NodeOrder, max_rank: usize) -> HashMap<DigramSig, usize> {
    let mut table = OccTable::new();
    let mut queue = BucketQueue::new(g.num_edges().max(4));
    for v in compute_order(g, order) {
        table.count_at_node(g, v, max_rank, &mut queue);
    }
    table
        .digrams
        .iter()
        .filter(|d| d.live > 0)
        .map(|d| (d.sig.clone(), d.live))
        .collect()
}

fn small_random_graph(seed: u64, n: u32, m: usize) -> Hypergraph {
    let mut x = seed | 1;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let triples: Vec<(u32, u32, u32)> = (0..m)
        .map(|_| (rnd() as u32 % n, rnd() as u32 % 2, rnd() as u32 % n))
        .collect();
    Hypergraph::from_simple_edges(n as usize, triples).0
}

#[test]
fn greedy_is_sound_and_best_digram_is_competitive() {
    let mut competitive = 0usize;
    let mut cases = 0usize;
    for seed in 1..=25u64 {
        let g = small_random_graph(seed, 10, 14);
        let exact = all_occurrences(&g, 4);
        let optima: HashMap<&DigramSig, usize> = exact
            .iter()
            .filter(|(_, occs)| occs.len() <= 20)
            .map(|(sig, occs)| (sig, optimal_nonoverlapping(occs)))
            .collect();
        let best_optimal = optima.values().copied().max().unwrap_or(0);
        for order in [NodeOrder::Natural, NodeOrder::Fp, NodeOrder::Bfs] {
            let greedy = greedy_counts(&g, order, 4);
            // (a) soundness: greedy never exceeds the per-shape optimum.
            for (sig, &count) in &greedy {
                if let Some(&opt) = optima.get(sig) {
                    assert!(
                        count <= opt,
                        "seed {seed} {order}: greedy {count} > optimal {opt} for {sig:?}"
                    );
                }
            }
            // (b) the most frequent greedy digram is within a factor 2 (+1)
            // of the most frequent digram overall.
            let best_greedy = greedy.values().copied().max().unwrap_or(0);
            cases += 1;
            if 2 * best_greedy + 1 >= best_optimal {
                competitive += 1;
            }
        }
    }
    assert!(
        competitive * 10 >= cases * 9,
        "best greedy digram within 2x of best optimal in only {competitive}/{cases} cases"
    );
}

#[test]
fn greedy_is_near_optimal_for_the_dominating_digram_on_repetitive_input() {
    // The compressible case that matters: the repeated a·b chain. Two
    // digram phases exist — (a·b) with `reps − 2` interior occurrences and
    // (b·a) with `reps − 1` — and greedy locks onto whichever phase its node
    // order reaches first (exactly the Fig. 5 phenomenon), so it is allowed
    // to be one off the optimum but no worse.
    let reps = 6u32;
    let (g, _) = Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    );
    let exact = all_occurrences(&g, 4);
    let best_optimal = exact
        .values()
        .filter(|occs| occs.len() <= 20)
        .map(|occs| optimal_nonoverlapping(occs))
        .max()
        .unwrap();
    assert_eq!(best_optimal, (reps - 1) as usize);
    for order in [NodeOrder::Natural, NodeOrder::Fp] {
        let greedy = greedy_counts(&g, order, 4);
        let best_greedy = greedy.values().copied().max().unwrap_or(0);
        assert!(
            best_greedy + 1 >= best_optimal,
            "{order}: dominating digram undercounted ({best_greedy} vs {best_optimal})"
        );
    }
}
