//! Property-based round-trip tests: for arbitrary graphs and configurations,
//! compressing and deriving must reproduce the input exactly (under the
//! node map), and the grammar must satisfy all SL-HR invariants.

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::order::NodeOrder;
use grepair_hypergraph::Hypergraph;
use proptest::prelude::*;

/// Strategy: a random simple directed graph with up to `n` nodes, `m` edge
/// attempts, and `labels` labels.
fn arb_graph(n: u32, m: usize, labels: u32) -> impl Strategy<Value = Hypergraph> {
    (2..n, proptest::collection::vec((0u32..n, 0u32..labels, 0u32..n), 0..m)).prop_map(
        move |(nodes, triples)| {
            let triples: Vec<(u32, u32, u32)> = triples
                .into_iter()
                .map(|(s, l, t)| (s % nodes, l, t % nodes))
                .collect();
            Hypergraph::from_simple_edges(nodes as usize, triples).0
        },
    )
}

fn arb_config() -> impl Strategy<Value = GRePairConfig> {
    (
        2usize..=6,
        prop_oneof![
            Just(NodeOrder::Natural),
            Just(NodeOrder::Bfs),
            Just(NodeOrder::Fp0),
            Just(NodeOrder::Fp),
            any::<u64>().prop_map(NodeOrder::Random),
        ],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(max_rank, order, connect_components, prune)| GRePairConfig {
            max_rank,
            order,
            connect_components,
            prune,
            num_terminals: None,
        })
}

fn check(g: &Hypergraph, config: &GRePairConfig) {
    let out = compress(g, config);
    out.grammar
        .validate()
        .unwrap_or_else(|e| panic!("invalid grammar ({config:?}): {e}"));
    let derived = out.grammar.derive();
    derived.validate().unwrap();
    assert_eq!(derived.num_nodes(), g.num_nodes());
    assert_eq!(derived.num_edges(), g.num_edges());
    // Exact equality under the node map — stronger than isomorphism.
    assert_eq!(
        derived.edge_multiset_mapped(|v| out.node_map[v as usize]),
        g.edge_multiset()
    );
    // Derived-size predictions must agree with the actual derivation.
    assert_eq!(out.grammar.derived_node_count() as usize, derived.num_nodes());
    assert_eq!(out.grammar.derived_edge_count() as usize, derived.num_edges());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_sparse_graphs_round_trip(
        g in arb_graph(60, 150, 3),
        config in arb_config(),
    ) {
        check(&g, &config);
    }

    #[test]
    fn random_dense_small_graphs_round_trip(
        g in arb_graph(12, 160, 2),
        config in arb_config(),
    ) {
        check(&g, &config);
    }

    #[test]
    fn single_label_graphs_round_trip(
        g in arb_graph(40, 120, 1),
        config in arb_config(),
    ) {
        check(&g, &config);
    }

    #[test]
    fn disjoint_copies_round_trip(
        copies in 2u32..12,
        seed_edges in proptest::collection::vec((0u32..5, 0u32..2, 0u32..5), 1..8),
        config in arb_config(),
    ) {
        let mut triples = Vec::new();
        for c in 0..copies {
            let base = 5 * c;
            for &(s, l, t) in &seed_edges {
                if s != t {
                    triples.push((base + s, l, base + t));
                }
            }
        }
        let (g, _) = Hypergraph::from_simple_edges(5 * copies as usize, triples);
        check(&g, &config);
    }

    #[test]
    fn compression_never_loses_to_half_then_gains(
        g in arb_graph(50, 200, 2),
    ) {
        // Pruned grammars are never larger than unpruned ones.
        let unpruned = compress(&g, &GRePairConfig { prune: false, ..Default::default() });
        let pruned = compress(&g, &GRePairConfig::default());
        prop_assert!(pruned.grammar.size() <= unpruned.grammar.size());
    }
}
