//! Property tests for the hypergraph substrate: structural invariants under
//! random mutation, text round trips, and node-order laws.

use grepair_hypergraph::io::{parse_hypergraph, write_hypergraph};
use grepair_hypergraph::order::{compute_order, fp_refine, FpConfig, NodeOrder};
use grepair_hypergraph::{EdgeLabel, Hypergraph};
use proptest::prelude::*;

/// A random mutation script over a small graph.
#[derive(Debug, Clone)]
enum Op {
    AddNode,
    AddEdge(u8, Vec<u8>),
    RemoveEdge(u8),
    RemoveIsolatedNode(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Op::AddNode),
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..4))
                .prop_map(|(l, att)| Op::AddEdge(l, att)),
            any::<u8>().prop_map(Op::RemoveEdge),
            any::<u8>().prop_map(Op::RemoveIsolatedNode),
        ],
        0..120,
    )
}

proptest! {
    #[test]
    fn invariants_hold_under_mutation(ops in arb_ops()) {
        let mut g = Hypergraph::with_nodes(4);
        for op in ops {
            match op {
                Op::AddNode => {
                    g.add_node();
                }
                Op::AddEdge(label, raw_att) => {
                    let alive: Vec<u32> = g.node_ids().collect();
                    if alive.is_empty() {
                        continue;
                    }
                    let mut att: Vec<u32> = raw_att
                        .iter()
                        .map(|&x| alive[x as usize % alive.len()])
                        .collect();
                    att.dedup();
                    att.sort_unstable();
                    att.dedup();
                    if !att.is_empty() {
                        g.add_edge(EdgeLabel::Terminal(label as u32 % 4), &att);
                    }
                }
                Op::RemoveEdge(pick) => {
                    let edges: Vec<u32> = g.edges().map(|e| e.id).collect();
                    if !edges.is_empty() {
                        g.remove_edge(edges[pick as usize % edges.len()]);
                    }
                }
                Op::RemoveIsolatedNode(pick) => {
                    let isolated: Vec<u32> =
                        g.node_ids().filter(|&v| g.degree(v) == 0).collect();
                    if !isolated.is_empty() {
                        g.remove_node(isolated[pick as usize % isolated.len()]);
                    }
                }
            }
            g.validate().unwrap();
        }
    }

    #[test]
    fn text_round_trip(ops in arb_ops()) {
        let mut g = Hypergraph::with_nodes(3);
        for op in ops {
            if let Op::AddEdge(label, raw_att) = op {
                let alive: Vec<u32> = g.node_ids().collect();
                let mut att: Vec<u32> = raw_att
                    .iter()
                    .map(|&x| alive[x as usize % alive.len()])
                    .collect();
                att.sort_unstable();
                att.dedup();
                if !att.is_empty() {
                    g.add_edge(EdgeLabel::Terminal(label as u32 % 4), &att);
                }
            }
        }
        let text = write_hypergraph(&g);
        let back = parse_hypergraph(&text).unwrap();
        prop_assert_eq!(back.edge_multiset(), g.edge_multiset());
        prop_assert_eq!(back.num_nodes(), g.num_nodes());
    }

    #[test]
    fn every_order_is_a_permutation_of_alive_nodes(
        edges in proptest::collection::vec((0u32..30, 0u32..3, 0u32..30), 0..80),
        seed in any::<u64>(),
    ) {
        let (g, _) = Hypergraph::from_simple_edges(30, edges);
        for order in [
            NodeOrder::Natural,
            NodeOrder::Random(seed),
            NodeOrder::Bfs,
            NodeOrder::Fp0,
            NodeOrder::Fp,
        ] {
            let seq = compute_order(&g, order);
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            let expected: Vec<u32> = g.node_ids().collect();
            prop_assert_eq!(sorted, expected, "{}", order);
        }
    }

    #[test]
    fn fp_is_isomorphism_invariant_on_shifted_copies(
        edges in proptest::collection::vec((0u32..12, 0u32..2, 0u32..12), 1..40),
    ) {
        // colors(v) in copy 1 must equal colors(v + offset) in copy 2.
        let n = 12u32;
        let mut triples: Vec<(u32, u32, u32)> = edges.clone();
        triples.extend(edges.iter().map(|&(s, l, t)| (s + n, l, t + n)));
        let (g, _) = Hypergraph::from_simple_edges(2 * n as usize, triples);
        let fp = fp_refine(&g, FpConfig::default());
        for v in 0..n {
            prop_assert_eq!(fp.colors[v as usize], fp.colors[(v + n) as usize], "node {}", v);
        }
    }

    #[test]
    fn fp_refines_degree_partition(
        edges in proptest::collection::vec((0u32..25, 0u32..2, 0u32..25), 0..70),
    ) {
        // Nodes in the same FP class must have equal degree.
        let (g, _) = Hypergraph::from_simple_edges(25, edges);
        let fp = fp_refine(&g, FpConfig::default());
        let mut by_class: std::collections::HashMap<u32, usize> = Default::default();
        for v in g.node_ids() {
            let class = fp.colors[v as usize];
            let deg = g.degree(v);
            match by_class.entry(class) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(deg);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    prop_assert_eq!(*e.get(), deg, "class {}", class);
                }
            }
        }
    }
}
