//! Traversals and decompositions: BFS, connected components (union-find),
//! and Tarjan's strongly connected components (used by the skeleton-graph
//! construction of Theorem 6).

use crate::graph::{Hypergraph, NodeId};

/// Breadth-first visit order over the undirected view of the graph
/// (a hyperedge connects all its attached nodes). Components are entered in
/// natural order of their smallest node ID, which makes the order
/// deterministic.
pub fn bfs_order(g: &Hypergraph) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(g.num_nodes());
    let mut seen = vec![false; g.node_bound()];
    let mut queue = std::collections::VecDeque::new();
    for start in g.node_ids() {
        if seen[start as usize] {
            continue;
        }
        seen[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for e in g.incident(v) {
                for &u in g.att(e) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        queue.push_back(u);
                    }
                }
            }
        }
    }
    order
}

/// Disjoint-set forest with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets (over the full universe `0..n`).
    pub fn component_count(&self) -> usize {
        self.components
    }
}

/// Connected components over the undirected view.
///
/// Returns `(component_id per node slot, number of components)`; dead node
/// slots get `u32::MAX`. Component IDs are dense and ordered by smallest
/// member.
pub fn connected_components(g: &Hypergraph) -> (Vec<u32>, usize) {
    let n = g.node_bound();
    let mut uf = UnionFind::new(n);
    for e in g.edges() {
        for w in e.att.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    let mut ids = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut rep_to_id = vec![u32::MAX; n];
    for v in g.node_ids() {
        let r = uf.find(v) as usize;
        if rep_to_id[r] == u32::MAX {
            rep_to_id[r] = next;
            next += 1;
        }
        ids[v as usize] = rep_to_id[r];
    }
    (ids, next as usize)
}

/// Tarjan's SCC over the **directed rank-2 edges** of `g` (hyperedges are
/// ignored; callers replace them with rank-2 skeleton edges first).
///
/// Returns `(scc_id per node slot, number of SCCs)`; SCC IDs are in reverse
/// topological order (an edge u→v implies `scc[u] >= scc[v]`), which is the
/// order Tarjan emits and exactly what bottom-up reachability wants. Dead
/// node slots get `u32::MAX`.
pub fn tarjan_scc(g: &Hypergraph) -> (Vec<u32>, usize) {
    let n = g.node_bound();
    let mut index = vec![u32::MAX; n]; // discovery index
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc = vec![u32::MAX; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut next_scc = 0u32;

    // Iterative Tarjan: explicit DFS frames (node, out-neighbor iterator state).
    struct Frame {
        v: NodeId,
        outs: Vec<NodeId>,
        next: usize,
    }

    for root in g.node_ids() {
        if index[root as usize] != u32::MAX {
            continue;
        }
        let mut frames = vec![Frame { v: root, outs: g.out_neighbors(root).collect(), next: 0 }];
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(frame) = frames.last_mut() {
            if frame.next < frame.outs.len() {
                let w = frame.outs[frame.next];
                frame.next += 1;
                if index[w as usize] == u32::MAX {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push(Frame { v: w, outs: g.out_neighbors(w).collect(), next: 0 });
                } else if on_stack[w as usize] {
                    let v = frame.v;
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                let v = frame.v;
                if low[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w as usize] = false;
                        scc[w as usize] = next_scc;
                        if w == v {
                            break;
                        }
                    }
                    next_scc += 1;
                }
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.v;
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
            }
        }
    }
    (scc, next_scc as usize)
}

/// Plain BFS reachability on the directed rank-2 view: is `t` reachable
/// from `s`? The uncompressed baseline for Theorem 6's algorithm.
pub fn reachable(g: &Hypergraph, s: NodeId, t: NodeId) -> bool {
    if s == t {
        return true;
    }
    let mut seen = vec![false; g.node_bound()];
    seen[s as usize] = true;
    let mut queue = std::collections::VecDeque::from([s]);
    while let Some(v) = queue.pop_front() {
        for u in g.out_neighbors(v) {
            if u == t {
                return true;
            }
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Hypergraph;
    use crate::label::EdgeLabel;

    fn simple(n: usize, edges: &[(u32, u32)]) -> Hypergraph {
        let (g, dropped) =
            Hypergraph::from_simple_edges(n, edges.iter().map(|&(s, t)| (s, 0, t)));
        assert_eq!(dropped, 0);
        g
    }

    #[test]
    fn bfs_visits_each_alive_node_once() {
        let g = simple(6, &[(0, 1), (1, 2), (3, 4)]);
        let order = bfs_order(&g);
        assert_eq!(order.len(), 6);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
        // Component of 0 comes first, then 3's component, then isolated 5.
        assert_eq!(order[0], 0);
        assert!(order.iter().position(|&v| v == 3).unwrap() > order.iter().position(|&v| v == 2).unwrap());
    }

    #[test]
    fn bfs_layers_before_depth() {
        // star: 0 -> 1,2,3 ; 1 -> 4
        let g = simple(5, &[(0, 1), (0, 2), (0, 3), (1, 4)]);
        let order = bfs_order(&g);
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(4) > pos(2) && pos(4) > pos(3));
    }

    #[test]
    fn components_counts_hyperedges_as_cliques() {
        let mut g = Hypergraph::with_nodes(5);
        g.add_edge(EdgeLabel::Nonterminal(0), &[0, 1, 2]);
        g.add_edge(EdgeLabel::Terminal(0), &[3, 4]);
        let (ids, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[3]);
    }

    #[test]
    fn components_isolated_nodes() {
        let g = Hypergraph::with_nodes(3);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 3);
    }

    #[test]
    fn scc_cycle_and_tail() {
        // 0 -> 1 -> 2 -> 0 (one SCC), 2 -> 3 (singleton)
        let g = simple(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let (scc, count) = tarjan_scc(&g);
        assert_eq!(count, 2);
        assert_eq!(scc[0], scc[1]);
        assert_eq!(scc[1], scc[2]);
        assert_ne!(scc[0], scc[3]);
        // Reverse topological: the sink {3} is emitted first.
        assert!(scc[3] < scc[0]);
    }

    #[test]
    fn scc_dag_is_all_singletons() {
        let g = simple(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (_, count) = tarjan_scc(&g);
        assert_eq!(count, 4);
    }

    #[test]
    fn scc_two_cycles_bridge() {
        let g = simple(6, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let (scc, count) = tarjan_scc(&g);
        assert_eq!(count, 3); // {0,1}, {2,3,4}, {5}
        assert_eq!(scc[0], scc[1]);
        assert_eq!(scc[2], scc[3]);
        assert_eq!(scc[3], scc[4]);
    }

    #[test]
    fn scc_deep_path_no_stack_overflow() {
        let edges: Vec<(u32, u32)> = (0..200_000u32).map(|i| (i, i + 1)).collect();
        let g = simple(200_001, &edges);
        let (_, count) = tarjan_scc(&g);
        assert_eq!(count, 200_001);
    }

    #[test]
    fn reachability_matches_intuition() {
        let g = simple(5, &[(0, 1), (1, 2), (3, 2)]);
        assert!(reachable(&g, 0, 2));
        assert!(!reachable(&g, 2, 0));
        assert!(!reachable(&g, 0, 3));
        assert!(reachable(&g, 4, 4));
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.find(0), uf.find(1));
    }
}
