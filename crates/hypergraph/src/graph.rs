//! The hypergraph data structure.

use crate::label::EdgeLabel;

/// Node identifier. Nodes are dense `0..n` at construction; removal leaves
/// tombstones so IDs stay stable throughout compression.
pub type NodeId = u32;

/// Edge identifier. Edge IDs are never reused, so a stale ID in an auxiliary
/// index can always be detected via [`Hypergraph::edge_alive`].
pub type EdgeId = u32;

/// Attachment list of an edge. Rank-2 edges (the overwhelming majority in
/// every dataset) are stored inline; hyperedges spill to a boxed slice.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Att {
    Two([NodeId; 2]),
    Many(Box<[NodeId]>),
}

impl Att {
    fn as_slice(&self) -> &[NodeId] {
        match self {
            Att::Two(pair) => pair,
            Att::Many(nodes) => nodes,
        }
    }
}

#[derive(Debug, Clone)]
struct Edge {
    label: EdgeLabel,
    att: Att,
}

/// Borrowed view of one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef<'a> {
    /// The edge's ID.
    pub id: EdgeId,
    /// The edge's label.
    pub label: EdgeLabel,
    /// Attached nodes in order (`[source, target]` for rank-2 edges).
    pub att: &'a [NodeId],
}

impl EdgeRef<'_> {
    /// `rank(e) = |att(e)|` (§II).
    pub fn rank(&self) -> usize {
        self.att.len()
    }
}

/// A directed edge-labeled hypergraph with external nodes (§II).
///
/// Invariants (checked by [`Hypergraph::validate`], and in debug builds on
/// every mutation):
/// * every attachment list references alive nodes and contains no node twice
///   (paper restriction (1)),
/// * the external sequence contains no node twice (restriction (2)) and only
///   alive nodes,
/// * `degree(v)` equals the number of alive edges incident with `v`.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    edges: Vec<Option<Edge>>,
    node_alive: Vec<bool>,
    alive_nodes: usize,
    alive_edges: usize,
    /// Incident edge IDs per node; may contain stale (dead-edge) entries,
    /// compacted lazily when the stale fraction grows.
    incidence: Vec<Vec<EdgeId>>,
    degree: Vec<u32>,
    ext: Vec<NodeId>,
}

impl Hypergraph {
    /// Empty hypergraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hypergraph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            edges: Vec::new(),
            node_alive: vec![true; n],
            alive_nodes: n,
            alive_edges: 0,
            incidence: vec![Vec::new(); n],
            degree: vec![0; n],
            ext: Vec::new(),
        }
    }

    /// Build a simple directed graph from `(source, label, target)` triples.
    ///
    /// Self-loops and duplicate `(source, label, target)` triples are dropped
    /// (paper restrictions: attachments contain no node twice; simple graphs
    /// have no parallel equal-labeled edges); the number dropped is returned.
    pub fn from_simple_edges(
        n: usize,
        triples: impl IntoIterator<Item = (NodeId, u32, NodeId)>,
    ) -> (Self, usize) {
        let mut g = Self::with_nodes(n);
        let mut seen = grepair_util::FxHashSet::default();
        let mut dropped = 0usize;
        for (s, label, t) in triples {
            if s == t || !seen.insert((s, label, t)) {
                dropped += 1;
                continue;
            }
            g.add_edge(EdgeLabel::Terminal(label), &[s, t]);
        }
        (g, dropped)
    }

    // ------------------------------------------------------------------
    // Nodes
    // ------------------------------------------------------------------

    /// Add a fresh node; returns its ID.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.node_alive.len() as NodeId;
        self.node_alive.push(true);
        self.incidence.push(Vec::new());
        self.degree.push(0);
        self.alive_nodes += 1;
        id
    }

    /// Remove a node with no incident edges.
    ///
    /// # Panics
    /// If the node is dead or still has incident edges.
    pub fn remove_node(&mut self, v: NodeId) {
        assert!(self.node_alive[v as usize], "node {v} already removed");
        assert_eq!(self.degree[v as usize], 0, "node {v} still has incident edges");
        self.node_alive[v as usize] = false;
        self.incidence[v as usize] = Vec::new();
        self.alive_nodes -= 1;
    }

    /// Is node `v` alive?
    pub fn node_is_alive(&self, v: NodeId) -> bool {
        (v as usize) < self.node_alive.len() && self.node_alive[v as usize]
    }

    /// Number of alive nodes, `|g|V` (§II).
    pub fn num_nodes(&self) -> usize {
        self.alive_nodes
    }

    /// Upper bound on node IDs (`0..node_bound()` covers all IDs ever used).
    pub fn node_bound(&self) -> usize {
        self.node_alive.len()
    }

    /// Iterate over alive node IDs in increasing order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_alive.len() as NodeId).filter(move |&v| self.node_alive[v as usize])
    }

    /// Number of alive edges incident with `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.degree[v as usize] as usize
    }

    // ------------------------------------------------------------------
    // Edges
    // ------------------------------------------------------------------

    /// Add an edge labeled `label` attached to `att` (in order).
    ///
    /// # Panics
    /// In debug builds, if `att` repeats a node or references a dead node.
    pub fn add_edge(&mut self, label: EdgeLabel, att: &[NodeId]) -> EdgeId {
        debug_assert!(
            att.iter().all(|&v| self.node_is_alive(v)),
            "attachment references a dead node"
        );
        debug_assert!(
            (1..att.len()).all(|i| !att[..i].contains(&att[i])),
            "attachment contains a node twice (paper restriction 1)"
        );
        let id = self.edges.len() as EdgeId;
        let stored = if att.len() == 2 {
            Att::Two([att[0], att[1]])
        } else {
            Att::Many(att.into())
        };
        self.edges.push(Some(Edge { label, att: stored }));
        for &v in att {
            self.incidence[v as usize].push(id);
            self.degree[v as usize] += 1;
        }
        self.alive_edges += 1;
        id
    }

    /// Remove edge `e`.
    ///
    /// # Panics
    /// If `e` is already dead.
    pub fn remove_edge(&mut self, e: EdgeId) {
        let edge = self.edges[e as usize].take().expect("edge already removed");
        self.alive_edges -= 1;
        for &v in edge.att.as_slice() {
            self.degree[v as usize] -= 1;
            let list = &mut self.incidence[v as usize];
            // Lazy compaction: rebuild once over half the list is stale.
            if list.len() > 8 && list.len() > 2 * self.degree[v as usize] as usize {
                let edges = &self.edges;
                list.retain(|&id| edges[id as usize].is_some());
            }
        }
    }

    /// Is edge `e` alive?
    pub fn edge_alive(&self, e: EdgeId) -> bool {
        (e as usize) < self.edges.len() && self.edges[e as usize].is_some()
    }

    /// Number of alive edges.
    pub fn num_edges(&self) -> usize {
        self.alive_edges
    }

    /// Upper bound on edge IDs.
    pub fn edge_bound(&self) -> usize {
        self.edges.len()
    }

    /// Borrow edge `e`.
    ///
    /// # Panics
    /// If `e` is dead.
    pub fn edge(&self, e: EdgeId) -> EdgeRef<'_> {
        let edge = self.edges[e as usize].as_ref().expect("dead edge");
        EdgeRef { id: e, label: edge.label, att: edge.att.as_slice() }
    }

    /// Label of edge `e`. Panics if dead.
    pub fn label(&self, e: EdgeId) -> EdgeLabel {
        self.edges[e as usize].as_ref().expect("dead edge").label
    }

    /// Attachment of edge `e`. Panics if dead.
    pub fn att(&self, e: EdgeId) -> &[NodeId] {
        self.edges[e as usize].as_ref().expect("dead edge").att.as_slice()
    }

    /// Relabel edge `e` in place (attachment and edge ID are unchanged —
    /// used by grammar renumbering, which must not disturb edge identities).
    pub fn set_label(&mut self, e: EdgeId, label: EdgeLabel) {
        self.edges[e as usize].as_mut().expect("dead edge").label = label;
    }

    /// Iterate over alive edges in ID order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_>> {
        self.edges.iter().enumerate().filter_map(|(id, slot)| {
            slot.as_ref().map(|e| EdgeRef {
                id: id as EdgeId,
                label: e.label,
                att: e.att.as_slice(),
            })
        })
    }

    /// Iterate over the IDs of alive edges incident with `v`.
    pub fn incident(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.incidence[v as usize]
            .iter()
            .copied()
            .filter(move |&e| self.edges[e as usize].is_some())
    }

    /// Nodes adjacent to `v` through any edge (each neighbor may repeat).
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.incident(v)
            .flat_map(move |e| self.att(e).iter().copied())
            .filter(move |&u| u != v)
    }

    /// Out-neighbors of `v` through rank-2 edges (`att = [v, u]`).
    pub fn out_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.incident(v).filter_map(move |e| {
            let att = self.att(e);
            (att.len() == 2 && att[0] == v).then(|| att[1])
        })
    }

    /// In-neighbors of `v` through rank-2 edges (`att = [u, v]`).
    pub fn in_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.incident(v).filter_map(move |e| {
            let att = self.att(e);
            (att.len() == 2 && att[1] == v).then(|| att[0])
        })
    }

    // ------------------------------------------------------------------
    // External nodes
    // ------------------------------------------------------------------

    /// The external node sequence.
    pub fn ext(&self) -> &[NodeId] {
        &self.ext
    }

    /// Set the external node sequence (must be distinct alive nodes).
    pub fn set_ext(&mut self, ext: Vec<NodeId>) {
        debug_assert!(ext.iter().all(|&v| self.node_is_alive(v)));
        debug_assert!((1..ext.len()).all(|i| !ext[..i].contains(&ext[i])));
        self.ext = ext;
    }

    /// `rank(g) = |ext(g)|` (§II).
    pub fn rank(&self) -> usize {
        self.ext.len()
    }

    /// Is `v` an external node of this graph?
    pub fn is_external(&self, v: NodeId) -> bool {
        self.ext.contains(&v)
    }

    // ------------------------------------------------------------------
    // Sizes (§II)
    // ------------------------------------------------------------------

    /// `|g|V`: number of nodes.
    pub fn node_size(&self) -> usize {
        self.alive_nodes
    }

    /// `|g|E`: rank-≤2 edges count 1, hyperedges count their rank.
    pub fn edge_size(&self) -> usize {
        self.edges()
            .map(|e| if e.rank() <= 2 { 1 } else { e.rank() })
            .sum()
    }

    /// `|g| = |g|V + |g|E`.
    pub fn total_size(&self) -> usize {
        self.node_size() + self.edge_size()
    }

    // ------------------------------------------------------------------
    // Testing / verification helpers
    // ------------------------------------------------------------------

    /// Sorted multiset of `(label, attachment)` pairs; two graphs over the
    /// same node IDs are equal iff their multisets and alive-node sets match.
    pub fn edge_multiset(&self) -> Vec<(EdgeLabel, Vec<NodeId>)> {
        let mut v: Vec<_> = self.edges().map(|e| (e.label, e.att.to_vec())).collect();
        v.sort();
        v
    }

    /// Sorted multiset of `(label, attachment)` with node IDs renamed by `f`.
    pub fn edge_multiset_mapped(&self, f: impl Fn(NodeId) -> NodeId) -> Vec<(EdgeLabel, Vec<NodeId>)> {
        let mut v: Vec<_> = self
            .edges()
            .map(|e| (e.label, e.att.iter().map(|&x| f(x)).collect::<Vec<_>>()))
            .collect();
        v.sort();
        v
    }

    /// Check all structural invariants; returns a description of the first
    /// violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        let mut degree = vec![0u32; self.node_alive.len()];
        let mut alive_edges = 0usize;
        for (id, slot) in self.edges.iter().enumerate() {
            let Some(edge) = slot else { continue };
            alive_edges += 1;
            let att = edge.att.as_slice();
            for (i, &v) in att.iter().enumerate() {
                if !self.node_is_alive(v) {
                    return Err(format!("edge {id} attached to dead node {v}"));
                }
                if att[..i].contains(&v) {
                    return Err(format!("edge {id} attaches node {v} twice"));
                }
                degree[v as usize] += 1;
                if !self.incidence[v as usize].contains(&(id as EdgeId)) {
                    return Err(format!("edge {id} missing from incidence of node {v}"));
                }
            }
        }
        if alive_edges != self.alive_edges {
            return Err(format!(
                "edge count mismatch: counted {alive_edges}, cached {}",
                self.alive_edges
            ));
        }
        if degree != self.degree {
            return Err("cached degree out of sync".into());
        }
        let alive_nodes = self.node_alive.iter().filter(|&&a| a).count();
        if alive_nodes != self.alive_nodes {
            return Err("node count mismatch".into());
        }
        for (i, &v) in self.ext.iter().enumerate() {
            if !self.node_is_alive(v) {
                return Err(format!("external node {v} is dead"));
            }
            if self.ext[..i].contains(&v) {
                return Err(format!("external node {v} repeated"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hypergraph of Fig. 1d: V = {1,2,3} (0-based: {0,1,2}),
    /// e1 = a(0,1), e2 = b(1,2), e3 = A(1,0,2).
    fn fig1d() -> Hypergraph {
        let mut g = Hypergraph::with_nodes(3);
        g.add_edge(EdgeLabel::Terminal(0), &[0, 1]);
        g.add_edge(EdgeLabel::Terminal(1), &[1, 2]);
        g.add_edge(EdgeLabel::Nonterminal(0), &[1, 0, 2]);
        g
    }

    #[test]
    fn fig1d_structure() {
        let g = fig1d();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.att(2), &[1, 0, 2]);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(2), 2);
        g.validate().unwrap();
    }

    #[test]
    fn sizes_follow_section_2() {
        // |g|V = 3; |g|E = 1 + 1 + 3 (two simple edges + one rank-3 hyperedge)
        let g = fig1d();
        assert_eq!(g.node_size(), 3);
        assert_eq!(g.edge_size(), 5);
        assert_eq!(g.total_size(), 8);
    }

    #[test]
    fn remove_edge_and_node() {
        let mut g = fig1d();
        g.remove_edge(2);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.edge_alive(2));
        assert_eq!(g.degree(0), 1);
        g.remove_edge(0);
        assert_eq!(g.degree(0), 0);
        g.remove_node(0);
        assert_eq!(g.num_nodes(), 2);
        assert!(!g.node_is_alive(0));
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "still has incident edges")]
    fn remove_node_with_edges_panics() {
        let mut g = fig1d();
        g.remove_node(1);
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_remove_edge_panics() {
        let mut g = fig1d();
        g.remove_edge(0);
        g.remove_edge(0);
    }

    #[test]
    fn incidence_survives_heavy_churn() {
        let mut g = Hypergraph::with_nodes(2);
        let mut last = None;
        for i in 0..1000 {
            let e = g.add_edge(EdgeLabel::Terminal(i % 7), &[0, 1]);
            if let Some(prev) = last {
                g.remove_edge(prev);
            }
            last = Some(e);
        }
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.incident(0).count(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn from_simple_edges_drops_loops_and_dupes() {
        let (g, dropped) =
            Hypergraph::from_simple_edges(3, vec![(0, 0, 1), (0, 0, 1), (1, 0, 1), (1, 0, 2)]);
        assert_eq!(dropped, 2); // one duplicate + one self-loop
        assert_eq!(g.num_edges(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn directed_neighbors() {
        let (g, _) = Hypergraph::from_simple_edges(3, vec![(0, 0, 1), (2, 0, 1), (1, 1, 2)]);
        let outs: Vec<_> = g.out_neighbors(1).collect();
        let ins: Vec<_> = g.in_neighbors(1).collect();
        assert_eq!(outs, vec![2]);
        let mut ins = ins;
        ins.sort();
        assert_eq!(ins, vec![0, 2]);
    }

    #[test]
    fn ext_rank_and_membership() {
        let mut g = fig1d();
        g.set_ext(vec![2, 0]);
        assert_eq!(g.rank(), 2);
        assert!(g.is_external(0));
        assert!(!g.is_external(1));
        g.validate().unwrap();
    }

    #[test]
    fn edge_multiset_is_order_insensitive() {
        let mut a = Hypergraph::with_nodes(2);
        a.add_edge(EdgeLabel::Terminal(1), &[0, 1]);
        a.add_edge(EdgeLabel::Terminal(0), &[1, 0]);
        let mut b = Hypergraph::with_nodes(2);
        b.add_edge(EdgeLabel::Terminal(0), &[1, 0]);
        b.add_edge(EdgeLabel::Terminal(1), &[0, 1]);
        assert_eq!(a.edge_multiset(), b.edge_multiset());
    }
}
