//! Directed, edge-labeled hypergraphs (§II of Maneth & Peternek, ICDE 2016).
//!
//! A hypergraph is `(V, E, att, lab, ext)`: nodes, edges, an attachment map
//! `att : E → V*` (no node twice per edge), a label map, and a sequence of
//! external nodes. Rank-2 edges are ordinary directed edges
//! (`att = [source, target]`). The paper's node/edge/total **sizes** (|g|V,
//! |g|E, |g|) are implemented exactly as defined: edges of rank ≤ 2 cost 1,
//! hyperedges cost their rank.
//!
//! The crate also provides the graph analyses the compressor and the
//! evaluation need:
//!
//! * [`traverse`] — BFS, connected components (hyperedges connect all their
//!   attached nodes), Tarjan SCC,
//! * [`order`] — the node orders of §III-B1 (Natural, Random, BFS, FP0, FP)
//!   and the ≅FP equivalence-class count reported in Tables I–III,
//! * [`io`] — a plain-text edge-list format for graphs and triples.

#![forbid(unsafe_code)]

pub mod graph;
pub mod io;
pub mod label;
pub mod order;
pub mod traverse;

pub use graph::{EdgeId, EdgeRef, Hypergraph, NodeId};
pub use label::EdgeLabel;
