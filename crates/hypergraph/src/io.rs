//! Plain-text graph formats.
//!
//! Two readers cover the shapes the paper's datasets come in:
//!
//! * [`parse_pairs`] — SNAP-style edge lists: one `source target` pair per
//!   line, `#` comments, arbitrary (sparse) node identifiers that get
//!   remapped to dense IDs. All edges get terminal label 0.
//! * [`parse_triples`] — integer-mapped RDF: `subject predicate object`
//!   lines; predicates become edge labels.
//!
//! [`write_hypergraph`] / [`parse_hypergraph`] round-trip the full hypergraph
//! model (hyperedges, nonterminal labels, external nodes) for debugging and
//! golden tests.

use crate::graph::{Hypergraph, NodeId};
use crate::label::EdgeLabel;
use grepair_util::FxHashMap;

/// Errors from the text parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parse a SNAP-style `source target` edge list. Node identifiers are
/// remapped to dense IDs in first-seen order; the mapping is returned.
/// Returns the graph, the original→dense mapping, and the number of dropped
/// edges (self-loops / duplicates).
pub fn parse_pairs(text: &str) -> Result<(Hypergraph, Vec<u64>, usize), ParseError> {
    let mut remap: FxHashMap<u64, NodeId> = FxHashMap::default();
    let mut originals: Vec<u64> = Vec::new();
    let mut triples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let s: u64 = it
            .next()
            .ok_or_else(|| err(i + 1, "missing source"))?
            .parse()
            .map_err(|e| err(i + 1, format!("bad source: {e}")))?;
        let t: u64 = it
            .next()
            .ok_or_else(|| err(i + 1, "missing target"))?
            .parse()
            .map_err(|e| err(i + 1, format!("bad target: {e}")))?;
        if it.next().is_some() {
            return Err(err(i + 1, "expected exactly two columns"));
        }
        let mut id_of = |x: u64| {
            *remap.entry(x).or_insert_with(|| {
                originals.push(x);
                (originals.len() - 1) as NodeId
            })
        };
        let (s, t) = (id_of(s), id_of(t));
        triples.push((s, 0u32, t));
    }
    let (g, dropped) = Hypergraph::from_simple_edges(originals.len(), triples);
    Ok((g, originals, dropped))
}

/// Parse integer-mapped RDF triples `subject predicate object`. Subjects and
/// objects share one node namespace; predicates become terminal labels,
/// remapped densely in first-seen order.
pub fn parse_triples(text: &str) -> Result<(Hypergraph, Vec<u64>, usize), ParseError> {
    let mut node_remap: FxHashMap<u64, NodeId> = FxHashMap::default();
    let mut originals: Vec<u64> = Vec::new();
    let mut label_remap: FxHashMap<u64, u32> = FxHashMap::default();
    let mut triples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split_whitespace().collect();
        if cols.len() != 3 {
            return Err(err(i + 1, format!("expected 3 columns, got {}", cols.len())));
        }
        let parse = |s: &str| s.parse::<u64>().map_err(|e| err(i + 1, format!("bad number: {e}")));
        let (s, p, o) = (parse(cols[0])?, parse(cols[1])?, parse(cols[2])?);
        let mut id_of = |x: u64| {
            *node_remap.entry(x).or_insert_with(|| {
                originals.push(x);
                (originals.len() - 1) as NodeId
            })
        };
        let (s, o) = (id_of(s), id_of(o));
        let next_label = label_remap.len() as u32;
        let p = *label_remap.entry(p).or_insert(next_label);
        triples.push((s, p, o));
    }
    let (g, dropped) = Hypergraph::from_simple_edges(originals.len(), triples);
    Ok((g, originals, dropped))
}

/// Serialize the full hypergraph model to text:
///
/// ```text
/// nodes <n>
/// e t<label>|N<label> <v1> <v2> ...
/// ext <v1> <v2> ...
/// ```
///
/// Dead node slots are preserved via a `dead <v>` line each, so IDs
/// round-trip exactly.
pub fn write_hypergraph(g: &Hypergraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("nodes {}\n", g.node_bound()));
    for v in 0..g.node_bound() as NodeId {
        if !g.node_is_alive(v) {
            out.push_str(&format!("dead {v}\n"));
        }
    }
    for e in g.edges() {
        out.push_str(&format!("e {}", e.label));
        for &v in e.att {
            out.push_str(&format!(" {v}"));
        }
        out.push('\n');
    }
    if !g.ext().is_empty() {
        out.push_str("ext");
        for &v in g.ext() {
            out.push_str(&format!(" {v}"));
        }
        out.push('\n');
    }
    out
}

/// Parse the format written by [`write_hypergraph`].
pub fn parse_hypergraph(text: &str) -> Result<Hypergraph, ParseError> {
    let mut g = Hypergraph::new();
    let mut dead: Vec<NodeId> = Vec::new();
    let mut started = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next().unwrap() {
            "nodes" => {
                let n: usize = it
                    .next()
                    .ok_or_else(|| err(i + 1, "missing node count"))?
                    .parse()
                    .map_err(|e| err(i + 1, format!("bad node count: {e}")))?;
                g = Hypergraph::with_nodes(n);
                started = true;
            }
            "dead" => {
                let v: NodeId = it
                    .next()
                    .ok_or_else(|| err(i + 1, "missing node"))?
                    .parse()
                    .map_err(|e| err(i + 1, format!("bad node: {e}")))?;
                dead.push(v);
            }
            "e" => {
                if !started {
                    return Err(err(i + 1, "edge before nodes line"));
                }
                let label_tok = it.next().ok_or_else(|| err(i + 1, "missing label"))?;
                let label = parse_label(label_tok).ok_or_else(|| {
                    err(i + 1, format!("bad label {label_tok:?} (want t<i> or N<i>)"))
                })?;
                let att: Vec<NodeId> = it
                    .map(|tok| tok.parse().map_err(|e| err(i + 1, format!("bad node: {e}"))))
                    .collect::<Result<_, _>>()?;
                if att.is_empty() {
                    return Err(err(i + 1, "edge with no attached nodes"));
                }
                g.add_edge(label, &att);
            }
            "ext" => {
                let ext: Vec<NodeId> = it
                    .map(|tok| tok.parse().map_err(|e| err(i + 1, format!("bad node: {e}"))))
                    .collect::<Result<_, _>>()?;
                g.set_ext(ext);
            }
            other => return Err(err(i + 1, format!("unknown directive {other:?}"))),
        }
    }
    for v in dead {
        g.remove_node(v);
    }
    Ok(g)
}

fn parse_label(tok: &str) -> Option<EdgeLabel> {
    let (kind, rest) = tok.split_at(1);
    let idx: u32 = rest.parse().ok()?;
    match kind {
        "t" => Some(EdgeLabel::Terminal(idx)),
        "N" => Some(EdgeLabel::Nonterminal(idx)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_basic() {
        let (g, originals, dropped) = parse_pairs("# web graph\n10 20\n20 30\n10 20\n").unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(dropped, 1);
        assert_eq!(originals, vec![10, 20, 30]);
    }

    #[test]
    fn pairs_reject_garbage() {
        assert!(parse_pairs("1 2 3\n").is_err());
        assert!(parse_pairs("x y\n").is_err());
        assert!(parse_pairs("1\n").is_err());
    }

    #[test]
    fn triples_remap_labels() {
        let (g, _, _) = parse_triples("1 100 2\n2 100 3\n1 7 3\n").unwrap();
        assert_eq!(g.num_edges(), 3);
        let labels: std::collections::BTreeSet<_> =
            g.edges().map(|e| e.label).collect();
        assert_eq!(labels.len(), 2); // predicates 100 and 7 → t0, t1
    }

    #[test]
    fn hypergraph_round_trip() {
        let mut g = Hypergraph::with_nodes(4);
        g.add_edge(EdgeLabel::Terminal(0), &[0, 1]);
        g.add_edge(EdgeLabel::Nonterminal(2), &[2, 0, 3]);
        g.set_ext(vec![3, 1]);
        let text = write_hypergraph(&g);
        let h = parse_hypergraph(&text).unwrap();
        assert_eq!(h.num_nodes(), 4);
        assert_eq!(h.edge_multiset(), g.edge_multiset());
        assert_eq!(h.ext(), g.ext());
    }

    #[test]
    fn dead_nodes_round_trip() {
        let mut g = Hypergraph::with_nodes(3);
        g.add_edge(EdgeLabel::Terminal(0), &[0, 2]);
        g.remove_node(1);
        let text = write_hypergraph(&g);
        let h = parse_hypergraph(&text).unwrap();
        assert!(!h.node_is_alive(1));
        assert_eq!(h.num_nodes(), 2);
        assert_eq!(h.edge_multiset(), g.edge_multiset());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_hypergraph("nodes 2\ne q0 0 1\n").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
