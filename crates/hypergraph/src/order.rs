//! Node orders (§III-B1).
//!
//! The greedy occurrence counting of gRePair traverses the nodes in a fixed
//! order ω, which "strongly influences the digram counting". The paper
//! evaluates: the **natural** order (node IDs as given), a **random** order,
//! **BFS** order, **FP0** (order by node degree — the 0th step of the
//! fixpoint), and **FP** — a fixpoint computation on node neighborhoods
//! starting from the degrees (Fig. 8), i.e. color refinement / 1-WL.
//!
//! FP also induces the equivalence relation ≅FP (same final color); the
//! number of its classes is reported for every dataset (Tables I–III) and
//! correlates with compression (Fig. 11).

use crate::graph::{Hypergraph, NodeId};
use crate::traverse::bfs_order;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which node order the compressor follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOrder {
    /// Node IDs as given.
    Natural,
    /// Uniformly random permutation from the given seed.
    Random(u64),
    /// Breadth-first order (undirected view, components by smallest ID).
    Bfs,
    /// Degree order — the paper's FP0.
    Fp0,
    /// Fixpoint neighborhood refinement — the paper's FP.
    Fp,
}

impl std::fmt::Display for NodeOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeOrder::Natural => write!(f, "Natural"),
            NodeOrder::Random(_) => write!(f, "Random"),
            NodeOrder::Bfs => write!(f, "BFS"),
            NodeOrder::Fp0 => write!(f, "FP0"),
            NodeOrder::Fp => write!(f, "FP"),
        }
    }
}

/// Configuration for the FP refinement.
#[derive(Debug, Clone, Copy)]
pub struct FpConfig {
    /// Include edge direction (attachment positions) in neighbor signatures.
    /// The paper's base definition is for undirected graphs; this is its
    /// "straightforward extension" to directed graphs.
    pub use_direction: bool,
    /// Include edge labels in neighbor signatures (extension to labeled
    /// graphs).
    pub use_labels: bool,
    /// Safety cap on refinement rounds (the fixpoint is reached in at most
    /// `|V|` rounds; real graphs converge in a handful).
    pub max_rounds: usize,
}

impl Default for FpConfig {
    fn default() -> Self {
        Self { use_direction: true, use_labels: true, max_rounds: 64 }
    }
}

/// Result of the FP fixpoint computation.
#[derive(Debug, Clone)]
pub struct FpResult {
    /// Final color per node slot (dead slots get `u32::MAX`). Colors are
    /// canonical: they depend only on the structure, so isomorphic nodes in
    /// disjoint copies receive the same color.
    pub colors: Vec<u32>,
    /// `|[≅FP]|` — number of equivalence classes.
    pub num_classes: usize,
    /// Rounds until the fixpoint (0 = degrees already stable).
    pub rounds: usize,
}

/// Neighbor descriptor inside a refinement signature: (role, label, color).
///
/// `role` encodes the attachment positions of the node and its neighbor
/// within the shared edge (direction, generalized to hyperedges); `label`
/// encodes the edge label with terminals and nonterminals kept apart.
type Descriptor = (u16, u64, u32);

fn label_code(l: crate::label::EdgeLabel) -> u64 {
    match l {
        crate::label::EdgeLabel::Terminal(i) => 2 * i as u64,
        crate::label::EdgeLabel::Nonterminal(i) => 2 * i as u64 + 1,
    }
}

/// Run the FP fixpoint (Fig. 8): c0 = degree, then iterate
/// `c_{i+1}(v) =` lexicographic rank of `(c_i(v), sorted neighbor colors)`
/// until the partition stabilizes.
pub fn fp_refine(g: &Hypergraph, config: FpConfig) -> FpResult {
    let n = g.node_bound();
    let mut colors = vec![u32::MAX; n];

    // Round 0: colors = degrees, made dense via sorting (so colors are
    // lexicographic *positions*, exactly as the paper assigns c1..).
    let alive: Vec<NodeId> = g.node_ids().collect();
    let mut num_classes = assign_dense(
        &mut colors,
        alive.iter().map(|&v| (vec![(0u16, g.degree(v) as u64, 0u32)], v)),
    );

    let mut rounds = 0;
    while rounds < config.max_rounds {
        let signatures = alive.iter().map(|&v| {
            let mut desc: Vec<Descriptor> = Vec::with_capacity(g.degree(v));
            for e in g.incident(v) {
                let att = g.att(e);
                let label = if config.use_labels { label_code(g.label(e)) } else { 0 };
                let pos_v = att.iter().position(|&x| x == v).unwrap();
                for (pos_u, &u) in att.iter().enumerate() {
                    if u == v {
                        continue;
                    }
                    let role = if config.use_direction {
                        ((pos_v.min(255) as u16) << 8) | pos_u.min(255) as u16
                    } else {
                        0
                    };
                    desc.push((role, label, colors[u as usize]));
                }
            }
            desc.sort_unstable();
            // Prepend the node's own color as the first component of f_i(v).
            desc.insert(0, (u16::MAX, u64::MAX, colors[v as usize]));
            (desc, v)
        });
        let mut next = vec![u32::MAX; n];
        let next_classes = assign_dense(&mut next, signatures);
        rounds += 1;
        let stable = next_classes == num_classes;
        colors = next;
        num_classes = next_classes;
        if stable {
            // Refinement can only split classes; equal counts ⇒ fixpoint.
            break;
        }
    }

    FpResult { colors, num_classes, rounds }
}

/// Sort signatures lexicographically and assign dense color = position of
/// the signature among the distinct ones. Returns the class count.
fn assign_dense(
    colors: &mut [u32],
    signatures: impl Iterator<Item = (Vec<Descriptor>, NodeId)>,
) -> usize {
    let mut sigs: Vec<(Vec<Descriptor>, NodeId)> = signatures.collect();
    sigs.sort_unstable();
    let mut current = 0u32;
    let mut prev: Option<&[Descriptor]> = None;
    for (sig, v) in &sigs {
        if let Some(p) = prev {
            if p != sig.as_slice() {
                current += 1;
            }
        }
        colors[*v as usize] = current;
        prev = Some(sig.as_slice());
    }
    if sigs.is_empty() {
        0
    } else {
        current as usize + 1
    }
}

/// `|[≅FP]|` with default config — the statistic of Tables I–III.
pub fn fp_class_count(g: &Hypergraph) -> usize {
    fp_refine(g, FpConfig::default()).num_classes
}

/// Compute the visit sequence for `order` over the alive nodes of `g`.
pub fn compute_order(g: &Hypergraph, order: NodeOrder) -> Vec<NodeId> {
    match order {
        NodeOrder::Natural => g.node_ids().collect(),
        NodeOrder::Random(seed) => {
            let mut nodes: Vec<NodeId> = g.node_ids().collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            nodes.shuffle(&mut rng);
            nodes
        }
        NodeOrder::Bfs => bfs_order(g),
        NodeOrder::Fp0 => {
            let mut nodes: Vec<NodeId> = g.node_ids().collect();
            nodes.sort_by_key(|&v| (g.degree(v), v));
            nodes
        }
        NodeOrder::Fp => {
            let fp = fp_refine(g, FpConfig::default());
            let mut nodes: Vec<NodeId> = g.node_ids().collect();
            nodes.sort_by_key(|&v| (fp.colors[v as usize], v));
            nodes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Hypergraph;

    /// The Fig. 8 graph: center c with leaf neighbors u, v and a degree-2
    /// neighbor w, which has another leaf x. Degrees: u=v=x=1(ish)...
    /// exact paper values: c0 = (1,1,3,2,1), fixpoint c1 = (2,2,4,3,1)
    /// with 1-based colors; we check the induced partition and order.
    fn fig8() -> (Hypergraph, [u32; 5]) {
        // nodes: 0=u, 1=v, 2=c, 3=w, 4=x
        let (g, _) = Hypergraph::from_simple_edges(
            5,
            vec![(0, 0, 2), (1, 0, 2), (2, 0, 3), (3, 0, 4)],
        );
        (g, [0, 1, 2, 3, 4])
    }

    #[test]
    fn fig8_fixpoint_partition() {
        let (g, [u, v, c, w, x]) = fig8();
        // Undirected, unlabeled — as in the paper's figure.
        let fp = fp_refine(
            &g,
            FpConfig { use_direction: false, use_labels: false, max_rounds: 64 },
        );
        assert_eq!(fp.num_classes, 4);
        // Paper: c1(x)=1, c1(u)=c1(v)=2, c1(w)=3, c1(c)=4 (1-based ranks).
        assert_eq!(fp.colors[u as usize], fp.colors[v as usize]);
        assert_eq!(fp.colors[x as usize], 0);
        assert_eq!(fp.colors[u as usize], 1);
        assert_eq!(fp.colors[w as usize], 2);
        assert_eq!(fp.colors[c as usize], 3);
    }

    #[test]
    fn fp_converges_on_regular_graph_to_one_class() {
        // Directed 6-cycle: every node looks the same.
        let edges: Vec<(u32, u32, u32)> = (0..6).map(|i| (i, 0, (i + 1) % 6)).collect();
        let (g, _) = Hypergraph::from_simple_edges(6, edges);
        let fp = fp_refine(&g, FpConfig::default());
        assert_eq!(fp.num_classes, 1);
    }

    #[test]
    fn fp_classes_match_across_disjoint_copies() {
        // Two disjoint copies of the same structure: corresponding nodes
        // must get identical colors (this is what makes FP work on version
        // graphs, §IV-C3).
        let mut triples = vec![(0u32, 0u32, 1u32), (1, 0, 2), (0, 1, 2)];
        let off = 3u32;
        triples.extend(vec![(off, 0, off + 1), (off + 1, 0, off + 2), (off, 1, off + 2)]);
        let (g, _) = Hypergraph::from_simple_edges(6, triples);
        let fp = fp_refine(&g, FpConfig::default());
        for i in 0..3usize {
            assert_eq!(fp.colors[i], fp.colors[i + 3], "copy mismatch at {i}");
        }
        assert_eq!(fp.num_classes, 3);
    }

    #[test]
    fn fp_direction_matters_when_enabled() {
        // Path 0 -> 1 -> 2: with direction, ends differ (source vs sink).
        let (g, _) = Hypergraph::from_simple_edges(3, vec![(0, 0, 1), (1, 0, 2)]);
        let with_dir = fp_refine(&g, FpConfig::default());
        assert_eq!(with_dir.num_classes, 3);
        let without = fp_refine(
            &g,
            FpConfig { use_direction: false, use_labels: false, max_rounds: 64 },
        );
        assert_eq!(without.num_classes, 2); // ends vs middle
    }

    #[test]
    fn fp_labels_matter_when_enabled() {
        // Star with two a-edges vs two b-edges out of distinct hubs.
        let (g, _) = Hypergraph::from_simple_edges(
            6,
            vec![(0, 0, 1), (0, 0, 2), (3, 1, 4), (3, 1, 5)],
        );
        let labeled = fp_refine(&g, FpConfig::default());
        let unlabeled = fp_refine(
            &g,
            FpConfig { use_direction: true, use_labels: false, max_rounds: 64 },
        );
        assert!(labeled.num_classes > unlabeled.num_classes);
    }

    #[test]
    fn all_orders_are_permutations() {
        let (g, _) = Hypergraph::from_simple_edges(
            8,
            vec![(0, 0, 1), (1, 0, 2), (2, 0, 3), (4, 0, 5), (6, 0, 7), (5, 0, 6)],
        );
        for order in [
            NodeOrder::Natural,
            NodeOrder::Random(7),
            NodeOrder::Bfs,
            NodeOrder::Fp0,
            NodeOrder::Fp,
        ] {
            let seq = compute_order(&g, order);
            let mut sorted = seq.clone();
            sorted.sort();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "{order}");
        }
    }

    #[test]
    fn random_orders_differ_by_seed_but_are_reproducible() {
        let (g, _) =
            Hypergraph::from_simple_edges(64, (0..63u32).map(|i| (i, 0, i + 1)));
        let a = compute_order(&g, NodeOrder::Random(1));
        let b = compute_order(&g, NodeOrder::Random(2));
        let a2 = compute_order(&g, NodeOrder::Random(1));
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn fp0_sorts_by_degree() {
        let (g, _) = Hypergraph::from_simple_edges(4, vec![(0, 0, 1), (0, 0, 2), (0, 0, 3), (1, 0, 2)]);
        let seq = compute_order(&g, NodeOrder::Fp0);
        assert_eq!(*seq.last().unwrap(), 0); // hub has max degree
        assert_eq!(seq[0], 3); // degree 1
    }
}
