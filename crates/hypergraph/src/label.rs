//! Edge labels: terminals (the input alphabet Σ) vs nonterminals (grammar
//! symbols introduced by the compressor).

/// Label of a hyperedge.
///
/// The paper works over a ranked alphabet Σ plus a disjoint nonterminal
/// alphabet N. Both sides are dense small integers here; keeping the
/// distinction in the type (rather than an offset convention) makes grammar
/// code self-checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeLabel {
    /// A symbol of the input alphabet Σ.
    Terminal(u32),
    /// A grammar nonterminal introduced by compression.
    Nonterminal(u32),
}

impl EdgeLabel {
    /// True for `Terminal`.
    pub fn is_terminal(self) -> bool {
        matches!(self, EdgeLabel::Terminal(_))
    }

    /// True for `Nonterminal`.
    pub fn is_nonterminal(self) -> bool {
        matches!(self, EdgeLabel::Nonterminal(_))
    }

    /// The raw symbol index within its alphabet.
    pub fn index(self) -> u32 {
        match self {
            EdgeLabel::Terminal(i) | EdgeLabel::Nonterminal(i) => i,
        }
    }
}

impl std::fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeLabel::Terminal(i) => write!(f, "t{i}"),
            EdgeLabel::Nonterminal(i) => write!(f, "N{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(EdgeLabel::Terminal(0).is_terminal());
        assert!(!EdgeLabel::Terminal(0).is_nonterminal());
        assert!(EdgeLabel::Nonterminal(3).is_nonterminal());
        assert_eq!(EdgeLabel::Nonterminal(3).index(), 3);
    }

    #[test]
    fn ordering_separates_kinds() {
        // Terminals sort before nonterminals; used by digram canonicalization.
        assert!(EdgeLabel::Terminal(99) < EdgeLabel::Nonterminal(0));
    }

    #[test]
    fn display() {
        assert_eq!(EdgeLabel::Terminal(2).to_string(), "t2");
        assert_eq!(EdgeLabel::Nonterminal(0).to_string(), "N0");
    }
}
