//! Chaos suite for the serving stack (DESIGN.md §10): seeded fault
//! schedules injected over live sockets, asserting the protocol-level
//! degradation contract —
//!
//! * **no panics**: the server survives every schedule (a poisoned lock or
//!   unwind would hang or kill the accept loop and fail the test),
//! * **no torn or reordered answers**: replies are whole lines, one per
//!   request, in request order — a faulted connection may end early, but
//!   every complete reply line it did deliver must match its request,
//! * **generation ratchet**: `INFO` never reports a namespace going
//!   backwards,
//! * **recovery**: after `FAULTS CLEAR`, the same request stream answers
//!   byte-identically to a server that never saw a fault.
//!
//! Compiled only with the `fail` feature; CI runs it with a fixed seed.

#![cfg(feature = "fail")]

mod common;

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};

use common::{g2g, LineClient, TestServer};
use grepair_util::fail;

#[cfg(target_os = "linux")]
use grepair_server::{IoMode, ServerConfig};

/// xorshift64* — deterministic schedules from the seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The request stream every chaos client sends — mixed across the default
/// namespace and a cold-attached tenant — with the exact reply each line
/// gets from a healthy server. Expected answers come from twin stores so
/// the script stays correct if the compressor renumbers nodes.
fn script(tenant_reps: u32) -> Vec<(String, String)> {
    use grepair_store::{GraphStore, Query};
    let twin8 = GraphStore::from_bytes(&g2g(8)).unwrap();
    let twin_t = GraphStore::from_bytes(&g2g(tenant_reps)).unwrap();
    let q = |store: &GraphStore, query: Query| store.query(&query).unwrap().to_string();
    vec![
        ("out 0".into(), q(&twin8, Query::OutNeighbors(0))),
        ("t1:out 0".into(), q(&twin_t, Query::OutNeighbors(0))),
        ("reach 0 16".into(), q(&twin8, Query::Reach { s: 0, t: 16 })),
        ("t1:reach 0 32".into(), q(&twin_t, Query::Reach { s: 0, t: 32 })),
        ("components".into(), q(&twin8, Query::Components)),
        ("t1:in 1".into(), q(&twin_t, Query::InNeighbors(1))),
    ]
}

/// Pipelined client that tolerates a server-injected connection death:
/// sends everything, half-closes, drains what comes back, and returns the
/// *complete* reply lines (a torn trailing fragment without `\n` is the
/// transport dying mid-flush, not a protocol reply — it is discarded and
/// reported separately).
fn send_and_salvage(addr: SocketAddr, input: &str) -> (Vec<String>, bool) {
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return (Vec::new(), false),
    };
    // Injected session faults may kill the peer mid-send; that is the
    // chaos working as intended, not a test failure.
    let _ = stream.write_all(input.as_bytes());
    let _ = stream.shutdown(Shutdown::Write);
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let text = String::from_utf8_lossy(&raw);
    let torn = !text.is_empty() && !text.ends_with('\n');
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    if torn {
        lines.pop();
    }
    (lines, torn)
}

#[test]
fn seeded_socket_chaos_no_torn_replies_then_byte_identical_recovery() {
    let _faults = fail::scoped();
    let seed = 0x5eed_cafe;
    fail::set_seed(seed);
    let mut rng = Rng::new(seed);

    let server = TestServer::start(8, None);
    // Multi-tenant serving: a second namespace attached cold, so the
    // chaos schedules hit real cold-open (and breaker) paths mid-round.
    let tenant_path = std::env::temp_dir()
        .join(format!("grepair_chaos_srv_{}.g2g", std::process::id()));
    std::fs::write(&tenant_path, g2g(16)).unwrap();
    server.registry.attach_cold("t1", tenant_path.to_str().unwrap()).unwrap();
    let script = script(16);
    let input: String = script.iter().map(|(q, _)| format!("{q}\n")).collect();

    // The no-fault transcript, captured before any fault is configured.
    let (clean, torn) = send_and_salvage(server.addr, &input);
    assert!(!torn);
    let expected: Vec<&str> = script.iter().map(|(_, a)| a.as_str()).collect();
    assert_eq!(clean, expected, "healthy baseline");

    let mut generation_floor = 1u64;
    for round in 0..6u64 {
        // Configure the round's schedule in-process (the server shares
        // this process's failpoint table; the wire `FAULTS` path has its
        // own test below — an admin connection that enables session
        // faults would get killed by them mid-configuration).
        fail::set_seed(seed ^ round);
        let menu = [
            ("session.read", ["1in(6):err", "1in(4):err", "nth(3):err"]),
            ("session.write", ["1in(6):err", "1in(5):err", "nth(2):err"]),
            ("pool.submit", ["1in(3):err", "1in(2):err", "first(1):err"]),
            ("store.open.read", ["1in(4):err", "1in(3):err", "nth(1):err"]),
        ];
        for (name, options) in menu {
            if rng.below(3) < 2 {
                let spec = options[rng.below(options.len() as u64) as usize];
                fail::configure(name, spec).expect("valid spec");
            }
        }

        // Hammer the faulted server from several clients. Replies must be
        // an in-order prefix-with-substitutions of the script: for line i,
        // either the true answer, `busy` (shed), or an `error:` line.
        std::thread::scope(|s| {
            for _ in 0..3 {
                let input = &input;
                let script = &script;
                let addr = server.addr;
                s.spawn(move || {
                    for _ in 0..4 {
                        let (lines, _torn) = send_and_salvage(addr, input);
                        assert!(lines.len() <= script.len(), "more replies than requests");
                        for (i, line) in lines.iter().enumerate() {
                            let (query, answer) = &script[i];
                            assert!(
                                line == answer
                                    || line == "busy"
                                    || line.starts_with("error: "),
                                "torn/reordered reply to {query:?}: {line:?}"
                            );
                        }
                    }
                });
            }
        });

        // Clear the round's faults, then check the generation ratchet
        // over a clean connection.
        fail::clear_all();
        let mut admin = LineClient::new(server.connect());
        let info = admin.roundtrip("INFO");
        let generation: u64 = info
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("generation="))
            .expect("INFO carries generation")
            .parse()
            .expect("generation is a number");
        assert!(generation >= generation_floor, "ratchet broke: {info}");
        generation_floor = generation;

        // Faults are clear: recovery must be byte-identical to the
        // healthy baseline, same bytes the serve-file twin would emit.
        // The tenant's circuit breaker may still be cooling down from the
        // round's faults, so ride out at most a few half-open cycles.
        let mut recovered = Vec::new();
        for _ in 0..20 {
            let (lines, torn) = send_and_salvage(server.addr, &input);
            assert!(!torn, "no faults, no torn replies");
            recovered = lines;
            if recovered == clean {
                break;
            }
            std::thread::sleep(grepair_store::BREAKER_COOLDOWN / 2);
        }
        assert_eq!(recovered, clean, "round {round}: recovery not byte-identical");
    }
    fail::clear_all();
    let _ = std::fs::remove_file(&tenant_path);
}

/// The epoll twin of the seeded chaos run above: same degradation
/// contract, driven through the reactor's own failpoints —
/// `reactor.wait` (readiness-loop hiccups: log, back off, keep serving),
/// `conn.read` / `conn.write` (per-connection transport death), plus
/// `pool.submit` and `store.open.read` so the store-side chaos the other
/// suite exercises in-process is also covered through the epoll path.
/// Linux-only, like the reactor.
#[cfg(target_os = "linux")]
#[test]
fn seeded_epoll_chaos_no_torn_replies_then_byte_identical_recovery() {
    let _faults = fail::scoped();
    let seed = 0xe9011_5eed;
    fail::set_seed(seed);
    let mut rng = Rng::new(seed);

    let server = TestServer::start_with(
        8,
        None,
        ServerConfig { io: IoMode::Epoll, ..ServerConfig::default() },
    );
    let tenant_path = std::env::temp_dir()
        .join(format!("grepair_chaos_epoll_{}.g2g", std::process::id()));
    std::fs::write(&tenant_path, g2g(16)).unwrap();
    server.registry.attach_cold("t1", tenant_path.to_str().unwrap()).unwrap();
    let script = script(16);
    let input: String = script.iter().map(|(q, _)| format!("{q}\n")).collect();

    let (clean, torn) = send_and_salvage(server.addr, &input);
    assert!(!torn);
    let expected: Vec<&str> = script.iter().map(|(_, a)| a.as_str()).collect();
    assert_eq!(clean, expected, "healthy epoll baseline");

    for round in 0..6u64 {
        fail::set_seed(seed ^ round);
        let menu = [
            ("reactor.wait", ["1in(8):err", "1in(6):delay(5)", "nth(2):err"]),
            ("conn.read", ["1in(6):err", "1in(4):err", "nth(3):err"]),
            ("conn.write", ["1in(6):err", "1in(5):err", "nth(2):err"]),
            ("pool.submit", ["1in(3):err", "1in(2):err", "first(1):err"]),
            ("store.open.read", ["1in(4):err", "1in(3):err", "nth(1):err"]),
        ];
        for (name, options) in menu {
            if rng.below(3) < 2 {
                let spec = options[rng.below(options.len() as u64) as usize];
                fail::configure(name, spec).expect("valid spec");
            }
        }

        // Several concurrent clients against one reactor thread: replies
        // must stay whole lines, one per request, in request order — a
        // fault on one connection (conn.read/conn.write) may end *that*
        // stream early but must never corrupt another's.
        std::thread::scope(|s| {
            for _ in 0..3 {
                let input = &input;
                let script = &script;
                let addr = server.addr;
                s.spawn(move || {
                    for _ in 0..4 {
                        let (lines, _torn) = send_and_salvage(addr, input);
                        assert!(lines.len() <= script.len(), "more replies than requests");
                        for (i, line) in lines.iter().enumerate() {
                            let (query, answer) = &script[i];
                            assert!(
                                line == answer
                                    || line == "busy"
                                    || line.starts_with("error: "),
                                "torn/reordered reply to {query:?}: {line:?}"
                            );
                        }
                    }
                });
            }
        });

        fail::clear_all();
        // Recovery must be byte-identical to the healthy baseline; ride
        // out the tenant breaker's cooldown like the thread-mode test.
        let mut recovered = Vec::new();
        for _ in 0..20 {
            let (lines, torn) = send_and_salvage(server.addr, &input);
            assert!(!torn, "no faults, no torn replies");
            recovered = lines;
            if recovered == clean {
                break;
            }
            std::thread::sleep(grepair_store::BREAKER_COOLDOWN / 2);
        }
        assert_eq!(recovered, clean, "epoll round {round}: recovery not byte-identical");
    }
    fail::clear_all();
    let _ = std::fs::remove_file(&tenant_path);
}

/// Per-connection containment, pinned deterministically: the first
/// `conn.read` evaluation (one exact connection) dies; a connection made
/// after it serves the full script untouched.
#[cfg(target_os = "linux")]
#[test]
fn epoll_conn_faults_are_contained_to_their_connection() {
    let _faults = fail::scoped();
    let server = TestServer::start_with(
        8,
        None,
        ServerConfig { io: IoMode::Epoll, ..ServerConfig::default() },
    );
    // Healthy first, so the store is warm and the baseline is known-good.
    let input = "out 0\nreach 0 16\ncomponents\nin 1\nPING\n";
    let (baseline, torn) = send_and_salvage(server.addr, input);
    assert!(!torn);
    assert!(!baseline.is_empty(), "healthy baseline must answer");

    fail::configure("conn.read", "nth(1):err").unwrap();
    let (victim_lines, _) = send_and_salvage(server.addr, input);
    assert!(
        victim_lines.is_empty(),
        "the faulted connection died on its first read: {victim_lines:?}"
    );
    // The very next connection is past nth(1): served in full.
    let (healthy, torn) = send_and_salvage(server.addr, input);
    assert!(!torn);
    assert_eq!(healthy, baseline, "fault leaked across connections");
    fail::clear_all();
}

/// Clean drain through the reactor: `SHUTDOWN` answers `draining`, parked
/// connections are flushed and closed well inside `--drain-deadline`, and
/// the server thread exits (TestServer's drop joins it).
#[cfg(target_os = "linux")]
#[test]
fn epoll_drain_closes_parked_connections_within_the_deadline() {
    let _faults = fail::scoped();
    let server = TestServer::start_with(
        8,
        None,
        ServerConfig {
            io: IoMode::Epoll,
            drain_deadline: std::time::Duration::from_secs(3),
            ..ServerConfig::default()
        },
    );
    // A client with answered traffic, left parked (no half-close).
    let mut parked = server.connect();
    parked.write_all(b"out 0\nPING\n").unwrap();
    let mut reader = std::io::BufReader::new(parked.try_clone().unwrap());
    for expected in ["1\n", "pong\n"] {
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert_eq!(line, expected);
    }
    // A second client triggers the drain.
    let mut admin = LineClient::new(server.connect());
    assert_eq!(admin.roundtrip("SHUTDOWN"), "draining");
    // The parked connection is closed cleanly (EOF, no junk) well inside
    // the deadline, not abandoned until a timeout kills it.
    let start = std::time::Instant::now();
    let mut rest = Vec::new();
    parked.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
    parked.read_to_end(&mut rest).expect("clean close, not a reset");
    assert!(rest.is_empty(), "unexpected bytes at drain: {rest:?}");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(3),
        "drain took {:?}, deadline is 3s",
        start.elapsed()
    );
}

/// `server.accept` faults reach the reactor's accept burst too: it logs,
/// backs off, and keeps serving.
#[cfg(target_os = "linux")]
#[test]
fn epoll_accept_faults_back_off_without_dropping_the_server() {
    let _faults = fail::scoped();
    fail::configure("server.accept", "first(2):err").unwrap();
    let server = TestServer::start_with(
        8,
        None,
        ServerConfig { io: IoMode::Epoll, ..ServerConfig::default() },
    );
    let mut client = LineClient::new(server.connect());
    assert_eq!(client.roundtrip("out 0"), "1");
    assert_eq!(client.roundtrip("QUIT"), "bye");
    fail::clear_all();
}

#[test]
fn faults_verb_lists_calls_and_fired_counts_over_the_wire() {
    let _faults = fail::scoped();
    let server = TestServer::start(8, None);
    let mut client = LineClient::new(server.connect());
    assert_eq!(client.roundtrip("FAULTS"), "faults compiled=on points=0");
    assert_eq!(client.roundtrip("FAULTS SET session.read nth(100):err"), "fault set session.read");
    // The PING exercised the point once (the read that carried it).
    assert_eq!(client.roundtrip("PING"), "pong");
    let listing = client.roundtrip("FAULTS");
    assert!(listing.starts_with("faults compiled=on points=1 session.read=nth(100):err:calls="), "{listing}");
    assert_eq!(client.roundtrip("FAULTS CLEAR session.read"), "fault cleared session.read");
    assert_eq!(client.roundtrip("FAULTS"), "faults compiled=on points=0");
    fail::clear_all();
}

#[test]
fn accept_faults_back_off_without_dropping_the_server() {
    let _faults = fail::scoped();
    // Two injected accept failures: the loop logs, backs off (10 then
    // 20 ms), and keeps serving afterwards.
    fail::configure("server.accept", "first(2):err").unwrap();
    let server = TestServer::start(8, None);
    let mut client = LineClient::new(server.connect());
    assert_eq!(client.roundtrip("out 0"), "1");
    assert_eq!(client.roundtrip("QUIT"), "bye");
    fail::clear_all();
}
