//! Multi-tenant hosting over one socket: a grammar-backed namespace and a
//! k²-backed namespace served concurrently, each answering byte-identically
//! to the socket-free `serve-file` path over the same container, with
//! per-namespace reload isolation and LRU eviction that never changes an
//! answer.

mod common;

use common::{g2g, send_and_drain, LineClient, TestServer};
use grepair_hypergraph::Hypergraph;
use grepair_store::{error_reply, parse_query, GraphStore};

/// An unlabeled `n`-node path, k²-encoded (ids preserved — no grammar
/// renumbering).
fn k2_file(n: usize) -> Vec<u8> {
    let g = Hypergraph::from_simple_edges(n, (0..n as u32 - 1).map(|i| (i, 0u32, i + 1))).0;
    grepair_store::codec_for("k2").unwrap().encode(&g).unwrap()
}

/// What `grepair store serve-file` replies for `line` against this
/// container — the same parse → query → render path both front ends share,
/// computed on a twin store so the expectation survives grammar
/// renumbering.
fn serve_file_reply(twin: &GraphStore, line: &str) -> String {
    match parse_query(line).and_then(|q| twin.query(&q)) {
        Ok(answer) => answer.to_string(),
        Err(e) => error_reply(&e),
    }
}

/// A workload that crosses the whole query plane, including a per-line
/// error that must not desynchronize the reply stream.
const WORKLOAD: &[&str] = &[
    "out 0",
    "in 3",
    "neighbors 2",
    "reach 0 5",
    "reach 5 0",
    "rpq 0 2 0 0",
    "components",
    "degrees",
    "out 100000",
    "nodes",
];

#[test]
fn grepair_and_k2_tenants_share_one_socket_and_match_serve_file() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let gram_bytes = g2g(6); // 13-node grammar-backed path
    let k2_bytes = k2_file(9);
    let gram_path = dir.join(format!("grepair_mt_gram_{pid}.g2g"));
    let k2_path = dir.join(format!("grepair_mt_k2_{pid}.g2g"));
    std::fs::write(&gram_path, &gram_bytes).unwrap();
    std::fs::write(&k2_path, &k2_bytes).unwrap();

    let server = TestServer::start(8, None);
    let mut client = LineClient::new(server.connect());
    let reply = client.roundtrip(&format!("ATTACH gram {}", gram_path.display()));
    assert_eq!(reply, "attached gram generation=1 nodes=13 backend=grepair");
    let reply = client.roundtrip(&format!("ATTACH k {}", k2_path.display()));
    assert_eq!(reply, "attached k generation=1 nodes=9 backend=k2");
    assert_eq!(
        client.roundtrip("LIST"),
        "namespaces=3 default=resident:1 gram=resident:1 k=resident:1"
    );

    // Twin stores loaded from the very same bytes are the serve-file
    // ground truth for each namespace.
    let gram_twin = GraphStore::from_bytes(&gram_bytes).unwrap();
    let k2_twin = GraphStore::from_bytes(&k2_bytes).unwrap();

    // Interleave the two tenants line-by-line on one connection: every
    // reply must match its namespace's serve-file answer, in input order.
    for line in WORKLOAD {
        let got = client.roundtrip(&format!("gram:{line}"));
        assert_eq!(got, serve_file_reply(&gram_twin, line), "gram:{line}");
        let got = client.roundtrip(&format!("k:{line}"));
        assert_eq!(got, serve_file_reply(&k2_twin, line), "k:{line}");
    }

    // The same interleaving as one pipelined batch exercises the
    // per-namespace grouping in `flush_pending`: one snapshot per
    // namespace, replies scattered back into input order.
    let mut input = String::new();
    let mut expected = Vec::new();
    for line in WORKLOAD {
        input.push_str(&format!("k:{line}\ngram:{line}\n"));
        expected.push(serve_file_reply(&k2_twin, line));
        expected.push(serve_file_reply(&gram_twin, line));
    }
    let out = send_and_drain(server.addr, input.as_bytes());
    assert_eq!(out.lines().collect::<Vec<_>>(), expected);

    // Two sessions hammering different tenants concurrently stay isolated.
    let gram_addr = server.addr;
    let gram_expected: Vec<String> =
        WORKLOAD.iter().map(|l| serve_file_reply(&gram_twin, l)).collect();
    let hammer = std::thread::spawn(move || {
        for _ in 0..20 {
            let mut c = LineClient::new(std::net::TcpStream::connect(gram_addr).unwrap());
            assert_eq!(c.roundtrip("USE gram"), "using gram");
            for (line, want) in WORKLOAD.iter().zip(&gram_expected) {
                assert_eq!(&c.roundtrip(line), want, "gram under concurrency: {line}");
            }
        }
    });
    for _ in 0..20 {
        let mut c = LineClient::new(server.connect());
        assert_eq!(c.roundtrip("USE k"), "using k");
        for line in WORKLOAD {
            assert_eq!(c.roundtrip(line), serve_file_reply(&k2_twin, line), "k:{line}");
        }
    }
    hammer.join().unwrap();

    let _ = std::fs::remove_file(&gram_path);
    let _ = std::fs::remove_file(&k2_path);
}

#[test]
fn reload_of_one_namespace_never_bumps_the_other() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let a_path = dir.join(format!("grepair_mt_iso_a_{pid}.g2g"));
    let b_path = dir.join(format!("grepair_mt_iso_b_{pid}.g2g"));
    std::fs::write(&a_path, g2g(4)).unwrap();
    std::fs::write(&b_path, k2_file(7)).unwrap();

    let server = TestServer::start(8, None);
    let mut client = LineClient::new(server.connect());
    client.roundtrip(&format!("ATTACH a {}", a_path.display()));
    client.roundtrip(&format!("ATTACH b {}", b_path.display()));
    let b_twin = GraphStore::from_bytes(&k2_file(7)).unwrap();

    // Reload `a` three times (bare RELOAD from the recorded ATTACH path):
    // its generation climbs, b's must not move.
    assert_eq!(client.roundtrip("USE a"), "using a");
    for round in 2..=4u64 {
        assert_eq!(client.roundtrip("RELOAD"), format!("reloaded generation={round} nodes=9"));
        assert_eq!(server.registry.generation_of("b").unwrap(), 1, "round {round}");
        assert!(client.roundtrip("STATS b").starts_with("generation=1 "));
        // Admin verbs take no namespace prefix: the remainder falls
        // through to query parsing and errors per-line.
        let reply = client.roundtrip("b:INFO");
        assert!(reply.starts_with("error: "), "{reply}");
        // b still answers, byte-identical to its twin, mid-reload-storm.
        for line in WORKLOAD {
            assert_eq!(client.roundtrip(&format!("b:{line}")), serve_file_reply(&b_twin, line));
        }
    }
    // And the default namespace never moved either.
    assert_eq!(server.registry.generation_of("default").unwrap(), 1);

    let _ = std::fs::remove_file(&a_path);
    let _ = std::fs::remove_file(&b_path);
}

#[test]
fn eviction_under_budget_is_invisible_to_clients() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut paths = Vec::new();
    let mut twins = Vec::new();
    for (i, reps) in [4u32, 6, 8].iter().enumerate() {
        let bytes = g2g(*reps);
        let path = dir.join(format!("grepair_mt_evict_{pid}_{i}.g2g"));
        std::fs::write(&path, &bytes).unwrap();
        twins.push(GraphStore::from_bytes(&bytes).unwrap());
        paths.push(path);
    }
    let total: u64 = paths.iter().map(|p| std::fs::metadata(p).unwrap().len()).sum();

    let server = TestServer::start(8, None);
    // Budget below the combined container size: the three tenants cannot
    // all stay resident, so round-robin queries force evict/reopen cycles.
    server.registry.set_budget(Some(total / 2));
    let mut client = LineClient::new(server.connect());
    for (i, path) in paths.iter().enumerate() {
        let reply = client.roundtrip(&format!("ATTACH t{i} {}", path.display()));
        assert!(reply.starts_with("attached "), "{reply}");
    }

    for _round in 0..5 {
        for (i, twin) in twins.iter().enumerate() {
            for line in WORKLOAD {
                let got = client.roundtrip(&format!("t{i}:{line}"));
                assert_eq!(got, serve_file_reply(twin, line), "t{i}:{line}");
            }
            // Evicted-and-reopened stores keep their generation: eviction
            // is a cache decision, not a data change.
            assert_eq!(server.registry.generation_of(&format!("t{i}")).unwrap(), 1);
        }
    }
    // The budget actually bit: evictions happened and the resident set
    // stayed within bounds (plus at most the one just-touched store).
    let stats = server.registry.aggregate_stats();
    assert!(stats.evictions > 0, "budget never forced an eviction: {stats}");
    assert!(stats.cold_opens > 0, "evicted stores must have reopened: {stats}");

    for path in &paths {
        let _ = std::fs::remove_file(path);
    }
}
