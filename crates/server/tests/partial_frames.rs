//! Partial-frame torture: the epoll front end must answer byte-identically
//! to thread mode no matter how hostile or multi-tenant request streams are
//! sliced across writes — 1-byte dribble, mid-UTF-8 splits, mid-oversized
//! splits, mid-line close — and no slicing may wedge a connection
//! (DESIGN.md §11).
//!
//! Ground truth for every stream is the thread-per-connection server fed
//! the whole stream at once (itself pinned byte-identical to serve-file by
//! the existing suites); the epoll server then gets the same bytes under
//! every split schedule, with inter-chunk gaps long enough to force
//! separate `read(2)`s through the reactor.
//!
//! Linux-only, like the reactor itself.
#![cfg(target_os = "linux")]

mod common;

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use common::{g2g, send_and_drain, TestServer};
use grepair_server::{IoMode, ServerConfig};
use proptest::prelude::*;

/// Pause between chunks: long enough that the reactor's level-triggered
/// loop consumes each chunk in its own wakeup, short enough that a full
/// all-boundaries sweep stays fast.
const GAP: Duration = Duration::from_millis(2);

/// Send `input` to `addr` sliced into `chunks`-sized writes (cycled until
/// the stream is exhausted), half-close, and drain every reply byte. A
/// read timeout turns a wedged connection into a loud failure instead of
/// a hung test.
fn replies_chunked(addr: SocketAddr, input: &[u8], chunks: &[usize]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut sent = 0;
    let mut schedule = chunks.iter().copied().cycle();
    while sent < input.len() {
        let len = schedule.next().expect("non-empty schedule").max(1);
        let end = (sent + len).min(input.len());
        stream.write_all(&input[sent..end]).expect("send chunk");
        sent = end;
        if sent < input.len() {
            std::thread::sleep(GAP);
        }
    }
    // The server may already have closed (QUIT as the final line), which
    // makes the half-close racy — not an error worth failing over.
    let _ = stream.shutdown(Shutdown::Write);
    let mut out = String::new();
    match stream.read_to_string(&mut out) {
        Ok(_) => out,
        Err(e) => panic!("connection wedged under schedule {chunks:?}: {e}"),
    }
}

/// One twin pair: a thread-mode and an epoll-mode server over identical
/// stores, each with a cold `t1` tenant so multi-tenant streams exercise
/// namespace routing on both.
struct Twins {
    threads: TestServer,
    epoll: TestServer,
    tenant_path: std::path::PathBuf,
}

impl Twins {
    fn start() -> Self {
        let tenant_path = std::env::temp_dir()
            .join(format!("grepair_frames_t1_{}.g2g", std::process::id()));
        std::fs::write(&tenant_path, g2g(4)).expect("write tenant container");
        let threads = TestServer::start_with(8, None, ServerConfig::default());
        let epoll = TestServer::start_with(
            8,
            None,
            ServerConfig { io: IoMode::Epoll, ..ServerConfig::default() },
        );
        for server in [&threads, &epoll] {
            server
                .registry
                .attach_cold("t1", tenant_path.to_str().expect("utf8 path"))
                .expect("attach tenant");
        }
        Self { threads, epoll, tenant_path }
    }

    /// Assert the epoll server answers `input` under `chunks` exactly as
    /// the thread server answers it whole.
    fn assert_identical(&self, input: &[u8], chunks: &[usize]) {
        let expected = send_and_drain(self.threads.addr, input);
        let got = replies_chunked(self.epoll.addr, input, chunks);
        assert_eq!(
            got,
            expected,
            "epoll diverged from thread mode under schedule {chunks:?} for {:?}",
            String::from_utf8_lossy(&input[..input.len().min(120)]),
        );
    }
}

impl Drop for Twins {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.tenant_path);
    }
}

/// Every reply class the protocol has, in streams small enough to split at
/// every byte boundary. (Stateful admin verbs — ATTACH, RELOAD, SHUTDOWN —
/// are excluded: they mutate the *server*, so replay under many schedules
/// against one server would diverge for reasons unrelated to framing.
/// Their split behavior is covered by the session engine being shared.)
fn corpus() -> Vec<Vec<u8>> {
    let mut streams: Vec<Vec<u8>> = vec![
        // Answers, errors, unparsable ids, garbage, unicode.
        b"out 0\nreach 0 16\nbogus 7\nout 99999999999999999999999999\nreach 0\n!!!!\n".to_vec(),
        // Non-UTF-8 bytes mid-stream; serving continues after.
        [&b"\xff\xfe\xfd\n"[..], &[0u8, 1, 2, 255, b'\n'], b"out 0\n"].concat(),
        // CRLF clients, comments, blank lines (skipped, no reply).
        b"out 0\r\n\r\n# comment\r\nPING\r\ndegrees\n".to_vec(),
        // Multi-tenant: one-shot prefix, USE, INFO reflecting namespace,
        // unknown-namespace error, prefix with leading space after colon.
        b"t1:out 0\nUSE t1\nout 0\nINFO\nUSE default\nnope:out 0\nt1: reach 0 8\n".to_vec(),
        // QUIT as the stream's last line (a tail *after* QUIT would race
        // the server's close with the client's remaining writes — an RST,
        // not a framing question; post-QUIT suppression is pinned by the
        // conn unit tests instead).
        b"out 0\nPING\nQUIT\n".to_vec(),
        // Mid-line close: the partial tail is discarded silently.
        b"out 0\nreach 0 16\nout 1".to_vec(),
        // Hostile ids at the u64 edges.
        b"out 18446744073709551615\nreach 0 1099511627776\nrpq 0 1 0 1\n".to_vec(),
        // A torn multi-byte UTF-8 char is only decodable once reassembled.
        "caf\u{e9} nope\n\u{1F980} crab\nout 0\n".as_bytes().to_vec(),
    ];
    // Oversized line (just past the 64 KiB cap), then resync on a newline.
    let mut oversized = vec![b'a'; 70_000];
    oversized.push(b'\n');
    oversized.extend_from_slice(b"reach 0 1\n");
    streams.push(oversized);
    streams
}

#[test]
fn every_boundary_split_is_byte_identical_to_thread_mode() {
    let twins = Twins::start();
    for input in corpus() {
        // Whole-stream sanity first.
        twins.assert_identical(&input, &[input.len()]);
        if input.len() <= 96 {
            // All two-chunk boundary splits, including mid-UTF-8 and
            // mid-line ones.
            for split in 1..input.len() {
                twins.assert_identical(&input, &[split, input.len() - split]);
            }
            // Full 1-byte dribble: every line arrives one read at a time.
            twins.assert_identical(&input, &[1]);
        } else {
            // Long streams (the oversized line): splits landing before,
            // inside, and after the discard window, plus a coarse dribble.
            let n = input.len();
            for schedule in [
                vec![1, n - 1],
                vec![n / 2, n - n / 2],
                vec![65_536, n - 65_536],
                vec![69_999, 1, n - 70_000],
                vec![1_000],
                vec![13],
            ] {
                twins.assert_identical(&input, &schedule);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random multi-chunk schedules over random corpus streams: whatever
    /// the slicing, epoll answers byte-for-byte what thread mode answers,
    /// and nothing wedges.
    #[test]
    fn random_chunk_schedules_are_byte_identical_to_thread_mode(
        stream_index in 0usize..9,
        chunks in proptest::collection::vec(1usize..48, 1..10),
    ) {
        let twins = Twins::start();
        let corpus = corpus();
        let input = &corpus[stream_index % corpus.len()];
        // Scale tiny schedules up for the oversized stream so a case
        // cannot take thousands of 2 ms gaps.
        let chunks: Vec<usize> = if input.len() > 1_000 {
            chunks.iter().map(|c| c * 4_096).collect()
        } else {
            chunks
        };
        let expected = send_and_drain(twins.threads.addr, input);
        let got = replies_chunked(twins.epoll.addr, input, &chunks);
        prop_assert_eq!(got, expected);
    }
}
