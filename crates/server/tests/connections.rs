//! Connection-scale soak test for the epoll front end (DESIGN.md §11).
//!
//! Opens N idle sockets against an epoll-mode server (N from
//! `GREPAIR_TEST_CONNS`, default 512 so CI stays fast; set 10000 locally),
//! asserts the process thread count stays flat — the whole point of the
//! reactor: idle clients cost a buffer, not a parked thread — then drives
//! real traffic over a seeded-random subset and byte-diffs the replies
//! against the serve-file engine (`serve_session` over the same bytes),
//! while the untouched connections stay live.
//!
//! Linux-only, like the reactor itself.
#![cfg(target_os = "linux")]

mod common;

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use common::TestServer;
use grepair_server::{serve_session, IoMode, ServerConfig, SessionOpts, WorkerPool};

/// Idle sockets to park. CI default is modest; run with
/// `GREPAIR_TEST_CONNS=10000` (and an fd limit to match) for the full
/// 10k-connection soak.
fn requested_conns() -> usize {
    std::env::var("GREPAIR_TEST_CONNS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(512)
}

/// The soft fd limit, from `/proc/self/limits`. Every parked connection
/// costs this process two fds (client end + server end), so the request
/// is clamped to fit with headroom for the harness itself.
fn fd_limit() -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|soft| soft.parse().ok())
        .unwrap_or(1024)
}

/// Threads of this process, from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// xorshift64* — a deterministic subset pick from a fixed seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// The traffic each exercised connection sends: answers, errors, admin,
/// comments — every reply class, no QUIT (the socket must stay usable).
const TRAFFIC: &str = "out 0\nreach 0 16\nPING\nbogus 7\n# comment\nnope:out 0\ndegrees\nINFO\n";

#[test]
fn ten_k_idle_connections_hold_on_a_flat_thread_count() {
    let reps = 8;
    let n = requested_conns().min(fd_limit().saturating_sub(128) / 2).max(8);
    let server = TestServer::start_with(
        reps,
        None,
        ServerConfig {
            io: IoMode::Epoll,
            threads: 2,
            max_connections: n + 64,
            ..ServerConfig::default()
        },
    );

    // Warm everything that lazily spawns a thread (pool workers, drain
    // watcher) before taking the baseline.
    {
        let mut first = BufReader::new(server.connect());
        first.get_mut().write_all(b"out 0\nPING\n").expect("warmup send");
        let mut reply = String::new();
        first.read_line(&mut reply).expect("warmup reply");
    }
    let base = thread_count();

    // Park N idle connections.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(n);
    for i in 0..n {
        match TcpStream::connect(server.addr) {
            Ok(stream) => idle.push(stream),
            Err(e) => panic!("connect {i}/{n} failed: {e}"),
        }
    }
    // Give the reactor a beat to accept the tail of the burst.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let during = thread_count();
    assert!(
        during <= base + 2,
        "thread count must stay flat with {n} idle connections: base={base} during={during}"
    );

    // Ground truth: the serve-file engine over the same bytes, against an
    // identical store.
    let expected = {
        let registry = grepair_store::StoreRegistry::new(common::store(reps));
        let pool = WorkerPool::new(2);
        let mut reader: &[u8] = TRAFFIC.as_bytes();
        let mut out = Vec::new();
        serve_session(&registry, &pool, &mut reader, &mut out, &SessionOpts::default())
            .expect("ground-truth session");
        String::from_utf8(out).expect("utf8 replies")
    };
    let reply_lines = expected.lines().count();

    // Drive traffic over a seeded-random subset of the parked sockets —
    // they are real sessions, not just accepted fds.
    let mut rng = Rng(0x5041_u64 ^ 0x5eed);
    let mut exercised = std::collections::BTreeSet::new();
    while exercised.len() < 32usize.min(n / 2) {
        exercised.insert((rng.next() % n as u64) as usize);
    }
    for &i in &exercised {
        let stream = &mut idle[i];
        stream.write_all(TRAFFIC.as_bytes()).expect("send traffic");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut got = String::new();
        for _ in 0..reply_lines {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read reply");
            assert!(line.ends_with('\n'), "truncated reply on conn {i}: {line:?}");
            got.push_str(&line);
        }
        assert_eq!(got, expected, "conn {i} diverged from serve-file ground truth");
    }
    let after = thread_count();
    assert!(
        after <= base + 2,
        "thread count must stay flat after traffic: base={base} after={after}"
    );

    // The untouched connections are still live sessions.
    for &i in exercised.iter().take(8) {
        let probe = (i + 1) % n;
        if exercised.contains(&probe) {
            continue;
        }
        let stream = &mut idle[probe];
        stream.write_all(b"PING\n").expect("probe ping");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("probe reply");
        assert_eq!(line, "pong\n", "idle conn {probe} wedged");
    }
}
