//! Loopback integration: a real `grepair-server` on an ephemeral port must
//! answer byte-identically to `store serve-file` on the same query file,
//! and a `RELOAD` mid-stream must bump the generation without dropping the
//! connection or any in-flight answer.

mod common;

use common::{g2g, send_and_drain, store, LineClient, TestServer};
use grepair_store::{error_reply, parse_query, GraphStore, Query};

/// A query file exercising every query class, every error shape, comments,
/// and blank lines — the serve-file acceptance input.
fn mixed_query_file(n: u64) -> String {
    let mut text = String::from("# every query class, plus per-line errors\n\n");
    for i in 0..n {
        text.push_str(&format!("out {i}\nin {i}\nneighbors {i}\n"));
        text.push_str(&format!("reach 0 {i}\nreach {i} {}\n", n - 1));
        text.push_str(&format!("rpq 0 {i} 0 1\nrpq {i} 0 0* 1*\n"));
    }
    text.push_str("components\ndegrees\n");
    // The error lines: out-of-range ids (the hostile corpus shapes),
    // unparsable verbs, malformed patterns, trailing junk.
    text.push_str(&format!("out {n}\nin {}\nneighbors {}\n", n + 100, u64::MAX));
    text.push_str(&format!("reach {n} 0\nreach 0 1099511627776\n"));
    text.push_str("rpq 0 1 banana\nrpq 2 3\nfrobnicate 7\nout\nout x\ncomponents now\n");
    text.push_str("\n# trailing comment\n");
    text
}

/// What `store serve-file` prints for `file`: the reference rendering,
/// produced through the same parse / query / `Display` / [`error_reply`]
/// code the CLI uses (the CI smoke step additionally diffs the two real
/// binaries end to end).
fn serve_file_reference(store: &GraphStore, file: &str) -> String {
    let mut out = String::new();
    for raw in file.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_query(line) {
            Err(e) => out.push_str(&format!("{}\n", error_reply(e.to_string()))),
            Ok(q) => match store.query(&q) {
                Ok(a) => out.push_str(&format!("{a}\n")),
                Err(e) => out.push_str(&format!("{}\n", error_reply(e))),
            },
        }
    }
    out
}

#[test]
fn socket_answers_are_byte_identical_to_serve_file() {
    let server = TestServer::start(16, None);
    let n = server.registry.current().total_nodes();
    let file = mixed_query_file(n);
    let expected = serve_file_reference(&store(16), &file);
    let got = send_and_drain(server.addr, file.as_bytes());
    assert!(!expected.is_empty());
    assert_eq!(got, expected, "socket and serve-file outputs must be byte-identical");
    // Sanity: the file really exercised the error paths.
    assert!(got.lines().any(|l| l.starts_with("error: ")));
}

#[test]
fn reload_mid_stream_bumps_generation_without_dropping_anything() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("grepair_server_it_{}.g2g", std::process::id()));
    std::fs::write(&path, g2g(32)).unwrap(); // 65-node replacement store
    let server = TestServer::start(16, None); // 33-node initial store
    let mut client = LineClient::new(server.connect());

    // Generation 1 serving normally.
    assert_eq!(
        client.roundtrip("INFO"),
        "grepair proto=3 namespace=default generation=1 nodes=33 backend=grepair reload_failures=0"
    );
    assert_eq!(client.roundtrip("reach 0 32"), "true");
    let err = client.roundtrip("out 64"); // not a node yet
    assert!(err.starts_with("error:"), "{err}");

    // Pipeline queries *around* a RELOAD in one write: the pre-RELOAD
    // query must be answered by the old store, the post-RELOAD one by the
    // new — all on the same connection, in order.
    client.send("out 64"); // old store: error
    client.send(&format!("RELOAD {}", path.display()));
    client.send("out 64"); // new store: a real answer
    let before = client.recv();
    assert!(before.starts_with("error:"), "in-flight answer served by generation 1: {before}");
    assert_eq!(client.recv(), "reloaded generation=2 nodes=65");
    let after = client.recv();
    let expected_after = store(32).query(&Query::OutNeighbors(64)).unwrap().to_string();
    assert_eq!(after, expected_after, "post-reload query runs on generation 2");

    // The same connection is still alive, and STATS echoes the bump.
    let stats = client.roundtrip("STATS default");
    assert!(stats.starts_with("generation=2 "), "{stats}");
    assert_eq!(server.registry.generation(), 2);
    assert_eq!(client.roundtrip("PING"), "pong");
    assert_eq!(client.roundtrip("QUIT"), "bye");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn old_generation_arc_survives_a_swap_under_load() {
    // A client holding a long pipelined stream while another session
    // reloads: every answer of the in-flight stream must still be correct
    // (they were computed on whichever generation each batch snapshotted —
    // both generations here serve identical graphs, so answers are
    // identical; what's being tested is that nothing tears or drops).
    let dir = std::env::temp_dir();
    let path = dir.join(format!("grepair_server_swap_{}.g2g", std::process::id()));
    std::fs::write(&path, g2g(16)).unwrap(); // same graph, new generation
    let server = TestServer::start(16, None);
    let n = server.registry.current().total_nodes();

    let mut input = String::new();
    let mut expected = String::new();
    for i in 0..2000u64 {
        input.push_str(&format!("reach 0 {}\n", i % n));
        expected.push_str("true\n");
    }
    let addr = server.addr;
    let streamer = std::thread::spawn(move || send_and_drain(addr, input.as_bytes()));
    // Concurrently, another connection swaps generations a few times.
    let mut admin = LineClient::new(server.connect());
    for round in 0..5 {
        let reply = admin.roundtrip(&format!("RELOAD {}", path.display()));
        assert_eq!(reply, format!("reloaded generation={} nodes={n}", round + 2));
    }
    assert_eq!(streamer.join().unwrap(), expected);
    assert_eq!(server.registry.generation(), 6);
}

#[test]
fn many_concurrent_connections_share_one_pool() {
    let server = TestServer::start(16, None);
    let n = server.registry.current().total_nodes();
    let file = mixed_query_file(n);
    let expected = serve_file_reference(&store(16), &file);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let expected = &expected;
            let file = &file;
            let addr = server.addr;
            scope.spawn(move || {
                assert_eq!(&send_and_drain(addr, file.as_bytes()), expected);
            });
        }
    });
}

#[test]
fn idle_sessions_are_cut_by_the_read_timeout() {
    use grepair_server::ServerConfig;
    use std::io::Read;
    use std::time::{Duration, Instant};

    let config = ServerConfig {
        read_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    };
    let server = TestServer::start_with(8, None, config);
    // A connection that never sends anything — the slow-loris shape. The
    // server must close it instead of parking its session thread forever.
    // (No request/reply roundtrips happen on this short-timeout server:
    // a >100ms scheduling stall between writes would otherwise make the
    // test flaky under CI load; normal serving is covered elsewhere.)
    let mut stream = server.connect();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let start = Instant::now();
    let mut buf = Vec::new();
    let n = stream.read_to_end(&mut buf).expect("server closes, not the test timeout");
    let elapsed = start.elapsed();
    assert_eq!(n, 0, "an idle session gets no bytes, just EOF: {buf:?}");
    assert!(
        elapsed < Duration::from_secs(5),
        "cutoff must come from the 100ms read timeout, took {elapsed:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(80),
        "cutoff must wait out the read timeout, not fire instantly: {elapsed:?}"
    );
}

#[test]
fn connections_over_the_cap_are_refused_with_an_error_line() {
    use grepair_server::ServerConfig;
    use std::io::Read;
    use std::time::Duration;

    let config = ServerConfig { max_connections: 1, ..ServerConfig::default() };
    let server = TestServer::start_with(8, None, config);
    let mut first = LineClient::new(server.connect());
    assert_eq!(first.roundtrip("PING"), "pong");

    // The second concurrent connection is answered and closed.
    let mut second = server.connect();
    second.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reply = String::new();
    second.read_to_string(&mut reply).expect("refusal then EOF");
    assert_eq!(reply, "error: connection limit reached (1 active)\n");

    // The refused connection did not consume the slot: the first session
    // still serves, and once it ends a new connection is admitted.
    assert_eq!(first.roundtrip("out 0"), "1");
    assert_eq!(first.roundtrip("QUIT"), "bye");
    drop(first);
    for attempt in 0.. {
        let mut retry = LineClient::new(server.connect());
        let reply = retry.roundtrip("PING");
        if reply == "pong" {
            break;
        }
        assert!(reply.starts_with("error:"), "{reply}");
        assert!(attempt < 50, "slot never freed: {reply:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn reload_swaps_in_a_different_backend_mid_session() {
    use grepair_hypergraph::Hypergraph;

    // A 9-node unlabeled path, k²-encoded: ids are preserved (no grammar
    // renumbering), so the answers are predictable.
    let g = Hypergraph::from_simple_edges(9, (0..8u32).map(|i| (i, 0u32, i + 1))).0;
    let file = grepair_store::codec_for("k2").unwrap().encode(&g).unwrap();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("grepair_server_k2_{}.g2g", std::process::id()));
    std::fs::write(&path, file).unwrap();

    let server = TestServer::start(16, None); // grammar-backed, 33 nodes
    let mut client = LineClient::new(server.connect());
    assert_eq!(
        client.roundtrip("INFO"),
        "grepair proto=3 namespace=default generation=1 nodes=33 backend=grepair reload_failures=0"
    );
    assert_eq!(
        client.roundtrip(&format!("RELOAD {}", path.display())),
        "reloaded generation=2 nodes=9"
    );
    // Same connection, new backend: the whole query plane answers.
    assert_eq!(
        client.roundtrip("INFO"),
        "grepair proto=3 namespace=default generation=2 nodes=9 backend=k2 reload_failures=0"
    );
    assert_eq!(client.roundtrip("out 0"), "1");
    assert_eq!(client.roundtrip("in 8"), "7");
    assert_eq!(client.roundtrip("reach 0 8"), "true");
    assert_eq!(client.roundtrip("reach 8 0"), "false");
    assert_eq!(client.roundtrip("rpq 0 2 0 0"), "true");
    assert_eq!(client.roundtrip("components"), "1");
    assert_eq!(client.roundtrip("degrees"), "min=1 max=2");
    let err = client.roundtrip("out 33"); // old id space is gone
    assert!(err.starts_with("error:") && err.contains("0..9"), "{err}");
    let stats = client.roundtrip("STATS default");
    assert!(stats.contains("backend=k2"), "{stats}");
    assert!(stats.ends_with("open_failures=0 reload_failures=0 breaker_trips=0 breaker_open=false"), "{stats}");
    assert_eq!(client.roundtrip("QUIT"), "bye");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bare_reload_uses_the_configured_path_and_errors_without_one() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("grepair_server_bare_{}.g2g", std::process::id()));
    std::fs::write(&path, g2g(8)).unwrap();

    // No default path configured: bare RELOAD is a clean error.
    let server = TestServer::start(8, None);
    let mut client = LineClient::new(server.connect());
    let reply = client.roundtrip("RELOAD");
    assert!(reply.contains("no container path"), "{reply}");
    drop(client);
    drop(server);

    // With one configured (the normal binary path), bare RELOAD works.
    let server = TestServer::start(8, Some(path.display().to_string()));
    let mut client = LineClient::new(server.connect());
    assert_eq!(client.roundtrip("RELOAD"), "reloaded generation=2 nodes=17");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shutdown_verb_drains_the_server_and_closes_the_listener() {
    use grepair_server::{Server, ServerConfig};
    use grepair_store::StoreRegistry;
    use std::sync::Arc;
    use std::time::Duration;

    let config = ServerConfig {
        drain_deadline: Duration::from_secs(3),
        ..Default::default()
    };
    let registry = Arc::new(StoreRegistry::new(store(8)));
    let server = Server::bind(&config, registry, None).unwrap();
    let addr = server.local_addr().unwrap();
    let run = std::thread::spawn(move || {
        let result = server.run();
        // After a drain, no session is left active: every in-flight
        // connection finished before run() returned.
        assert_eq!(server.connections_active(), 0, "drain left sessions behind");
        result
    });

    let mut client = LineClient::new(std::net::TcpStream::connect(addr).unwrap());
    assert_eq!(client.roundtrip("out 0"), "1");
    // SHUTDOWN answers `draining`, ends this session, and stops the
    // accept loop; run() returns once the drain completes.
    assert_eq!(client.roundtrip("SHUTDOWN"), "draining");
    run.join().expect("run thread").expect("clean drain exit");
    // The listener is gone with the server: fresh connections are refused
    // (or connect and die unanswered, depending on backlog timing).
    match std::net::TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            use std::io::{Read, Write};
            let _ = stream.write_all(b"PING\n");
            let mut reply = String::new();
            let _ = stream.read_to_string(&mut reply);
            assert_eq!(reply, "", "a drained server must not serve new sessions");
        }
    }
}
