//! Loopback integration: a real `grepair-server` on an ephemeral port must
//! answer byte-identically to `store serve-file` on the same query file,
//! and a `RELOAD` mid-stream must bump the generation without dropping the
//! connection or any in-flight answer.

mod common;

use common::{g2g, send_and_drain, store, LineClient, TestServer};
use grepair_store::{error_reply, parse_query, GraphStore, Query};

/// A query file exercising every query class, every error shape, comments,
/// and blank lines — the serve-file acceptance input.
fn mixed_query_file(n: u64) -> String {
    let mut text = String::from("# every query class, plus per-line errors\n\n");
    for i in 0..n {
        text.push_str(&format!("out {i}\nin {i}\nneighbors {i}\n"));
        text.push_str(&format!("reach 0 {i}\nreach {i} {}\n", n - 1));
        text.push_str(&format!("rpq 0 {i} 0 1\nrpq {i} 0 0* 1*\n"));
    }
    text.push_str("components\ndegrees\n");
    // The error lines: out-of-range ids (the hostile corpus shapes),
    // unparsable verbs, malformed patterns, trailing junk.
    text.push_str(&format!("out {n}\nin {}\nneighbors {}\n", n + 100, u64::MAX));
    text.push_str(&format!("reach {n} 0\nreach 0 1099511627776\n"));
    text.push_str("rpq 0 1 banana\nrpq 2 3\nfrobnicate 7\nout\nout x\ncomponents now\n");
    text.push_str("\n# trailing comment\n");
    text
}

/// What `store serve-file` prints for `file`: the reference rendering,
/// produced through the same parse / query / `Display` / [`error_reply`]
/// code the CLI uses (the CI smoke step additionally diffs the two real
/// binaries end to end).
fn serve_file_reference(store: &GraphStore, file: &str) -> String {
    let mut out = String::new();
    for raw in file.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_query(line) {
            Err(e) => out.push_str(&format!("{}\n", error_reply(e.to_string()))),
            Ok(q) => match store.query(&q) {
                Ok(a) => out.push_str(&format!("{a}\n")),
                Err(e) => out.push_str(&format!("{}\n", error_reply(e))),
            },
        }
    }
    out
}

#[test]
fn socket_answers_are_byte_identical_to_serve_file() {
    let server = TestServer::start(16, None);
    let n = server.registry.current().total_nodes();
    let file = mixed_query_file(n);
    let expected = serve_file_reference(&store(16), &file);
    let got = send_and_drain(server.addr, file.as_bytes());
    assert!(!expected.is_empty());
    assert_eq!(got, expected, "socket and serve-file outputs must be byte-identical");
    // Sanity: the file really exercised the error paths.
    assert!(got.lines().any(|l| l.starts_with("error: ")));
}

#[test]
fn reload_mid_stream_bumps_generation_without_dropping_anything() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("grepair_server_it_{}.g2g", std::process::id()));
    std::fs::write(&path, g2g(32)).unwrap(); // 65-node replacement store
    let server = TestServer::start(16, None); // 33-node initial store
    let mut client = LineClient::new(server.connect());

    // Generation 1 serving normally.
    assert_eq!(client.roundtrip("INFO"), "grepair proto=1 generation=1 nodes=33");
    assert_eq!(client.roundtrip("reach 0 32"), "true");
    let err = client.roundtrip("out 64"); // not a node yet
    assert!(err.starts_with("error:"), "{err}");

    // Pipeline queries *around* a RELOAD in one write: the pre-RELOAD
    // query must be answered by the old store, the post-RELOAD one by the
    // new — all on the same connection, in order.
    client.send("out 64"); // old store: error
    client.send(&format!("RELOAD {}", path.display()));
    client.send("out 64"); // new store: a real answer
    let before = client.recv();
    assert!(before.starts_with("error:"), "in-flight answer served by generation 1: {before}");
    assert_eq!(client.recv(), "reloaded generation=2 nodes=65");
    let after = client.recv();
    let expected_after = store(32).query(&Query::OutNeighbors(64)).unwrap().to_string();
    assert_eq!(after, expected_after, "post-reload query runs on generation 2");

    // The same connection is still alive, and STATS echoes the bump.
    let stats = client.roundtrip("STATS");
    assert!(stats.starts_with("generation=2 "), "{stats}");
    assert_eq!(server.registry.generation(), 2);
    assert_eq!(client.roundtrip("PING"), "pong");
    assert_eq!(client.roundtrip("QUIT"), "bye");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn old_generation_arc_survives_a_swap_under_load() {
    // A client holding a long pipelined stream while another session
    // reloads: every answer of the in-flight stream must still be correct
    // (they were computed on whichever generation each batch snapshotted —
    // both generations here serve identical graphs, so answers are
    // identical; what's being tested is that nothing tears or drops).
    let dir = std::env::temp_dir();
    let path = dir.join(format!("grepair_server_swap_{}.g2g", std::process::id()));
    std::fs::write(&path, g2g(16)).unwrap(); // same graph, new generation
    let server = TestServer::start(16, None);
    let n = server.registry.current().total_nodes();

    let mut input = String::new();
    let mut expected = String::new();
    for i in 0..2000u64 {
        input.push_str(&format!("reach 0 {}\n", i % n));
        expected.push_str("true\n");
    }
    let addr = server.addr;
    let streamer = std::thread::spawn(move || send_and_drain(addr, input.as_bytes()));
    // Concurrently, another connection swaps generations a few times.
    let mut admin = LineClient::new(server.connect());
    for round in 0..5 {
        let reply = admin.roundtrip(&format!("RELOAD {}", path.display()));
        assert_eq!(reply, format!("reloaded generation={} nodes={n}", round + 2));
    }
    assert_eq!(streamer.join().unwrap(), expected);
    assert_eq!(server.registry.generation(), 6);
}

#[test]
fn many_concurrent_connections_share_one_pool() {
    let server = TestServer::start(16, None);
    let n = server.registry.current().total_nodes();
    let file = mixed_query_file(n);
    let expected = serve_file_reference(&store(16), &file);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let expected = &expected;
            let file = &file;
            let addr = server.addr;
            scope.spawn(move || {
                assert_eq!(&send_and_drain(addr, file.as_bytes()), expected);
            });
        }
    });
}

#[test]
fn bare_reload_uses_the_configured_path_and_errors_without_one() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("grepair_server_bare_{}.g2g", std::process::id()));
    std::fs::write(&path, g2g(8)).unwrap();

    // No default path configured: bare RELOAD is a clean error.
    let server = TestServer::start(8, None);
    let mut client = LineClient::new(server.connect());
    let reply = client.roundtrip("RELOAD");
    assert!(reply.contains("no default configured"), "{reply}");
    drop(client);
    drop(server);

    // With one configured (the normal binary path), bare RELOAD works.
    let server = TestServer::start(8, Some(path.display().to_string()));
    let mut client = LineClient::new(server.connect());
    assert_eq!(client.roundtrip("RELOAD"), "reloaded generation=2 nodes=17");
    let _ = std::fs::remove_file(&path);
}
