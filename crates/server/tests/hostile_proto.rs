//! The zero-panic guarantee at the socket boundary: garbage bytes,
//! oversized lines, mid-line disconnects, and hostile ids must each become
//! an `error:` reply (or a clean close), never a panic, and never stop the
//! server from serving the next line or the next connection.

mod common;

use std::io::Write;
use std::net::Shutdown;

use common::{send_and_drain, LineClient, TestServer};

#[test]
fn garbage_lines_get_error_replies_and_serving_continues() {
    let server = TestServer::start(8, None);
    let mut client = LineClient::new(server.connect());
    for garbage in [
        "frobnicate 1",
        "out",
        "out x",
        "out 1 2",
        "reach 1",
        "rpq 1 2",
        "rpq 1 2 banana",
        "components now",
        "OUT 1", // admin plane is upper-case, but OUT is not an admin verb
        "!!!!",
        "\u{1F980} unicode crab",
    ] {
        let reply = client.roundtrip(garbage);
        assert!(reply.starts_with("error: "), "{garbage:?} -> {reply:?}");
    }
    // Still serving.
    assert_eq!(client.roundtrip("out 0"), "1");
    assert_eq!(client.roundtrip("PING"), "pong");
}

#[test]
fn hostile_ids_over_the_socket_error_cleanly() {
    let server = TestServer::start(8, None);
    let n = server.registry.current().total_nodes();
    let mut client = LineClient::new(server.connect());
    // The tests/hostile.rs id corpus, shipped as protocol lines.
    for id in [n, n + 1, u64::MAX, 1 << 40] {
        for line in [
            format!("out {id}"),
            format!("in {id}"),
            format!("neighbors {id}"),
            format!("reach {id} 0"),
            format!("reach 0 {id}"),
            format!("rpq {id} 0 0 1"),
        ] {
            let reply = client.roundtrip(&line);
            assert!(reply.starts_with("error: "), "{line:?} -> {reply:?}");
            assert!(reply.contains("out of range"), "{line:?} -> {reply:?}");
        }
    }
    // Ids that do not even parse as u64.
    let reply = client.roundtrip("out 99999999999999999999999999");
    assert!(reply.starts_with("error: "), "{reply}");
    assert_eq!(client.roundtrip(&format!("reach 0 {}", n - 1)), "true");
}

#[test]
fn non_utf8_bytes_error_and_the_connection_keeps_serving() {
    let server = TestServer::start(8, None);
    let mut input: Vec<u8> = Vec::new();
    input.extend_from_slice(b"\xff\xfe\xfd\n");
    input.extend_from_slice(&[0u8, 1, 2, 255, b'\n']);
    input.extend_from_slice(b"out 0\n");
    let out = send_and_drain(server.addr, &input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "{out}");
    assert!(lines[0].contains("not valid UTF-8"), "{out}");
    assert!(lines[1].contains("not valid UTF-8"), "{out}");
    assert_eq!(lines[2], "1");
}

#[test]
fn oversized_lines_are_rejected_without_reading_them_whole() {
    let server = TestServer::start(8, None);
    // 4 MiB of 'a' — 64× the line cap. The server must reply with one
    // error and resynchronize on the newline.
    let mut input = vec![b'a'; 4 << 20];
    input.push(b'\n');
    input.extend_from_slice(b"reach 0 1\n");
    let out = send_and_drain(server.addr, &input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "{out}");
    assert!(lines[0].contains("exceeds 65536 bytes"), "{out}");
    assert_eq!(lines[1], "true");
}

#[test]
fn mid_line_disconnect_is_a_clean_close_and_the_server_lives_on() {
    let server = TestServer::start(8, None);
    for partial in ["out 1", "RELOAD /some/pa", "rpq 0 1 0* 1", "#half a comm"] {
        let mut stream = server.connect();
        stream.write_all(b"out 0\n").unwrap();
        stream.write_all(partial.as_bytes()).unwrap(); // no newline, then gone
        stream.shutdown(Shutdown::Write).unwrap();
        let mut out = String::new();
        std::io::Read::read_to_string(&mut stream, &mut out).unwrap();
        assert_eq!(out, "1\n", "complete lines answered, partial discarded ({partial:?})");
    }
    // The server survived every torn connection.
    let mut client = LineClient::new(server.connect());
    assert_eq!(client.roundtrip("PING"), "pong");
}

#[test]
fn abrupt_disconnects_and_empty_connections_do_not_hurt() {
    let server = TestServer::start(8, None);
    for _ in 0..20 {
        // Connect and vanish without sending a byte.
        drop(server.connect());
    }
    // Send then slam the whole socket shut (both directions).
    let mut stream = server.connect();
    stream.write_all(b"out 0\nout 1\n").unwrap();
    stream.shutdown(Shutdown::Both).unwrap();
    drop(stream);
    // Still serving.
    let mut client = LineClient::new(server.connect());
    assert_eq!(client.roundtrip("out 0"), "1");
}

#[test]
fn hostile_reload_arguments_never_kill_the_store() {
    let dir = std::env::temp_dir();
    let junk = dir.join(format!("grepair_hostile_{}.g2g", std::process::id()));
    std::fs::write(&junk, b"not a g2g file at all, just some text").unwrap();
    let server = TestServer::start(8, None);
    let mut client = LineClient::new(server.connect());
    for line in [
        "RELOAD /nonexistent/nowhere.g2g".to_string(),
        format!("RELOAD {}", junk.display()),
        "RELOAD a b".to_string(),
    ] {
        let reply = client.roundtrip(&line);
        assert!(reply.starts_with("error: "), "{line:?} -> {reply:?}");
    }
    // Generation unchanged, still serving the original store.
    assert!(client.roundtrip("STATS default").starts_with("generation=1 "));
    assert_eq!(server.registry.generation(), 1);
    assert_eq!(client.roundtrip("out 0"), "1");
    let _ = std::fs::remove_file(&junk);
}

#[test]
fn hostile_attach_arguments_never_disturb_existing_namespaces() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let good = common::g2g(4);

    // A truncated container and a bit-flipped one, plus plain text junk.
    let truncated = dir.join(format!("grepair_attach_trunc_{pid}.g2g"));
    std::fs::write(&truncated, &good[..good.len() / 2]).unwrap();
    let flipped_path = dir.join(format!("grepair_attach_flip_{pid}.g2g"));
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xFF;
    std::fs::write(&flipped_path, &flipped).unwrap();
    let junk = dir.join(format!("grepair_attach_junk_{pid}.g2g"));
    std::fs::write(&junk, b"definitely not a container").unwrap();

    let server = TestServer::start(8, None);
    let mut client = LineClient::new(server.connect());
    for (name, path) in [
        ("trunc", truncated.display().to_string()),
        ("flip", flipped_path.display().to_string()),
        ("junk", junk.display().to_string()),
        ("ghost", "/nonexistent/nowhere.g2g".to_string()),
    ] {
        let reply = client.roundtrip(&format!("ATTACH {name} {path}"));
        assert!(reply.starts_with("error: "), "{name} -> {reply:?}");
        // No partial registration: the name is not in the map, so neither
        // USE nor a prefixed query can reach it.
        assert!(!server.registry.contains(name), "{name} half-registered");
        let reply = client.roundtrip(&format!("USE {name}"));
        assert!(reply.starts_with("error: "), "{name} -> {reply:?}");
        let reply = client.roundtrip(&format!("{name}:out 0"));
        assert!(reply.starts_with("error: "), "{name} -> {reply:?}");
    }
    // Malformed ATTACH argument lists are clean errors too.
    for line in ["ATTACH", "ATTACH onlyname", "ATTACH a b c", "ATTACH bad/name x.g2g"] {
        let reply = client.roundtrip(line);
        assert!(reply.starts_with("error: "), "{line:?} -> {reply:?}");
    }
    // The default namespace never stopped serving.
    assert_eq!(client.roundtrip("LIST"), "namespaces=1 default=resident:1");
    assert_eq!(client.roundtrip("out 0"), "1");
    assert_eq!(client.roundtrip("PING"), "pong");

    // And a valid ATTACH still works after all that hostility.
    let fine = dir.join(format!("grepair_attach_fine_{pid}.g2g"));
    std::fs::write(&fine, &good).unwrap();
    let reply = client.roundtrip(&format!("ATTACH fine {}", fine.display()));
    assert_eq!(reply, "attached fine generation=1 nodes=9 backend=grepair");
    let reply = client.roundtrip("fine:out 0");
    assert!(!reply.starts_with("error:"), "{reply}");
    for path in [&truncated, &flipped_path, &junk, &fine] {
        let _ = std::fs::remove_file(path);
    }
}
