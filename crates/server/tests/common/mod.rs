//! Shared loopback-test scaffolding: a real server on an ephemeral port,
//! plus blunt little TCP clients.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::Hypergraph;
use grepair_server::{Server, ServerConfig, ServerHandle};
use grepair_store::{write_container, GraphStore, StoreRegistry};

/// A compressed two-label path graph with `2 * reps + 1` nodes.
pub fn g2g(reps: u32) -> Vec<u8> {
    let (g, _) = Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    );
    let out = compress(&g, &GRePairConfig::default());
    let enc = grepair_codec::encode(&out.grammar);
    write_container(&enc.bytes, enc.bit_len)
}

pub fn store(reps: u32) -> GraphStore {
    GraphStore::from_bytes(&g2g(reps)).unwrap()
}

/// A serving loopback server that stops and joins on drop.
pub struct TestServer {
    pub addr: SocketAddr,
    #[allow(dead_code)] // not every test binary including this module touches the registry
    pub registry: Arc<StoreRegistry>,
    handle: ServerHandle,
    thread: Option<JoinHandle<()>>,
}

#[allow(dead_code)] // not every test binary including this module uses every helper
impl TestServer {
    pub fn start(reps: u32, reload_path: Option<String>) -> Self {
        Self::start_with(reps, reload_path, ServerConfig::default())
    }

    pub fn start_with(reps: u32, reload_path: Option<String>, config: ServerConfig) -> Self {
        let registry = Arc::new(StoreRegistry::new(store(reps)));
        let server = Server::bind(&config, Arc::clone(&registry), reload_path)
            .expect("bind ephemeral loopback port");
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let thread = std::thread::spawn(move || {
            server.run().expect("accept loop must exit cleanly");
        });
        Self { addr, registry, handle, thread: Some(thread) }
    }

    pub fn connect(&self) -> TcpStream {
        TcpStream::connect(self.addr).expect("connect to test server")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Fire-and-drain client: send everything, half-close, read every reply
/// byte until the server is done. This is the shape a pipelined batch
/// client has. (Not every test binary including this module uses it.)
#[allow(dead_code)]
pub fn send_and_drain(addr: SocketAddr, input: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(input).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("drain replies");
    out
}

/// Interactive client: one line out, one reply line back — the `nc` shape.
/// (Not every test binary including this module uses every method.)
#[allow(dead_code)]
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

#[allow(dead_code)]
impl LineClient {
    pub fn new(stream: TcpStream) -> Self {
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Self { reader, writer: stream }
    }

    pub fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send line");
        self.writer.write_all(b"\n").expect("send newline");
    }

    pub fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        assert!(line.ends_with('\n'), "truncated reply {line:?}");
        line.pop();
        line
    }

    pub fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}
