//! The epoll front end: one readiness loop owning every client socket
//! (DESIGN.md §11).
//!
//! Bound via raw `epoll_create1`/`epoll_ctl`/`epoll_wait` syscalls in the
//! same no-libc-crate spirit as `signal.rs`: the C library is already
//! linked (std links it), so `extern "C"` declarations are all the binding
//! needs — no new dependency, which matters in this offline build.
//!
//! The loop is level-triggered. Each wakeup: accept a burst of new
//! connections (token 0), then for each ready connection read a bounded
//! burst into its [`Conn`] buffers, frame complete lines through the shared
//! [`SessionState`](crate::session) engine, and opportunistically flush its
//! reply buffer. Query evaluation itself still runs on the shared
//! [`WorkerPool`](crate::pool::WorkerPool) — the reactor thread only moves
//! bytes, so the process thread count stays flat no matter how many clients
//! connect (the property `serve-probe --connections` measures).
//!
//! Drain (`SHUTDOWN`/`SIGTERM`) deregisters the listener, answers every
//! pending batch, and closes each connection as its replies reach the
//! socket; the drain deadline force-closes stragglers, mirroring the
//! thread-per-connection `await_drain`.

use crate::server::Server;

/// Run the reactor until stop or drain completes. On non-Linux targets the
/// epoll syscalls do not exist; `--io epoll` is rejected at flag-parse
/// time, and this stub keeps the crate compiling there.
pub(crate) fn run(server: &Server) -> std::io::Result<()> {
    imp::run(server)
}

#[cfg(target_os = "linux")]
mod imp {
    use std::collections::HashMap;
    use std::io::{self, Write};
    use std::os::fd::{AsRawFd, RawFd};
    use std::sync::atomic::Ordering;
    use std::time::{Duration, Instant};

    use grepair_util::fail;

    use crate::conn::Conn;
    use crate::server::{accept_backoff, Server};

    // epoll_ctl ops (uapi/linux/eventpoll.h).
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    // Event bits.
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    /// Peer shut down its write side — drain what it already sent.
    const EPOLLRDHUP: u32 = 0x2000;
    /// `EPOLL_CLOEXEC`: same value as `O_CLOEXEC`.
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Kernel event record. x86-64 declares it packed (the 32-bit layout,
    /// kept for binary compatibility); other architectures use natural
    /// alignment. Fields are only ever read by copy, never borrowed, so
    /// the unaligned layout is safe to use from Rust.
    #[derive(Clone, Copy)]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Owned epoll instance; closed on drop.
    struct Epoll(RawFd);

    impl Epoll {
        fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes no pointers; it returns a new fd
            // or -1, and we check for -1 before using the result.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self(fd))
        }

        fn ctl(&self, op: i32, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask, data: token };
            // SAFETY: `ev` is a live stack value for the duration of the
            // call; the kernel copies it (ADD/MOD) or ignores it (DEL) and
            // never retains the pointer past the syscall.
            let rc = unsafe { epoll_ctl(self.0, op, fd, &mut ev) };
            if rc == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn add(&self, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, mask, token)
        }

        fn modify(&self, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, mask, token)
        }

        /// Best-effort deregistration: the fd is about to be closed, which
        /// deregisters it anyway, so errors are ignored.
        fn del(&self, fd: RawFd) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Wait up to `timeout_ms` for ready fds; `Ok(n)` events filled.
        fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            // SAFETY: `events` is a live, writable slice; `maxevents` is
            // its exact length, so the kernel writes only within bounds.
            let n = unsafe {
                epoll_wait(self.0, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            if n == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(n as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: self.0 is the fd epoll_create1 returned and nothing
            // else closes it; double-close is impossible because Drop runs
            // once.
            unsafe {
                close(self.0);
            }
        }
    }

    /// The listener's token; connection tokens start above it.
    const LISTENER: u64 = 0;
    /// Events fetched per `epoll_wait` call.
    const MAX_EVENTS: usize = 256;
    /// Idle tick: bounds how stale a stop/drain check can get when no
    /// socket is ready (the stop self-connect also wakes the listener).
    const TICK_MS: i32 = 100;
    /// How often the idle sweep checks `read_timeout` expiries.
    const SWEEP_EVERY: Duration = Duration::from_millis(250);

    /// A registered connection plus the event mask epoll currently has for
    /// it (so re-registration happens only when interest changes).
    struct Slot {
        conn: Conn,
        mask: u32,
    }

    fn desired_mask(conn: &Conn) -> u32 {
        let mut mask = EPOLLRDHUP;
        if !conn.closing && !conn.backpressured() {
            mask |= EPOLLIN;
        }
        if conn.wants_write() {
            mask |= EPOLLOUT;
        }
        mask
    }

    pub(crate) fn run(server: &Server) -> io::Result<()> {
        server.listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(server.listener.as_raw_fd(), EPOLLIN, LISTENER)?;
        let mut conns: HashMap<u64, Slot> = HashMap::new();
        let mut next_token: u64 = LISTENER + 1;
        let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let mut accept_failures = 0u32;
        let mut drain_deadline: Option<Instant> = None;
        let mut last_sweep = Instant::now();
        loop {
            // A drain takes precedence over the plain stop the drain
            // watcher also sets: deregister the listener, answer every
            // pending batch, then let each connection close as its replies
            // reach the socket.
            if server.drain.load(Ordering::Relaxed) && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + server.drain_deadline);
                epoll.del(server.listener.as_raw_fd());
                // audited: operator log from the drain path; stderr is the server's log surface
                eprintln!("draining: {} active sessions", conns.len());
                for slot in conns.values_mut() {
                    let _ = slot.conn.begin_close(&server.registry, &server.pool);
                    let _ = slot.conn.handle_writable();
                }
                conns.retain(|_, slot| {
                    let done = slot.conn.finished();
                    if done {
                        epoll.del(slot.conn.stream.as_raw_fd());
                        server.active.fetch_sub(1, Ordering::Relaxed);
                    }
                    !done
                });
            }
            match drain_deadline {
                Some(deadline) => {
                    if conns.is_empty() {
                        return Ok(());
                    }
                    if Instant::now() >= deadline {
                        // audited: operator log from the drain path; stderr is the server's log surface
                        eprintln!(
                            "drain deadline reached with {} sessions still active",
                            conns.len()
                        );
                        for slot in conns.values() {
                            server.active.fetch_sub(1, Ordering::Relaxed);
                            let _ = slot;
                        }
                        return Ok(());
                    }
                }
                None => {
                    if server.stop.load(Ordering::Relaxed) {
                        // Plain stop (tests, ServerHandle): drop everything;
                        // the OS closes the sockets.
                        server.active.fetch_sub(conns.len() as u64, Ordering::Relaxed);
                        return Ok(());
                    }
                }
            }
            // A fired `reactor.wait` fault is a transient readiness-loop
            // failure: log, back off, keep serving — the same
            // degrade-don't-die contract as the accept loop.
            if let Err(e) = fail::point("reactor.wait") {
                // audited: operator log from the reactor; stderr is the server's log surface
                eprintln!("reactor wait failed: {e}");
                std::thread::sleep(accept_backoff(1));
                continue;
            }
            let n = match epoll.wait(&mut events, TICK_MS) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            // audited: `wait` contract: n <= events.len() (clamped to maxevents)
            for ev in &events[..n] {
                // Copy out of the (possibly packed) kernel record; packed
                // fields must not be borrowed.
                let token = ev.data;
                let bits = ev.events;
                if token == LISTENER {
                    if drain_deadline.is_none() {
                        accept_burst(
                            server,
                            &epoll,
                            &mut conns,
                            &mut next_token,
                            &mut accept_failures,
                        );
                    }
                    continue;
                }
                let Some(slot) = conns.get_mut(&token) else {
                    continue; // already dropped this wakeup
                };
                let result = handle_conn_event(server, slot, bits);
                finish_or_rearm(server, &epoll, &mut conns, token, result);
            }
            // Idle sweep: enforce read_timeout on parked connections, the
            // reactor's analogue of the blocking mode's SO_RCVTIMEO cutoff
            // (silent there, silent here). Also reaps draining stragglers
            // whose replies flushed between wakeups.
            if last_sweep.elapsed() >= SWEEP_EVERY {
                last_sweep = Instant::now();
                let timeout = server.read_timeout;
                conns.retain(|_, slot| {
                    let idle = timeout
                        .is_some_and(|t| !slot.conn.closing && slot.conn.last_activity.elapsed() >= t);
                    let done = slot.conn.finished() || idle;
                    if done {
                        epoll.del(slot.conn.stream.as_raw_fd());
                        server.active.fetch_sub(1, Ordering::Relaxed);
                    }
                    !done
                });
                if drain_deadline.is_some() && conns.is_empty() {
                    return Ok(());
                }
            }
        }
    }

    /// Accept until the backlog is empty. Mirrors the thread-mode accept
    /// loop: same failpoint, same counters, same refusal line over the cap,
    /// same log lines — only the session transport differs.
    fn accept_burst(
        server: &Server,
        epoll: &Epoll,
        conns: &mut HashMap<u64, Slot>,
        next_token: &mut u64,
        accept_failures: &mut u32,
    ) {
        loop {
            let accepted = fail::point("server.accept")
                .map_err(io::Error::other)
                .and_then(|()| server.listener.accept());
            let (stream, peer) = match accepted {
                Ok(accepted) => {
                    *accept_failures = 0;
                    accepted
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) => {
                    // Transient accept failures must not take the server
                    // down; back off briefly so a persistent failure does
                    // not spin the reactor at 100% CPU.
                    *accept_failures = accept_failures.saturating_add(1);
                    // audited: operator log from the accept path; stderr is the server's log surface
                    eprintln!("accept failed: {e}");
                    std::thread::sleep(accept_backoff(*accept_failures));
                    return;
                }
            };
            server.connections.fetch_add(1, Ordering::Relaxed);
            if conns.len() >= server.max_connections {
                let mut stream = stream;
                let _ = writeln!(
                    stream,
                    "error: connection limit reached ({} active)",
                    server.max_connections
                );
                // audited: operator log from the accept path; stderr is the server's log surface
                eprintln!("refusing {peer}: connection limit reached");
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue; // stream is unusable; drop it
            }
            // Request/reply over one stream: latency over coalescing, same
            // as the blocking front end.
            let _ = stream.set_nodelay(true);
            let token = *next_token;
            *next_token += 1;
            let conn = Conn::new(stream, peer);
            let mask = desired_mask(&conn);
            if epoll.add(conn.stream.as_raw_fd(), mask, token).is_err() {
                continue; // cannot watch it; drop the connection
            }
            server.active.fetch_add(1, Ordering::Relaxed);
            conns.insert(token, Slot { conn, mask });
        }
    }

    /// Drive one connection through its ready events. `Err` means the
    /// connection died and must be dropped.
    fn handle_conn_event(server: &Server, slot: &mut Slot, bits: u32) -> io::Result<()> {
        if bits & EPOLLERR != 0 {
            // Fetch the real error (read on an errored socket returns it).
            let mut scratch = [0u8; 1];
            let err = match io::Read::read(&mut slot.conn.stream, &mut scratch) {
                Err(e) => e,
                Ok(_) => io::Error::other("socket error event"),
            };
            return Err(err);
        }
        if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0
            && !slot.conn.closing
            && !slot.conn.backpressured()
        {
            slot.conn.handle_readable(&server.registry, &server.pool, &server.opts)?;
        }
        // Optimistic flush: the kernel send buffer almost always has room,
        // so replies usually leave without waiting for an EPOLLOUT round
        // trip.
        slot.conn.handle_writable()
    }

    /// Apply the outcome of an event: drop a dead or finished connection
    /// (logging real errors, like the thread-mode session reaper) or
    /// re-register changed interest.
    fn finish_or_rearm(
        server: &Server,
        epoll: &Epoll,
        conns: &mut HashMap<u64, Slot>,
        token: u64,
        result: io::Result<()>,
    ) {
        let Some(slot) = conns.get_mut(&token) else { return };
        match result {
            Err(e) => {
                // The peer vanishing mid-write is normal churn, not a
                // server error; anything else is worth a line.
                if e.kind() != io::ErrorKind::BrokenPipe {
                    // audited: operator log from the reactor; stderr is the server's log surface
                    eprintln!("session with {} ended: {e}", slot.conn.peer);
                }
                epoll.del(slot.conn.stream.as_raw_fd());
                server.active.fetch_sub(1, Ordering::Relaxed);
                conns.remove(&token);
            }
            Ok(()) => {
                if slot.conn.finished() {
                    epoll.del(slot.conn.stream.as_raw_fd());
                    server.active.fetch_sub(1, Ordering::Relaxed);
                    conns.remove(&token);
                    return;
                }
                let want = desired_mask(&slot.conn);
                if want != slot.mask
                    && epoll.modify(slot.conn.stream.as_raw_fd(), want, token).is_ok()
                {
                    slot.mask = want;
                }
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use crate::server::Server;

    pub(crate) fn run(_server: &Server) -> std::io::Result<()> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "epoll io mode requires linux",
        ))
    }
}
