//! gRePair as a network service: a TCP front end over
//! [`grepair_store::GraphStore`].
//!
//! The paper's §V payoff — neighborhood, reachability, and path queries
//! answered *on the compressed grammar* — only pays off operationally when
//! clients can reach the index over a long-lived connection. This crate is
//! that front end:
//!
//! * **Wire protocol** — the same newline-delimited text protocol
//!   `grepair store serve-file` speaks (one query per line, one reply line
//!   back, per-line errors keep the connection serving), extended with an
//!   upper-case admin plane (`PING` / `INFO` / `STATS [name]` / `USE` /
//!   `ATTACH` / `DETACH` / `LIST` / `RELOAD` / `QUIT`). Versioned and
//!   fully specified in DESIGN.md §6 and §8; the CI smoke step asserts the
//!   socket and file front ends answer byte-identically.
//! * **Multi-tenant hosting** — one server hosts many namespaces
//!   (`USE <name>` per session, `name:` prefixes per line), each a
//!   container attached eagerly over the wire (`ATTACH`) or lazily at
//!   startup (`--attach NAME=PATH`), with per-namespace hot reload and LRU
//!   eviction under `--memory-budget` (DESIGN.md §8).
//! * **Reusable worker pool** — [`WorkerPool`] keeps a fixed set of
//!   resident threads fed through a channel and plugs into
//!   [`GraphStore::query_batch_on`](grepair_store::GraphStore::query_batch_on)
//!   as a [`grepair_store::BatchExecutor`], so a connection's request batch
//!   fans out across reused threads instead of paying a per-batch
//!   `thread::spawn` (the PR-3 spawn-cost note).
//! * **Hot reload** — all sessions resolve stores through one
//!   [`grepair_store::StoreRegistry`]; the `RELOAD` admin command (or
//!   `SIGHUP` for the default namespace) swaps in a freshly loaded
//!   container while in-flight batches finish on the old `Arc`, bumping
//!   that namespace's monotonic generation echoed by `STATS`/`INFO`.
//!
//! Serving topology: one [`Server`] owns the listener; each accepted
//! connection gets a session thread running [`serve_session`]; every
//! session shares the one registry and the one pool. The embedded,
//! no-socket version of the same pattern is `examples/serving.rs` at the
//! repository root.
//!
//! ```no_run
//! use std::sync::Arc;
//! use grepair_server::{Server, ServerConfig};
//! use grepair_store::StoreRegistry;
//!
//! let registry = Arc::new(StoreRegistry::open("graph.g2g").unwrap());
//! let server = Server::bind(
//!     &ServerConfig::default(), // 127.0.0.1, ephemeral port, pooled cores
//!     Arc::clone(&registry),
//!     Some("graph.g2g".into()), // what a bare RELOAD / SIGHUP reloads
//! )
//! .unwrap();
//! println!("serving on {}", server.local_addr().unwrap());
//! server.run().unwrap();
//! ```

mod conn;
mod pool;
mod reactor;
mod server;
mod session;
mod signal;

pub use pool::{WorkerPool, MAX_POOL_THREADS};
pub use server::{
    apply_tenancy_flags, run_cli, IoMode, Server, ServerConfig, ServerHandle,
    DEFAULT_MAX_CONNECTIONS, DEFAULT_READ_TIMEOUT,
};
pub use session::{
    serve_session, LineSource, SessionOpts, SessionSummary, DEFAULT_BATCH, DEFAULT_MAX_LINE,
    PROTO_VERSION,
};
