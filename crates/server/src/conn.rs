//! Per-connection state for the epoll front end (DESIGN.md §11).
//!
//! A [`Conn`] owns one client socket plus the two buffers that replace the
//! blocking mode's `BufReader`/`BufWriter`: bytes arrive into `inbuf` when
//! the socket is readable, complete lines are framed out of it and fed to
//! the *same* [`SessionState`] engine the thread-per-connection path uses,
//! and replies accumulate in `outbuf` until the socket is writable. The
//! framing rules here mirror `read_limited_line` exactly — content up to
//! `max_line` bytes (CR included) is a line, longer is one `Oversized`
//! error reply with the rest of the line discarded up to the next newline,
//! and a partial line at EOF is dropped silently — which is what keeps the
//! two io modes byte-identical on every input.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use grepair_store::StoreRegistry;
use grepair_util::fail;

use crate::pool::WorkerPool;
use crate::session::{SessionOpts, SessionState, Step};

/// Read at most this many bytes per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;

/// Read at most this many chunks per readiness wakeup. The loop is
/// level-triggered, so a client with more buffered data just gets another
/// wakeup; capping the burst keeps one firehose client from starving the
/// rest of the event batch.
const MAX_CHUNKS_PER_WAKEUP: usize = 4;

/// Stop reading from a connection whose unsent replies exceed this many
/// bytes; reading resumes once the client drains its side. Bounds memory
/// per slow-reader connection (DESIGN.md §11 backpressure).
pub(crate) const OUTBUF_BACKPRESSURE: usize = 1 << 20;

/// One epoll-managed client connection.
#[derive(Debug)]
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) peer: SocketAddr,
    session: SessionState,
    /// Received-but-unframed bytes. For a well-behaved client this holds at
    /// most one partial line; oversized lines switch to `discarding` before
    /// it can grow past `max_line` + one read chunk.
    inbuf: Vec<u8>,
    /// Framed replies not yet written to the socket. `outpos` marks how far
    /// the socket write has progressed; the buffer compacts when drained.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Inside an oversized line: swallow bytes up to the next newline
    /// (the `Oversized` reply was already queued at detection).
    discarding: bool,
    /// Set on EOF, `QUIT`/`SHUTDOWN`, or drain: no more reads; the
    /// connection closes once `outbuf` drains.
    pub(crate) closing: bool,
    pub(crate) last_activity: Instant,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, peer: SocketAddr) -> Self {
        Self {
            stream,
            peer,
            session: SessionState::new(),
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            discarding: false,
            closing: false,
            last_activity: Instant::now(),
        }
    }

    /// Unsent reply bytes exist — the reactor should watch for writability.
    pub(crate) fn wants_write(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    /// Too many unsent bytes: stop reading until the client drains them.
    pub(crate) fn backpressured(&self) -> bool {
        self.outbuf.len() - self.outpos > OUTBUF_BACKPRESSURE
    }

    /// Everything said and sent — the reactor can drop the connection.
    pub(crate) fn finished(&self) -> bool {
        self.closing && !self.wants_write()
    }

    /// The socket reported readable: read a burst, frame complete lines,
    /// feed them to the session, queue replies. An `Err` means the
    /// connection is dead (transport error or a fired `conn.read` fault)
    /// and must be dropped without a goodbye.
    pub(crate) fn handle_readable(
        &mut self,
        registry: &StoreRegistry,
        pool: &WorkerPool,
        opts: &SessionOpts,
    ) -> io::Result<()> {
        // A fired `conn.read` fault is a transport error on this one
        // connection, exactly like `session.read` in blocking mode.
        fail::point("conn.read").map_err(io::Error::other)?;
        let mut eof = false;
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..MAX_CHUNKS_PER_WAKEUP {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    // audited: `read` contract: n <= chunk.len()
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                    if n < chunk.len() {
                        break; // socket buffer drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.pump(registry, pool, opts)?;
        if eof && !self.closing {
            // A partial line at EOF is discarded silently (`MidLineEof`);
            // an oversized line at EOF already queued its reply.
            self.session.flush(registry, pool, &mut self.outbuf)?;
            self.closing = true;
            self.inbuf.clear();
        }
        Ok(())
    }

    /// Frame every complete line currently buffered and feed it to the
    /// session engine; flush the pending batch when it fills and once the
    /// burst is consumed (the non-blocking analogue of "the client has
    /// nothing more buffered").
    fn pump(
        &mut self,
        registry: &StoreRegistry,
        pool: &WorkerPool,
        opts: &SessionOpts,
    ) -> io::Result<()> {
        let mut start = 0;
        while start < self.inbuf.len() && !self.closing {
            // audited: loop guard: start < inbuf.len()
            match self.inbuf[start..].iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if self.discarding {
                        // Tail of an oversized line: swallowed, no event.
                        self.discarding = false;
                    } else if pos > opts.max_line {
                        self.session.push_oversized(opts.max_line);
                    } else {
                        // audited: `pos` is an index into `inbuf[start..]`
                        let mut line = &self.inbuf[start..start + pos];
                        if line.last() == Some(&b'\r') {
                            // audited: `last()` was Some, so the line is non-empty
                            line = &line[..line.len() - 1]; // tolerate CRLF
                        }
                        // The borrow of `inbuf` ends before the consume
                        // below; `on_line` writes replies into a scratch
                        // split off so the borrows don't overlap.
                        let line = line.to_vec();
                        let step =
                            self.session.on_line(registry, pool, &line, &mut self.outbuf, opts)?;
                        if step == Step::Quit {
                            // Input after QUIT is never served (the
                            // blocking loop returns here); replies already
                            // queued still drain before close.
                            self.closing = true;
                            self.inbuf.clear();
                            return Ok(());
                        }
                    }
                    start += pos + 1;
                }
                None => {
                    let rest = self.inbuf.len() - start;
                    if self.discarding {
                        // Still inside the oversized line: drop the bytes.
                        self.inbuf.clear();
                        start = 0;
                    } else if rest > opts.max_line {
                        // Longer than max with no terminator yet: queue the
                        // error now and discard until the newline arrives.
                        // Blocking mode queues it after the swallow, but no
                        // reply can be emitted in between, so the reply
                        // stream is identical.
                        self.session.push_oversized(opts.max_line);
                        self.discarding = true;
                        self.inbuf.clear();
                        start = 0;
                    }
                    break;
                }
            }
            if self.session.pending_len() >= opts.batch {
                self.session.flush(registry, pool, &mut self.outbuf)?;
            }
        }
        self.inbuf.drain(..start);
        if self.session.pending_len() > 0 {
            self.session.flush(registry, pool, &mut self.outbuf)?;
        }
        Ok(())
    }

    /// The socket reported writable (or we try optimistically): push as
    /// much of `outbuf` as the kernel will take. An `Err` means the
    /// connection is dead and must be dropped.
    pub(crate) fn handle_writable(&mut self) -> io::Result<()> {
        if !self.wants_write() {
            return Ok(());
        }
        // A fired `conn.write` fault is a transport error on this one
        // connection, exactly like `session.write` in blocking mode.
        fail::point("conn.write").map_err(io::Error::other)?;
        while self.outpos < self.outbuf.len() {
            // audited: loop guard: outpos < outbuf.len()
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.outpos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.outpos == self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
        }
        Ok(())
    }

    /// Drain: answer everything pending and mark the connection closing;
    /// it drops once the queued replies reach the socket (or the drain
    /// deadline force-closes it).
    pub(crate) fn begin_close(
        &mut self,
        registry: &StoreRegistry,
        pool: &WorkerPool,
    ) -> io::Result<()> {
        if !self.closing {
            self.session.flush(registry, pool, &mut self.outbuf)?;
            self.closing = true;
            self.inbuf.clear();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::serve_session;
    use grepair_core::{compress, GRePairConfig};
    use grepair_hypergraph::Hypergraph;
    use grepair_store::{write_container, GraphStore};
    use std::io::BufReader;
    use std::net::TcpListener;

    fn dummy_stream() -> (TcpStream, SocketAddr) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stream = TcpStream::connect(addr).expect("connect");
        let (_accepted, peer) = listener.accept().expect("accept");
        (stream, peer)
    }

    fn fixture() -> (StoreRegistry, WorkerPool, SessionOpts) {
        let (g, _) = Hypergraph::from_simple_edges(
            17,
            (0..8u32).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        );
        let out = compress(&g, &GRePairConfig::default());
        let enc = grepair_codec::encode(&out.grammar);
        let bytes = write_container(&enc.bytes, enc.bit_len);
        let registry = StoreRegistry::new(GraphStore::from_bytes(&bytes).expect("container"));
        let pool = WorkerPool::new(2);
        let opts = SessionOpts { max_line: 64, ..SessionOpts::default() };
        (registry, pool, opts)
    }

    /// Feed `input` through a Conn in the given chunk sizes and return its
    /// reply bytes.
    fn conn_replies(input: &[u8], chunks: &[usize], opts: &SessionOpts) -> Vec<u8> {
        let (registry, pool, _) = fixture();
        let (stream, peer) = dummy_stream();
        let mut conn = Conn::new(stream, peer);
        let mut fed = 0;
        for &len in chunks {
            let end = (fed + len).min(input.len());
            conn.inbuf.extend_from_slice(&input[fed..end]);
            fed = end;
            conn.pump(&registry, &pool, opts).expect("pump");
            if conn.closing {
                break;
            }
        }
        if fed < input.len() && !conn.closing {
            conn.inbuf.extend_from_slice(&input[fed..]);
            conn.pump(&registry, &pool, opts).expect("pump");
        }
        if !conn.closing {
            // EOF path, minus the socket read.
            conn.session.flush(&registry, &pool, &mut conn.outbuf).expect("flush");
            conn.closing = true;
        }
        conn.outbuf.clone()
    }

    /// Ground truth: the blocking engine over the same bytes.
    fn blocking_replies(input: &[u8], opts: &SessionOpts) -> Vec<u8> {
        let (registry, pool, _) = fixture();
        let mut reader = BufReader::new(input);
        let mut out = Vec::new();
        serve_session(&registry, &pool, &mut reader, &mut out, opts).expect("serve");
        out
    }

    fn assert_identical(input: &[u8], chunks: &[usize]) {
        let (_, _, opts) = fixture();
        let framed = conn_replies(input, chunks, &opts);
        let blocking = blocking_replies(input, &opts);
        assert_eq!(
            String::from_utf8_lossy(&framed),
            String::from_utf8_lossy(&blocking),
            "chunking {chunks:?} of {:?} diverged from blocking mode",
            String::from_utf8_lossy(input),
        );
    }

    #[test]
    fn whole_lines_match_blocking_mode() {
        let input = b"out 0\nPING\ndegrees\nreach 0 4\nbogus 9\nout 3\n";
        assert_identical(input, &[input.len()]);
    }

    #[test]
    fn one_byte_dribble_matches_blocking_mode() {
        let input = b"out 0\ndegrees\nt9:out 0\nreach 0 2\n";
        let chunks: Vec<usize> = input.iter().map(|_| 1).collect();
        assert_identical(input, &chunks);
    }

    #[test]
    fn oversized_line_is_one_error_and_next_line_parses() {
        let long = vec![b'x'; 200];
        let mut input = long.clone();
        input.push(b'\n');
        input.extend_from_slice(b"out 0\n");
        // Split mid-oversized-line so discard mode spans pumps.
        assert_identical(&input, &[50, 100, input.len() - 150]);
    }

    #[test]
    fn oversized_line_without_newline_still_errors_at_eof() {
        let input = vec![b'y'; 300];
        assert_identical(&input, &[128, 128, 44]);
    }

    #[test]
    fn partial_line_at_eof_is_discarded_silently() {
        let input = b"out 0\ndegre"; // no trailing newline
        assert_identical(input, &[6, 5]);
    }

    #[test]
    fn mid_utf8_split_matches_blocking_mode() {
        // A multi-byte char split across reads must reassemble (valid line
        // that fails to parse) — and a torn one must yield the UTF-8 error.
        let input = "caf\u{e9} out\nout 0\n".as_bytes();
        for split in 1..input.len() {
            assert_identical(input, &[split, input.len() - split]);
        }
    }

    #[test]
    fn crlf_lines_match_blocking_mode() {
        let input = b"out 0\r\nPING\r\ndegrees\r\n";
        assert_identical(input, &[3, 3, 3, 3, 3, 8]);
    }

    #[test]
    fn input_after_quit_is_never_served() {
        let input = b"out 0\nQUIT\nout 1\ndegrees\n";
        assert_identical(input, &[input.len()]);
        let (_, _, opts) = fixture();
        let framed = conn_replies(input, &[input.len()], &opts);
        let text = String::from_utf8(framed).expect("utf8");
        assert_eq!(text.lines().count(), 2, "replies after QUIT leaked: {text}");
    }

    #[test]
    fn exact_max_line_is_served_and_one_more_byte_is_oversized() {
        let (_, _, opts) = fixture();
        let at_limit = vec![b'z'; opts.max_line];
        let mut input = at_limit.clone();
        input.push(b'\n');
        input.extend_from_slice(&vec![b'z'; opts.max_line + 1]);
        input.push(b'\n');
        input.extend_from_slice(b"out 0\n");
        assert_identical(&input, &[1; 4]);
        assert_identical(&input, &[input.len()]);
    }

    #[test]
    fn backpressure_flag_tracks_outbuf() {
        let (stream, peer) = dummy_stream();
        let mut conn = Conn::new(stream, peer);
        assert!(!conn.backpressured());
        conn.outbuf = vec![0u8; OUTBUF_BACKPRESSURE + 1];
        assert!(conn.backpressured());
        assert!(conn.wants_write());
    }
}
