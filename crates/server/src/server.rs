//! The TCP front end: bind, accept, one session thread per connection, all
//! sessions sharing one [`WorkerPool`] and one [`StoreRegistry`].

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use grepair_store::StoreRegistry;
use grepair_util::args::{flag_value, flag_values, validate_value_flags};
use grepair_util::fail;

use crate::pool::WorkerPool;
use crate::session::{serve_session, SessionOpts, DEFAULT_BATCH, DEFAULT_MAX_LINE};
use crate::signal;

/// Default per-connection read timeout: generous enough for interactive
/// clients, finite so a slow-loris peer cannot park a session thread
/// forever.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(300);

/// Default cap on concurrently served connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// Default deadline for a graceful drain: sessions still running this long
/// after `SHUTDOWN`/`SIGTERM` are abandoned (the process exits; the OS
/// closes their sockets).
pub const DEFAULT_DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Backoff before retrying a failed `accept(2)`, by consecutive-failure
/// count (1-based). Exponential from 10 ms, capped at 1 s: one transient
/// failure (aborted handshake) barely delays the next accept, while a
/// persistent one (fd exhaustion) stops the loop from spinning at 100%
/// CPU without ever giving up. Reset to zero by a successful accept.
pub fn accept_backoff(consecutive_failures: u32) -> Duration {
    let exp = consecutive_failures.saturating_sub(1).min(7);
    Duration::from_millis((10u64 << exp).min(1_000))
}

/// Which front end owns the client sockets (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// Thread-per-connection: each accepted socket gets a blocking session
    /// thread. Simple, portable, and the fallback everywhere.
    #[default]
    Threads,
    /// One epoll readiness loop owns every client socket; only the worker
    /// pool crunches queries, so the thread count stays flat no matter how
    /// many clients connect. Linux only.
    Epoll,
}

impl IoMode {
    /// Parse the `--io` flag value.
    pub fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "threads" => Ok(Self::Threads),
            "epoll" => Ok(Self::Epoll),
            other => Err(format!("bad --io {other:?}: want epoll or threads")),
        }
    }
}

/// Everything `grepair-server` / `grepair store serve` can tune.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 asks the OS for an ephemeral port; the bound
    /// address is printed on startup (and available via
    /// [`Server::local_addr`]) so clients and CI can discover it.
    pub addr: String,
    /// Worker-pool size; 0 = one per available core.
    pub threads: usize,
    /// Per-session batch cap (lines buffered before a forced evaluation).
    pub batch: usize,
    /// Maximum accepted request-line length, bytes.
    pub max_line: usize,
    /// Per-connection socket read timeout; a session blocked in a read for
    /// longer is closed (its answered work is already flushed — the
    /// adaptive batcher never parks with pending replies). `None` disables
    /// the timeout (the pre-hygiene behavior; `--read-timeout 0`).
    pub read_timeout: Option<Duration>,
    /// Cap on concurrently served connections. A connection over the cap
    /// is answered with one `error:` line and closed, so an open-socket
    /// flood degrades into fast refusals instead of unbounded session
    /// threads.
    pub max_connections: usize,
    /// Worker-pool queue-depth watermark past which sessions shed their
    /// batches with `busy` replies; `0` disables shedding (DESIGN.md §10).
    pub shed_watermark: usize,
    /// How long a drain (`SHUTDOWN` / `SIGTERM`) waits for in-flight
    /// sessions before giving up on them.
    pub drain_deadline: Duration,
    /// Socket front end: thread-per-connection (default) or the epoll
    /// readiness loop (`--io epoll`, DESIGN.md §11).
    pub io: IoMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            batch: DEFAULT_BATCH,
            max_line: DEFAULT_MAX_LINE,
            read_timeout: Some(DEFAULT_READ_TIMEOUT),
            max_connections: DEFAULT_MAX_CONNECTIONS,
            shed_watermark: 0,
            drain_deadline: DEFAULT_DRAIN_DEADLINE,
            io: IoMode::default(),
        }
    }
}

/// A bound (but not yet running) server.
///
/// Fields are `pub(crate)` so the epoll reactor (`reactor.rs`) can drive
/// the same listener, registry, pool, counters, and drain flag the
/// thread-per-connection loop uses — one server, two interchangeable
/// front ends.
#[derive(Debug)]
pub struct Server {
    pub(crate) listener: TcpListener,
    pub(crate) registry: Arc<StoreRegistry>,
    pub(crate) pool: Arc<WorkerPool>,
    pub(crate) opts: SessionOpts,
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) max_connections: usize,
    pub(crate) drain_deadline: Duration,
    pub(crate) stop: Arc<AtomicBool>,
    /// Flipped by any session's `SHUTDOWN` (via [`SessionOpts::drain`]) or
    /// by `SIGTERM`; the drain watcher turns it into a stop + graceful
    /// wait (DESIGN.md §10).
    pub(crate) drain: Arc<AtomicBool>,
    pub(crate) connections: Arc<AtomicU64>,
    pub(crate) active: Arc<AtomicU64>,
    io: IoMode,
}

/// Decrements the active-connection count when a session ends, however it
/// ends — clean EOF, transport error, refused spawn (the closure holding
/// the guard is dropped), or panic unwind.
struct ActiveGuard(Arc<AtomicU64>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Cheap handle for stopping a running server from another thread (tests,
/// signal handlers).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to exit. Idempotent; in-flight sessions finish
    /// on their own threads.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() the loop is parked in. A wildcard bind
        // address is not connectable on every platform — substitute
        // loopback on the same port. An error is fine either way — the
        // loop may already be gone.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect(addr);
    }
}

impl Server {
    /// Bind the listener and stand up the shared worker pool.
    ///
    /// `reload_path` is what a bare `RELOAD` (and `SIGHUP`) reloads —
    /// normally the `.g2g` path the registry was opened from.
    pub fn bind(
        config: &ServerConfig,
        registry: Arc<StoreRegistry>,
        reload_path: Option<String>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let pool = Arc::new(WorkerPool::new(config.threads));
        pool.set_shed_watermark(config.shed_watermark);
        let drain = Arc::new(AtomicBool::new(false));
        Ok(Self {
            listener,
            registry,
            pool,
            opts: SessionOpts {
                batch: config.batch.max(1),
                max_line: config.max_line.max(1),
                reload_path,
                drain: Some(Arc::clone(&drain)),
            },
            read_timeout: config.read_timeout,
            max_connections: config.max_connections.max(1),
            drain_deadline: config.drain_deadline,
            stop: Arc::new(AtomicBool::new(false)),
            drain,
            connections: Arc::new(AtomicU64::new(0)),
            active: Arc::new(AtomicU64::new(0)),
            io: config.io,
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections currently being served.
    pub fn connections_active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// A stop handle usable from other threads.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle { addr: self.local_addr()?, stop: Arc::clone(&self.stop) })
    }

    /// Install the `SIGHUP` → reload path: handler + watcher thread. The
    /// watcher reloads `reload_path` whenever a `SIGHUP` arrived since its
    /// last look (at most one reload per 200 ms; coalesced, never queued).
    /// Unix only; a no-op elsewhere. The socket `RELOAD` command is the
    /// portable equivalent.
    pub fn spawn_sighup_watcher(&self) {
        let Some(path) = self.opts.reload_path.clone() else { return };
        signal::install_hup_handler();
        let registry = Arc::clone(&self.registry);
        let stop = Arc::clone(&self.stop);
        std::thread::Builder::new()
            .name("grepair-sighup".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(200));
                    if signal::take_hup() {
                        match registry.reload_from(&path) {
                            // audited: operator log from the reload watcher; stderr is the server's log surface
                            Ok(store) => eprintln!(
                                "SIGHUP: reloaded {path} as generation {}",
                                store.generation()
                            ),
                            // audited: operator log from the reload watcher; stderr is the server's log surface
                            Err(e) => eprintln!("SIGHUP: reload of {path} failed: {e}"),
                        }
                    }
                }
            })
            // audited: boot-time spawn; failing to start the SIGHUP watcher is fatal by design
            .expect("spawn sighup watcher");
    }

    /// Accept connections until [`ServerHandle::stop`] is called or a
    /// drain begins (`SHUTDOWN` from any session, or `SIGTERM`). Each
    /// connection gets its own session thread; batch evaluation runs on the
    /// shared pool, so the number of *query-crunching* threads stays fixed
    /// no matter how many clients connect.
    ///
    /// A drain is graceful (DESIGN.md §10): the listener stops accepting,
    /// in-flight sessions finish their current batches and end, and only
    /// once they all ended — or the drain deadline expired — does this
    /// return.
    pub fn run(&self) -> std::io::Result<()> {
        self.spawn_drain_watcher()?;
        match self.io {
            IoMode::Threads => {
                let result = self.accept_loop();
                if self.drain.load(Ordering::Relaxed) {
                    self.await_drain();
                }
                result
            }
            // The reactor owns its own drain sequencing (every connection
            // lives on the reactor thread, so it flushes and closes them
            // itself instead of waiting on session threads).
            IoMode::Epoll => crate::reactor::run(self),
        }
    }

    /// Watch for a drain trigger — the shared flag (any session's
    /// `SHUTDOWN`) or a delivered `SIGTERM` — and turn it into an
    /// accept-loop stop. The thread exits with the server either way.
    fn spawn_drain_watcher(&self) -> std::io::Result<()> {
        signal::install_term_handler();
        let handle = self.handle()?;
        let drain = Arc::clone(&self.drain);
        std::thread::Builder::new()
            .name("grepair-drain".into())
            .spawn(move || loop {
                if signal::take_term() {
                    drain.store(true, Ordering::Relaxed);
                }
                if drain.load(Ordering::Relaxed) {
                    // stop() also unblocks the accept() the loop is
                    // parked in (self-connect).
                    handle.stop();
                    return;
                }
                if handle.stop.load(Ordering::Relaxed) {
                    return; // plain stop, no drain
                }
                std::thread::sleep(Duration::from_millis(25));
            })
            .map(|_| ())
    }

    /// Block until every active session ended, up to the drain deadline.
    fn await_drain(&self) {
        // audited: operator log from the drain path; stderr is the server's log surface
        eprintln!("draining: {} active sessions", self.connections_active());
        let deadline = std::time::Instant::now() + self.drain_deadline;
        while self.connections_active() > 0 {
            if std::time::Instant::now() >= deadline {
                // audited: operator log from the drain path; stderr is the server's log surface
                eprintln!(
                    "drain deadline reached with {} sessions still active",
                    self.connections_active()
                );
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn accept_loop(&self) -> std::io::Result<()> {
        let mut accept_failures = 0u32;
        loop {
            let accepted = fail::point("server.accept")
                .map_err(std::io::Error::other)
                .and_then(|()| self.listener.accept());
            let (stream, peer) = match accepted {
                Ok(accepted) => {
                    accept_failures = 0;
                    accepted
                }
                Err(e) => {
                    if self.stop.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                    // Transient accept failures (EMFILE, aborted handshake)
                    // must not take the server down — but a *persistent*
                    // one (fd exhaustion) would otherwise spin this loop
                    // at 100% CPU, so back off exponentially (reset by the
                    // next successful accept) before retrying.
                    accept_failures = accept_failures.saturating_add(1);
                    // audited: operator log from the accept loop; stderr is the server's log surface
                    eprintln!("accept failed: {e}");
                    std::thread::sleep(accept_backoff(accept_failures));
                    continue;
                }
            };
            if self.stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            self.connections.fetch_add(1, Ordering::Relaxed);
            // Connection cap: over it, answer one error line and close —
            // a flood degrades into fast refusals, not unbounded session
            // threads. (The accept loop is the only incrementer, so the
            // fetch_add is exact; sessions decrement via their guard.)
            if self.active.fetch_add(1, Ordering::Relaxed) as usize >= self.max_connections {
                let _guard = ActiveGuard(Arc::clone(&self.active));
                let mut stream = stream;
                let _ = writeln!(
                    stream,
                    "error: connection limit reached ({} active)",
                    self.max_connections
                );
                // audited: operator log from the accept loop; stderr is the server's log surface
                eprintln!("refusing {peer}: connection limit reached");
                continue;
            }
            let guard = ActiveGuard(Arc::clone(&self.active));
            let registry = Arc::clone(&self.registry);
            let pool = Arc::clone(&self.pool);
            let opts = self.opts.clone();
            let read_timeout = self.read_timeout;
            let spawned = std::thread::Builder::new()
                .name("grepair-session".into())
                .spawn(move || {
                    let _guard = guard;
                    if let Err(e) = serve_one(&registry, &pool, stream, &opts, read_timeout) {
                        // The peer vanishing mid-write is normal churn, not
                        // a server error; anything else is worth a line.
                        if e.kind() != std::io::ErrorKind::BrokenPipe {
                            // audited: operator log from the accept loop; stderr is the server's log surface
                            eprintln!("session with {peer} ended: {e}");
                        }
                    }
                });
            if let Err(e) = spawned {
                // Thread exhaustion (a connection flood) refuses this one
                // connection — the stream moved into the failed closure and
                // drops closed — but must not take the server down: same
                // contract as the accept-error branch above.
                // audited: operator log from the accept loop; stderr is the server's log surface
                eprintln!("refusing {peer}: cannot spawn session thread: {e}");
            }
        }
    }
}

/// Wire one accepted TCP stream into the session engine.
fn serve_one(
    registry: &StoreRegistry,
    pool: &WorkerPool,
    stream: TcpStream,
    opts: &SessionOpts,
    read_timeout: Option<Duration>,
) -> std::io::Result<()> {
    // The protocol is request/reply over one stream: latency matters more
    // than segment coalescing, and the session already batches writes.
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(read_timeout)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    match serve_session(registry, pool, &mut reader, &mut writer, opts) {
        Ok(_) => {}
        // The read timeout fired while the session was parked waiting for
        // the client (`WouldBlock` on Unix `SO_RCVTIMEO`, `TimedOut`
        // elsewhere). Everything answerable was already answered — the
        // adaptive batcher flushes before blocking — so this is a clean
        // idle cutoff, not a transport error worth logging.
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) => {}
        Err(e) => return Err(e),
    }
    writer.flush()
}

/// Validate the requested `--io` mode against the platform. The epoll
/// reactor is built directly on `epoll(7)`, a Linux-only API; everywhere
/// else the rejection names the portable `--io threads` fallback so the
/// operator reading the error knows exactly which flag value still works.
/// Split from `run_cli` (with the platform passed in) so the non-Linux
/// branch stays unit-testable from a Linux CI runner.
fn check_io_support(io: IoMode, linux: bool) -> Result<(), String> {
    if io == IoMode::Epoll && !linux {
        return Err(
            "--io epoll is unavailable on this platform (the reactor needs Linux epoll(7)); \
             use --io threads, the portable thread-per-connection front end"
                .into(),
        );
    }
    Ok(())
}

/// The multi-tenant argv surface shared by `grepair-server`,
/// `grepair store serve`, and `grepair store serve-file` (DESIGN.md §8):
/// every `--attach NAME=PATH` registers a *cold* namespace (the container
/// is opened on its first query), and `--memory-budget BYTES` caps the
/// resident container bytes with LRU eviction. Applying the flags to the
/// registry here keeps the socket and file front ends byte-identical on
/// the same input, flags included.
pub fn apply_tenancy_flags(registry: &StoreRegistry, flags: &[String]) -> Result<(), String> {
    for spec in flag_values(flags, "--attach") {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad --attach {spec:?}: want NAME=PATH"))?;
        registry
            .attach_cold(name, path)
            .map_err(|e| format!("--attach {name}: {e}"))?;
    }
    if let Some(raw) = flag_value(flags, "--memory-budget") {
        let bytes: u64 = raw.parse().map_err(|e| format!("bad --memory-budget: {e}"))?;
        registry.set_budget(Some(bytes));
    }
    Ok(())
}

/// Shared argv front end for the `grepair-server` binary and
/// `grepair store serve`:
/// `<g2g> [--addr HOST:PORT] [--threads N] [--batch N] [--max-line N]
/// [--read-timeout SECS] [--max-connections N]
/// [--attach NAME=PATH]... [--memory-budget BYTES]
/// [--shed-watermark N] [--drain-deadline SECS] [--io epoll|threads]
/// [--failpoints SPECS] [--fail-seed N]`.
///
/// `--read-timeout 0` disables the idle cutoff. The positional container
/// becomes the `default` namespace; each `--attach` adds a cold tenant.
/// `--failpoints` / `--fail-seed` (and their `GREPAIR_FAILPOINTS` /
/// `GREPAIR_FAIL_SEED` env twins) error unless the build has the `fail`
/// feature. Prints one `listening ...` line to stdout once bound (CI and
/// scripts parse the ephemeral port out of it), then serves until killed
/// or drained.
pub fn run_cli(args: &[String]) -> Result<(), String> {
    let g2g = args.first().ok_or("missing g2g file")?;
    // audited: args.first() returned Some just above, so args is non-empty
    let flags = &args[1..];
    validate_value_flags(
        flags,
        &[
            "--addr",
            "--threads",
            "--batch",
            "--max-line",
            "--read-timeout",
            "--max-connections",
            "--attach",
            "--memory-budget",
            "--shed-watermark",
            "--drain-deadline",
            "--io",
            "--failpoints",
            "--fail-seed",
        ],
    )?;
    fail::init_from_env()?;
    if let Some(seed) = flag_value(flags, "--fail-seed") {
        let seed: u64 = seed.parse().map_err(|e| format!("bad --fail-seed: {e}"))?;
        if !fail::enabled() {
            return Err(format!("--fail-seed: {}", fail::DISABLED));
        }
        fail::set_seed(seed);
    }
    if let Some(specs) = flag_value(flags, "--failpoints") {
        fail::configure_list(&specs).map_err(|e| format!("bad --failpoints: {e}"))?;
    }
    let mut config = ServerConfig::default();
    if let Some(addr) = flag_value(flags, "--addr") {
        config.addr = addr;
    }
    if let Some(raw) = flag_value(flags, "--threads") {
        config.threads = raw.parse().map_err(|e| format!("bad --threads: {e}"))?;
    }
    if let Some(raw) = flag_value(flags, "--batch") {
        config.batch = raw.parse().map_err(|e| format!("bad --batch: {e}"))?;
        if config.batch == 0 {
            return Err("--batch must be at least 1".into());
        }
    }
    if let Some(raw) = flag_value(flags, "--max-line") {
        config.max_line = raw.parse().map_err(|e| format!("bad --max-line: {e}"))?;
        if config.max_line == 0 {
            return Err("--max-line must be at least 1".into());
        }
    }
    if let Some(raw) = flag_value(flags, "--read-timeout") {
        let secs: u64 = raw.parse().map_err(|e| format!("bad --read-timeout: {e}"))?;
        config.read_timeout = (secs > 0).then(|| Duration::from_secs(secs));
    }
    if let Some(raw) = flag_value(flags, "--max-connections") {
        config.max_connections =
            raw.parse().map_err(|e| format!("bad --max-connections: {e}"))?;
        if config.max_connections == 0 {
            return Err("--max-connections must be at least 1".into());
        }
    }
    if let Some(raw) = flag_value(flags, "--shed-watermark") {
        config.shed_watermark =
            raw.parse().map_err(|e| format!("bad --shed-watermark: {e}"))?;
    }
    if let Some(raw) = flag_value(flags, "--drain-deadline") {
        let secs: u64 = raw.parse().map_err(|e| format!("bad --drain-deadline: {e}"))?;
        config.drain_deadline = Duration::from_secs(secs);
    }
    if let Some(raw) = flag_value(flags, "--io") {
        config.io = IoMode::parse(&raw)?;
        check_io_support(config.io, cfg!(target_os = "linux"))?;
    }

    let registry = Arc::new(StoreRegistry::open(g2g).map_err(|e| match e {
        grepair_store::GrepairError::Io { .. } => e.to_string(),
        other => format!("{g2g}: {other}"),
    })?);
    apply_tenancy_flags(&registry, flags)?;
    let server = Server::bind(&config, Arc::clone(&registry), Some(g2g.clone()))
        .map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let store = registry.current();
    // audited: documented contract: scripts parse the listening line off stdout
    println!(
        "listening {addr} proto={} namespaces={} generation={} nodes={} backend={}",
        crate::session::PROTO_VERSION,
        registry.list().len(),
        store.generation(),
        store.total_nodes(),
        store.backend()
    );
    // The line above is the machine-readable startup handshake — make sure
    // it is visible before the first connection, even under pipes.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.spawn_sighup_watcher();
    server.run().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_rejects_bad_flags() {
        assert!(run_cli(&args(&[])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--frobnicate", "1"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--threads"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--threads", "many"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--batch", "0"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--max-line", "0"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--read-timeout", "soon"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--max-connections", "0"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--max-connections", "lots"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--shed-watermark", "deep"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--drain-deadline", "soon"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--io", "uring"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--fail-seed", "x"])).is_err());
        // Without the `fail` feature the failpoint flags error loudly; with
        // it, a malformed spec still must.
        assert!(run_cli(&args(&["x.g2g", "--failpoints", "noequals"])).is_err());
        if !fail::enabled() {
            let err =
                run_cli(&args(&["x.g2g", "--fail-seed", "7"])).unwrap_err();
            assert!(err.contains("compiled out"), "{err}");
        }
        // A good flag set still fails cleanly on a missing store file.
        let err = run_cli(&args(&["/nonexistent/x.g2g", "--threads", "2"])).unwrap_err();
        assert!(err.contains("/nonexistent/x.g2g"), "{err}");
    }

    #[test]
    fn tenancy_flags_register_cold_tenants_and_set_the_budget() {
        use grepair_core::{compress, GRePairConfig};
        use grepair_hypergraph::Hypergraph;
        use grepair_store::{write_container, GraphStore};
        let (g, _) = Hypergraph::from_simple_edges(5, (0..4u32).map(|i| (i, 0u32, i + 1)));
        let out = compress(&g, &GRePairConfig::default());
        let enc = grepair_codec::encode(&out.grammar);
        let registry = StoreRegistry::new(
            GraphStore::from_bytes(&write_container(&enc.bytes, enc.bit_len)).unwrap(),
        );
        // Cold attach records paths without touching the disk; the budget
        // is applied immediately.
        apply_tenancy_flags(
            &registry,
            &args(&["--attach", "a=/no/such/a.g2g", "--attach", "b=/no/such/b.g2g",
                    "--memory-budget", "1024"]),
        )
        .unwrap();
        assert!(registry.contains("a") && registry.contains("b"));
        assert_eq!(registry.budget(), Some(1024));
        assert_eq!(registry.resident_count(), 1, "cold tenants stay cold");
        // Malformed specs and duplicate names are usage errors.
        assert!(apply_tenancy_flags(&registry, &args(&["--attach", "noequals"])).is_err());
        assert!(apply_tenancy_flags(&registry, &args(&["--attach", "a=/again.g2g"])).is_err());
        assert!(apply_tenancy_flags(&registry, &args(&["--memory-budget", "lots"])).is_err());
    }

    #[test]
    fn config_defaults_are_safe() {
        let config = ServerConfig::default();
        assert_eq!(config.addr, "127.0.0.1:0", "ephemeral loopback by default");
        assert_eq!(config.batch, DEFAULT_BATCH);
        assert_eq!(config.max_line, DEFAULT_MAX_LINE);
        // Connection hygiene is on by default: finite idle timeout, finite
        // concurrent-connection cap.
        assert_eq!(config.read_timeout, Some(DEFAULT_READ_TIMEOUT));
        assert_eq!(config.max_connections, DEFAULT_MAX_CONNECTIONS);
        // Shedding is opt-in; a drain waits a finite default.
        assert_eq!(config.shed_watermark, 0);
        assert_eq!(config.drain_deadline, DEFAULT_DRAIN_DEADLINE);
        // Thread-per-connection stays the portable default front end.
        assert_eq!(config.io, IoMode::Threads);
    }

    #[test]
    fn io_mode_parses_both_names_and_rejects_others() {
        assert_eq!(IoMode::parse("threads"), Ok(IoMode::Threads));
        assert_eq!(IoMode::parse("epoll"), Ok(IoMode::Epoll));
        assert!(IoMode::parse("uring").is_err());
        assert!(IoMode::parse("Epoll").is_err(), "flag values are case-sensitive");
    }

    #[test]
    fn epoll_rejection_off_linux_names_the_threads_fallback() {
        // Threads is fine everywhere; epoll is fine only on Linux.
        assert_eq!(check_io_support(IoMode::Threads, true), Ok(()));
        assert_eq!(check_io_support(IoMode::Threads, false), Ok(()));
        assert_eq!(check_io_support(IoMode::Epoll, true), Ok(()));
        // The rejection must tell the operator what *does* work: the
        // portable `--io threads` front end, by its literal flag value.
        let err = check_io_support(IoMode::Epoll, false).unwrap_err();
        assert!(err.contains("--io threads"), "{err}");
        assert!(err.contains("epoll"), "{err}");
    }

    #[test]
    fn accept_backoff_schedule_doubles_to_a_cap_and_resets() {
        let schedule: Vec<u64> =
            (1..=9).map(|n| accept_backoff(n).as_millis() as u64).collect();
        assert_eq!(schedule, [10, 20, 40, 80, 160, 320, 640, 1_000, 1_000]);
        // "Reset" is the caller handing back failure count 1 — which must
        // land at the bottom of the ladder again, even after saturation.
        assert_eq!(accept_backoff(1), Duration::from_millis(10));
        assert_eq!(accept_backoff(u32::MAX), Duration::from_millis(1_000));
        assert_eq!(accept_backoff(0), Duration::from_millis(10), "0 is clamped, not panicking");
    }
}
