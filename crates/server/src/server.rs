//! The TCP front end: bind, accept, one session thread per connection, all
//! sessions sharing one [`WorkerPool`] and one [`StoreRegistry`].

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use grepair_store::StoreRegistry;
use grepair_util::args::{flag_value, validate_value_flags};

use crate::pool::WorkerPool;
use crate::session::{serve_session, SessionOpts, DEFAULT_BATCH, DEFAULT_MAX_LINE};
use crate::signal;

/// Everything `grepair-server` / `grepair store serve` can tune.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 asks the OS for an ephemeral port; the bound
    /// address is printed on startup (and available via
    /// [`Server::local_addr`]) so clients and CI can discover it.
    pub addr: String,
    /// Worker-pool size; 0 = one per available core.
    pub threads: usize,
    /// Per-session batch cap (lines buffered before a forced evaluation).
    pub batch: usize,
    /// Maximum accepted request-line length, bytes.
    pub max_line: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            batch: DEFAULT_BATCH,
            max_line: DEFAULT_MAX_LINE,
        }
    }
}

/// A bound (but not yet running) server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<StoreRegistry>,
    pool: Arc<WorkerPool>,
    opts: SessionOpts,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
}

/// Cheap handle for stopping a running server from another thread (tests,
/// signal handlers).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to exit. Idempotent; in-flight sessions finish
    /// on their own threads.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() the loop is parked in. A wildcard bind
        // address is not connectable on every platform — substitute
        // loopback on the same port. An error is fine either way — the
        // loop may already be gone.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect(addr);
    }
}

impl Server {
    /// Bind the listener and stand up the shared worker pool.
    ///
    /// `reload_path` is what a bare `RELOAD` (and `SIGHUP`) reloads —
    /// normally the `.g2g` path the registry was opened from.
    pub fn bind(
        config: &ServerConfig,
        registry: Arc<StoreRegistry>,
        reload_path: Option<String>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Self {
            listener,
            registry,
            pool: Arc::new(WorkerPool::new(config.threads)),
            opts: SessionOpts {
                batch: config.batch.max(1),
                max_line: config.max_line.max(1),
                reload_path,
            },
            stop: Arc::new(AtomicBool::new(false)),
            connections: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// A stop handle usable from other threads.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle { addr: self.local_addr()?, stop: Arc::clone(&self.stop) })
    }

    /// Install the `SIGHUP` → reload path: handler + watcher thread. The
    /// watcher reloads `reload_path` whenever a `SIGHUP` arrived since its
    /// last look (at most one reload per 200 ms; coalesced, never queued).
    /// Unix only; a no-op elsewhere. The socket `RELOAD` command is the
    /// portable equivalent.
    pub fn spawn_sighup_watcher(&self) {
        let Some(path) = self.opts.reload_path.clone() else { return };
        signal::install_hup_handler();
        let registry = Arc::clone(&self.registry);
        let stop = Arc::clone(&self.stop);
        std::thread::Builder::new()
            .name("grepair-sighup".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(200));
                    if signal::take_hup() {
                        match registry.reload_from(&path) {
                            Ok(store) => eprintln!(
                                "SIGHUP: reloaded {path} as generation {}",
                                store.generation()
                            ),
                            Err(e) => eprintln!("SIGHUP: reload of {path} failed: {e}"),
                        }
                    }
                }
            })
            .expect("spawn sighup watcher");
    }

    /// Accept connections until [`ServerHandle::stop`] is called. Each
    /// connection gets its own session thread; batch evaluation runs on the
    /// shared pool, so the number of *query-crunching* threads stays fixed
    /// no matter how many clients connect.
    pub fn run(&self) -> std::io::Result<()> {
        loop {
            let (stream, peer) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) => {
                    if self.stop.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                    // Transient accept failures (EMFILE, aborted handshake)
                    // must not take the server down — but a *persistent*
                    // one (fd exhaustion) would otherwise spin this loop
                    // at 100% CPU, so back off briefly before retrying.
                    eprintln!("accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            };
            if self.stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            self.connections.fetch_add(1, Ordering::Relaxed);
            let registry = Arc::clone(&self.registry);
            let pool = Arc::clone(&self.pool);
            let opts = self.opts.clone();
            let spawned = std::thread::Builder::new()
                .name("grepair-session".into())
                .spawn(move || {
                    if let Err(e) = serve_one(&registry, &pool, stream, &opts) {
                        // The peer vanishing mid-write is normal churn, not
                        // a server error; anything else is worth a line.
                        if e.kind() != std::io::ErrorKind::BrokenPipe {
                            eprintln!("session with {peer} ended: {e}");
                        }
                    }
                });
            if let Err(e) = spawned {
                // Thread exhaustion (a connection flood) refuses this one
                // connection — the stream moved into the failed closure and
                // drops closed — but must not take the server down: same
                // contract as the accept-error branch above.
                eprintln!("refusing {peer}: cannot spawn session thread: {e}");
            }
        }
    }
}

/// Wire one accepted TCP stream into the session engine.
fn serve_one(
    registry: &StoreRegistry,
    pool: &WorkerPool,
    stream: TcpStream,
    opts: &SessionOpts,
) -> std::io::Result<()> {
    // The protocol is request/reply over one stream: latency matters more
    // than segment coalescing, and the session already batches writes.
    let _ = stream.set_nodelay(true);
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    serve_session(registry, pool, &mut reader, &mut writer, opts)?;
    writer.flush()
}

/// Shared argv front end for the `grepair-server` binary and
/// `grepair store serve`:
/// `<g2g> [--addr HOST:PORT] [--threads N] [--batch N] [--max-line N]`.
///
/// Prints one `listening ...` line to stdout once bound (CI and scripts
/// parse the ephemeral port out of it), then serves until killed.
pub fn run_cli(args: &[String]) -> Result<(), String> {
    let g2g = args.first().ok_or("missing g2g file")?;
    let flags = &args[1..];
    validate_value_flags(flags, &["--addr", "--threads", "--batch", "--max-line"])?;
    let mut config = ServerConfig::default();
    if let Some(addr) = flag_value(flags, "--addr") {
        config.addr = addr;
    }
    if let Some(raw) = flag_value(flags, "--threads") {
        config.threads = raw.parse().map_err(|e| format!("bad --threads: {e}"))?;
    }
    if let Some(raw) = flag_value(flags, "--batch") {
        config.batch = raw.parse().map_err(|e| format!("bad --batch: {e}"))?;
        if config.batch == 0 {
            return Err("--batch must be at least 1".into());
        }
    }
    if let Some(raw) = flag_value(flags, "--max-line") {
        config.max_line = raw.parse().map_err(|e| format!("bad --max-line: {e}"))?;
        if config.max_line == 0 {
            return Err("--max-line must be at least 1".into());
        }
    }

    let registry = Arc::new(StoreRegistry::open(g2g).map_err(|e| match e {
        grepair_store::GrepairError::Io { .. } => e.to_string(),
        other => format!("{g2g}: {other}"),
    })?);
    let server = Server::bind(&config, Arc::clone(&registry), Some(g2g.clone()))
        .map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let store = registry.current();
    println!(
        "listening {addr} proto={} generation={} nodes={}",
        crate::session::PROTO_VERSION,
        store.generation(),
        store.total_nodes()
    );
    // The line above is the machine-readable startup handshake — make sure
    // it is visible before the first connection, even under pipes.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.spawn_sighup_watcher();
    server.run().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_rejects_bad_flags() {
        assert!(run_cli(&args(&[])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--frobnicate", "1"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--threads"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--threads", "many"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--batch", "0"])).is_err());
        assert!(run_cli(&args(&["x.g2g", "--max-line", "0"])).is_err());
        // A good flag set still fails cleanly on a missing store file.
        let err = run_cli(&args(&["/nonexistent/x.g2g", "--threads", "2"])).unwrap_err();
        assert!(err.contains("/nonexistent/x.g2g"), "{err}");
    }

    #[test]
    fn config_defaults_are_safe() {
        let config = ServerConfig::default();
        assert_eq!(config.addr, "127.0.0.1:0", "ephemeral loopback by default");
        assert_eq!(config.batch, DEFAULT_BATCH);
        assert_eq!(config.max_line, DEFAULT_MAX_LINE);
    }
}
